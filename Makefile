# Developer entry points. `make test` is the tier-1 gate; `make bench-smoke`
# runs the perf harness on the smallest workload and validates the JSON
# schema; `make campaign-smoke` checks the campaign runtime's serial-vs-pool
# byte identity and resume on a tiny committed spec; `make chaos-smoke`
# supervises that spec under injected kills + hangs and asserts the digest
# still matches the serial reference; `make store-smoke` proves the JSONL,
# SQLite and compacted stores (full-row and incremental-aggregate paths)
# all land on one digest; `make obs-smoke` runs it with --trace and checks
# the sidecar schema, the metric catalog and digest identity.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

SMOKE_DIR := .bench-smoke

.PHONY: test bench bench-smoke campaign-smoke chaos-smoke store-smoke obs-smoke campaign-demo coverage check install clean

test:
	$(PYTHON) -m pytest -x -q

# Line-coverage gate over src/repro/{core,maxis,graphs} (fail-under floor
# lives in scripts/coverage.py; uses pytest-cov when installed, stdlib
# trace otherwise).  Runs the full test suite itself, so `check` does not
# also need the plain `test` target.
coverage:
	$(PYTHON) scripts/coverage.py

bench:
	$(PYTHON) -m repro bench --out-dir .

bench-smoke:
	$(PYTHON) -m repro bench --smoke --out-dir $(SMOKE_DIR) --repeats 1
	$(PYTHON) scripts/validate_bench.py $(SMOKE_DIR)

# Tiny 8-task campaign: serial executor, 2-shard split fused by
# merge_shards, a persistent 2-worker pool (warm start asserted) and a
# simulated kill+resume must all produce byte-identical aggregates.
campaign-smoke:
	$(PYTHON) scripts/campaign_smoke.py

# The same 8-task campaign supervised by the ShardCoordinator under a
# deterministic fault plan: one shard's worker is killed mid-run, another
# shard hangs until the per-task watchdog fires; the recovered run must
# reproduce the serial digest byte-for-byte.
chaos-smoke:
	$(PYTHON) scripts/chaos_smoke.py

# The same 8-task campaign through both store backends: JSONL ≡ SQLite ≡
# compacted, and the incremental-aggregate report path must reproduce the
# full-row digest on every one of them.
store-smoke:
	$(PYTHON) scripts/store_smoke.py

# The same 8-task campaign with --trace: the trace.jsonl sidecar must be
# schema-valid and hold the full span tree, the persisted metrics.json
# must cover the required metric catalog, and the traced digest must be
# byte-identical to the untraced reference.
obs-smoke:
	$(PYTHON) scripts/obs_smoke.py

# The committed ≥200-task demo campaign (examples/campaign_demo.json).
campaign-demo:
	$(PYTHON) -m repro campaign run --spec examples/campaign_demo.json --out .campaign-demo --workers 4
	$(PYTHON) -m repro campaign report --out .campaign-demo

check: coverage bench-smoke campaign-smoke chaos-smoke store-smoke obs-smoke

# pip's PEP-517 editable path needs the `wheel` package; fall back to the
# legacy develop install on environments that ship setuptools without it.
install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

clean:
	rm -rf $(SMOKE_DIR) .campaign-smoke .campaign-demo .chaos-smoke .store-smoke .obs-smoke .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
