"""E4 — Theorem 1.1 color budget: the multicoloring uses at most k·ρ colors.

For the same oracle sweep as E3, report the number of colors actually used
by the produced conflict-free multicoloring, the per-vertex color count,
and the theoretical budget ``k·ρ``; additionally check the budget against
the polylog reference envelope used throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.core import color_budget, is_polylog, solve_conflict_free_multicoloring
from repro.maxis import get_approximator

from benchmarks.conftest import hypergraph_family


def _weakened(oracle, keep_fraction):
    def solve(graph):
        full = oracle(graph)
        target = max(1, int(len(full) * keep_fraction))
        return set(sorted(full, key=repr)[:target])

    return solve


def _run_sweep():
    greedy = get_approximator("greedy-min-degree")
    oracles = [
        ("greedy-min-degree", greedy, 6.0),
        ("greedy@50%", _weakened(greedy, 0.5), 8.0),
        ("greedy@20%", _weakened(greedy, 0.2), 12.0),
    ]
    rows = []
    for label, hypergraph, _, k in hypergraph_family():
        n = hypergraph.num_vertices()
        m = hypergraph.num_edges()
        for oracle_name, oracle, lam in oracles:
            result = solve_conflict_free_multicoloring(hypergraph, k=k, approximator=oracle, lam=lam)
            budget = color_budget(k, lam, m)
            rows.append(
                [
                    label,
                    oracle_name,
                    k,
                    result.num_phases,
                    result.total_colors,
                    budget,
                    result.multicoloring.max_colors_per_vertex(),
                    result.total_colors <= budget,
                    is_polylog(budget, n, exponent=3.0, constant=32.0),
                ]
            )
    return rows


def test_color_budget_table(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print_table(
        "E4  Theorem 1.1: colors used vs. budget k*rho",
        ["instance", "oracle", "k", "phases", "colors used", "budget k*rho",
         "max colors/vertex", "within budget", "budget polylog(n)"],
        rows,
    )
    assert all(row[7] for row in rows)
    assert all(row[8] for row in rows)
