"""E5 — local simulability: the conflict graph G_k is polynomial and host-local.

Reports the measured size of ``G_k`` against the closed forms
(``|V| = k·Σ|e|``, ``|E| ≤ |V|²/2``) over a sweep of instance sizes and
palette sizes, and the dilation/congestion of the natural embedding of
``G_k`` into the hypergraph's primal graph (dilation ≤ 2 is what makes the
LOCAL simulation of the conflict graph constant-overhead).
"""

from __future__ import annotations

from repro.analysis import conflict_graph_scaling_row, print_table
from repro.core import ConflictGraph
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.local_model import VirtualGraphEmbedding


def _scaling_sweep():
    rows = []
    for idx, (n, m) in enumerate([(20, 12), (40, 25), (60, 40), (80, 55)]):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=n, m=m, k=3, seed=200 + idx)
        for k in (2, 3, 5):
            row = conflict_graph_scaling_row(hypergraph, k)
            rows.append(
                [
                    f"n={n},m={m}",
                    k,
                    int(row["cg_vertices"]),
                    int(row["cg_vertices_formula"]),
                    int(row["cg_edges"]),
                    int(row["cg_edges_upper_bound"]),
                    row["cg_vertices"] == row["cg_vertices_formula"],
                ]
            )
    return rows


def _embedding_sweep():
    rows = []
    for idx, (n, m) in enumerate([(20, 12), (40, 25), (60, 40)]):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=n, m=m, k=3, seed=300 + idx)
        conflict_graph = ConflictGraph(hypergraph, 3)
        embedding = VirtualGraphEmbedding(
            hypergraph.primal_graph(), conflict_graph.graph, conflict_graph.host_assignment()
        )
        stats = embedding.stats()
        rows.append(
            [
                f"n={n},m={m}",
                stats.num_virtual_vertices,
                stats.num_virtual_edges,
                stats.max_congestion,
                stats.dilation,
                stats.dilation <= 2,
            ]
        )
    return rows


def test_conflict_graph_size_table(benchmark):
    scaling_rows = benchmark.pedantic(_scaling_sweep, rounds=1, iterations=1)
    print_table(
        "E5  conflict graph size vs. closed forms",
        ["instance", "k", "|V(G_k)|", "k*sum|e|", "|E(G_k)|", "|V|^2/2 bound", "formula matches"],
        scaling_rows,
    )
    assert all(row[-1] for row in scaling_rows)
    assert all(row[4] <= row[5] for row in scaling_rows)

    embedding_rows = _embedding_sweep()
    print_table(
        "E5  embedding of G_k into the primal graph (local simulability)",
        ["instance", "virtual vertices", "virtual edges", "max congestion", "dilation", "dilation <= 2"],
        embedding_rows,
    )
    assert all(row[-1] for row in embedding_rows)
