"""E9 (ablation) — the containment direction: cluster-by-cluster SLOCAL MaxIS.

Theorem 1.1's containment half (cited from [GKM17, Thm 7.1]) places MaxIS
approximation inside P-SLOCAL.  The library ships an executable companion
(`repro.core.containment`): compute a network decomposition with
polylogarithmic cluster diameter and let every cluster solve its residual
subproblem optimally.  This ablation measures the quality of that
cluster-by-cluster independent set against the exact optimum and the plain
greedy oracle, and reports the SLOCAL locality it needs (cluster weak
diameter + 1) — the quantity that must be polylogarithmic for membership.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.core import clusterwise_maxis
from repro.decomposition import ball_carving_decomposition
from repro.graphs import erdos_renyi_graph, grid_graph, independence_number, random_tree
from repro.maxis import get_approximator


def _workloads():
    return [
        ("grid 6x6", grid_graph(6, 6)),
        ("tree n=40", random_tree(40, seed=61)),
        ("G(36, 0.10)", erdos_renyi_graph(36, 0.10, seed=62)),
        ("G(36, 0.25)", erdos_renyi_graph(36, 0.25, seed=63)),
    ]


def _quality_rows():
    rows = []
    greedy = get_approximator("greedy-min-degree")
    for label, graph in _workloads():
        alpha = independence_number(graph)
        clusterwise = clusterwise_maxis(graph)
        greedy_set = greedy(graph)
        rows.append(
            [
                label,
                alpha,
                len(clusterwise.independent_set),
                round(alpha / len(clusterwise.independent_set), 3),
                len(greedy_set),
                round(alpha / len(greedy_set), 3),
                clusterwise.locality,
            ]
        )
    return rows


def _radius_ablation_rows():
    rows = []
    graph = grid_graph(7, 7)
    alpha = independence_number(graph)
    for radius in (0, 1, 2, 3):
        decomposition = ball_carving_decomposition(graph, radius)
        result = clusterwise_maxis(graph, decomposition=decomposition)
        rows.append(
            [
                radius,
                decomposition.clustering.num_clusters(),
                len(result.independent_set),
                alpha,
                round(alpha / len(result.independent_set), 3),
                result.locality,
            ]
        )
    return rows


def test_containment_table(benchmark):
    quality_rows = benchmark.pedantic(_quality_rows, rounds=1, iterations=1)
    print_table(
        "E9  containment ablation: cluster-by-cluster SLOCAL MaxIS vs. exact / greedy",
        ["graph", "alpha", "clusterwise |I|", "clusterwise ratio",
         "greedy |I|", "greedy ratio", "SLOCAL locality"],
        quality_rows,
    )
    # The cluster-by-cluster set must always be within the trivial maximality
    # guarantee and, on these instances, within a small constant of optimum.
    assert all(row[3] <= 3.0 for row in quality_rows)

    radius_rows = _radius_ablation_rows()
    print_table(
        "E9  ablation: carving radius vs. quality (grid 7x7)",
        ["radius", "clusters", "|I|", "alpha", "ratio", "locality"],
        radius_rows,
    )
    # Every carving radius yields a maximal set well within a factor 2 of the
    # optimum on the grid (the interesting signal is the locality column).
    assert all(row[4] <= 2.0 for row in radius_rows)
