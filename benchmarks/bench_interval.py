"""E8 — end-to-end reduction on interval hypergraphs (the [DN18] setting).

Interval hypergraphs are the setting of [DN18], whose MaxIS-based
conflict-free coloring technique the paper adapts.  The table compares,
per instance:

* the direct divide-and-conquer interval coloring (optimal order,
  ``⌈log2(n+1)⌉`` colors), and
* the paper's phase-based reduction with a MaxIS approximation oracle
  (``k·ρ`` color budget),

verifying that both outputs are conflict-free and reporting colors and
phases.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.coloring import (
    interval_color_bound,
    interval_conflict_free_coloring,
    num_colors_used,
)
from repro.coloring.interval import canonical_point_order
from repro.core import solve_conflict_free_multicoloring, verify_reduction_result
from repro.maxis import get_approximator

from benchmarks.conftest import interval_family


def _run_family():
    rows = []
    for label, hypergraph, n_points in interval_family():
        order = canonical_point_order(hypergraph)
        direct = interval_conflict_free_coloring(hypergraph, order)
        direct_colors = num_colors_used(direct)

        k = max(direct_colors, 2)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=k, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        report = verify_reduction_result(hypergraph, result)
        rows.append(
            [
                label,
                hypergraph.num_edges(),
                direct_colors,
                interval_color_bound(n_points),
                result.total_colors,
                result.color_bound,
                result.num_phases,
                report.conflict_free,
            ]
        )
    return rows


def test_interval_table(benchmark):
    rows = benchmark.pedantic(_run_family, rounds=1, iterations=1)
    print_table(
        "E8  interval hypergraphs: direct D&C coloring vs. MaxIS reduction",
        ["instance", "non-empty intervals", "direct colors", "ceil(log2(n+1))",
         "reduction colors", "budget k*rho", "phases", "conflict-free"],
        rows,
    )
    assert all(row[-1] for row in rows)
    # The direct algorithm must respect its logarithmic bound.
    assert all(row[2] <= row[3] for row in rows)
