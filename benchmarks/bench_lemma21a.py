"""E1 — Lemma 2.1(a): a CF k-coloring induces a maximum independent set of size m.

Regenerates the quantitative content of Lemma 2.1(a): for every instance in
the workload family, the independent set ``I_f`` induced by the planted
conflict-free coloring has size exactly ``m = |E(H)|``, is independent in
``G_k``, and (on the small instance where the exact optimum is computable)
``α(G_k) = m``.
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.core import ConflictGraph, maximum_independent_set_size_bound, verify_lemma_21a
from repro.graphs import independence_number

from benchmarks.conftest import hypergraph_family


def _run_family():
    rows = []
    for label, hypergraph, planted, k in hypergraph_family():
        conflict_graph = ConflictGraph(hypergraph, k)
        witness = verify_lemma_21a(conflict_graph, planted)
        rows.append(
            [
                label,
                hypergraph.num_edges(),
                len(witness),
                maximum_independent_set_size_bound(conflict_graph),
                len(witness) == hypergraph.num_edges(),
            ]
        )
    return rows


def test_lemma21a_table(benchmark, small_colorable_instance):
    rows = benchmark.pedantic(_run_family, rounds=1, iterations=1)
    print_table(
        "E1  Lemma 2.1(a): |I_f| = m for planted CF colorings",
        ["instance", "m = |E(H)|", "|I_f|", "alpha upper bound", "matches"],
        rows,
    )
    assert all(row[-1] for row in rows)

    # Exact optimum cross-check on the small shared instance.
    hypergraph, planted, k = small_colorable_instance
    conflict_graph = ConflictGraph(hypergraph, k)
    witness = verify_lemma_21a(conflict_graph, planted)
    alpha = independence_number(conflict_graph.graph)
    print_table(
        "E1  exact optimum cross-check (small instance)",
        ["m", "|I_f|", "alpha(G_k)"],
        [[hypergraph.num_edges(), len(witness), alpha]],
    )
    assert alpha == hypergraph.num_edges() == len(witness)
