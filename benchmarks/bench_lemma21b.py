"""E2 — Lemma 2.1(b): any independent set of G_k yields ≥ |I| happy edges.

For every instance of the workload family and every registered MaxIS
approximator, convert the oracle's independent set into a partial coloring
and count the happy hyperedges; the lemma guarantees ``#happy ≥ |I|`` and
the table reports both quantities side by side.
"""

from __future__ import annotations

from repro.core import ConflictGraph, happy_edges_of_independent_set
from repro.analysis import print_table
from repro.maxis import get_approximator

from benchmarks.conftest import hypergraph_family

ORACLES = ["greedy-min-degree", "greedy-first-fit", "luby-best-of-5", "clique-cover"]


def _run_family():
    rows = []
    for label, hypergraph, _, k in hypergraph_family(sizes=((30, 20), (60, 40), (90, 60))):
        conflict_graph = ConflictGraph(hypergraph, k)
        for oracle_name in ORACLES:
            independent_set = get_approximator(oracle_name)(conflict_graph.graph)
            happy = happy_edges_of_independent_set(conflict_graph, independent_set)
            rows.append(
                [
                    label,
                    oracle_name,
                    hypergraph.num_edges(),
                    len(independent_set),
                    len(happy),
                    len(happy) >= len(independent_set),
                ]
            )
    return rows


def test_lemma21b_table(benchmark):
    rows = benchmark.pedantic(_run_family, rounds=1, iterations=1)
    print_table(
        "E2  Lemma 2.1(b): happy edges >= |I| for every oracle",
        ["instance", "oracle", "m", "|I|", "happy edges", "lemma holds"],
        rows,
    )
    assert all(row[-1] for row in rows)
