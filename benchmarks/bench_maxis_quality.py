"""E6 — quality of the MaxIS approximation oracles the reduction can consume.

Measures, for every registered approximator, the achieved approximation
ratio ``α(G)/|I|`` against the exact optimum on

* small random graphs (the generic case), and
* conflict graphs of small colorable hypergraphs (the graphs the
  reduction actually feeds to the oracle, where α = m by Lemma 2.1(a)).

The paper only requires λ = polylog(n); the table shows how far below that
the practical oracles sit.
"""

from __future__ import annotations

from repro.analysis import approximator_quality_table, print_table
from repro.core import ConflictGraph
from repro.graphs import erdos_renyi_graph, independence_number
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.maxis import get_approximator
from repro.reductions import polylog_lambda

ORACLES = ["exact", "greedy-min-degree", "greedy-first-fit", "luby-best-of-5", "clique-cover"]


def _random_graph_rows():
    rows = []
    for n, p, seed in [(16, 0.2, 1), (20, 0.3, 2), (24, 0.4, 3)]:
        graph = erdos_renyi_graph(n, p, seed=seed)
        optimum = independence_number(graph)
        for entry in approximator_quality_table(graph, names=ORACLES, optimum=optimum):
            rows.append(
                [
                    f"G({n},{p})",
                    entry["approximator"],
                    int(entry["size"]),
                    int(entry["optimum"]),
                    round(entry["measured_ratio"], 3),
                    round(entry["guaranteed_lambda"], 1),
                    round(polylog_lambda(n), 1),
                ]
            )
    return rows


def _conflict_graph_rows():
    rows = []
    for n, m, k, seed in [(14, 7, 2, 4), (18, 9, 2, 5), (20, 8, 3, 6)]:
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=n, m=m, k=k, seed=seed)
        conflict_graph = ConflictGraph(hypergraph, k)
        optimum = hypergraph.num_edges()  # Lemma 2.1(a)
        for name in ORACLES:
            if name == "exact":
                continue  # exact on conflict graphs is covered by E1
            independent_set = get_approximator(name)(conflict_graph.graph)
            ratio = optimum / len(independent_set)
            rows.append(
                [
                    f"G_k(n={n},m={m},k={k})",
                    name,
                    len(independent_set),
                    optimum,
                    round(ratio, 3),
                    round(polylog_lambda(conflict_graph.num_vertices()), 1),
                ]
            )
    return rows


def test_maxis_quality_table(benchmark):
    random_rows = benchmark.pedantic(_random_graph_rows, rounds=1, iterations=1)
    print_table(
        "E6  MaxIS approximators on random graphs (ratio = alpha / |I|)",
        ["graph", "oracle", "|I|", "alpha", "measured ratio", "worst-case guarantee", "polylog target"],
        random_rows,
    )
    # Every measured ratio must respect the declared worst-case guarantee and
    # stay within the polylogarithmic target the paper's theorem needs.
    for row in random_rows:
        assert row[4] <= row[5] + 1e-9
        assert row[4] <= max(row[6], row[5])

    conflict_rows = _conflict_graph_rows()
    print_table(
        "E6  MaxIS approximators on conflict graphs (alpha = m by Lemma 2.1(a))",
        ["conflict graph", "oracle", "|I|", "alpha = m", "measured ratio", "polylog target"],
        conflict_rows,
    )
    for row in conflict_rows:
        assert row[4] <= row[5] + 1e-9
