"""E7 — the motivating model gap: MIS in SLOCAL (locality 1) vs. LOCAL (Luby).

The paper's introduction recalls that MIS has an SLOCAL algorithm with
locality 1 and a fast randomized LOCAL algorithm, while a deterministic
polylogarithmic LOCAL algorithm is the open question the completeness
programme targets.  The table reports, per topology: the SLOCAL locality,
the LOCAL round count of Luby's algorithm (expected O(log n)), validity of
both outputs, and the (Δ+1)-coloring round counts as a secondary problem.
"""

from __future__ import annotations

import math

from repro.analysis import mis_model_comparison, print_table
from repro.graphs import is_proper_coloring, num_colors
from repro.local_model import randomized_coloring

from benchmarks.conftest import graph_family


def _mis_rows():
    rows = []
    for label, graph in graph_family():
        row = mis_model_comparison(graph, seed=13)
        n = graph.num_vertices()
        rows.append(
            [
                label,
                n,
                int(row["slocal_mis_size"]),
                int(row["slocal_locality"]),
                int(row["luby_mis_size"]),
                int(row["luby_rounds"]),
                round(4 * math.log2(n), 1),
                bool(row["slocal_valid"]),
                bool(row["luby_valid"]),
            ]
        )
    return rows


def _coloring_rows():
    rows = []
    for label, graph in graph_family():
        coloring, run = randomized_coloring(graph, seed=17)
        rows.append(
            [
                label,
                num_colors(coloring),
                graph.max_degree() + 1,
                run.rounds,
                is_proper_coloring(graph, coloring),
            ]
        )
    return rows


def _deterministic_rows():
    """Deterministic vs. randomized round counts (the model gap, quantified)."""
    from repro.graphs import cycle_graph
    from repro.local_model import (
        cole_vishkin_ring,
        cole_vishkin_rounds_needed,
        color_reduction,
        luby_mis,
    )

    rows = []
    for n in (32, 64, 128):
        ring = cycle_graph(n)
        _, cv = cole_vishkin_ring(ring)
        _, generic = color_reduction(ring)
        _, rand = randomized_coloring(ring, seed=19)
        _, luby = luby_mis(ring, seed=19)
        rows.append(
            [
                f"cycle C_{n}",
                cv.rounds,
                cole_vishkin_rounds_needed(n) + 3,
                generic.rounds,
                rand.rounds,
                luby.rounds,
            ]
        )
    return rows


def test_mis_models_table(benchmark):
    mis_rows = benchmark.pedantic(_mis_rows, rounds=1, iterations=1)
    print_table(
        "E7  MIS across models: SLOCAL locality 1 vs. Luby's LOCAL rounds",
        ["graph", "n", "SLOCAL |MIS|", "SLOCAL locality", "Luby |MIS|", "Luby rounds",
         "4*log2(n) reference", "SLOCAL valid", "Luby valid"],
        mis_rows,
    )
    assert all(row[7] and row[8] for row in mis_rows)
    assert all(row[3] == 1 for row in mis_rows)

    coloring_rows = _coloring_rows()
    print_table(
        "E7  randomized (deg+1)-coloring in the LOCAL model",
        ["graph", "colors used", "Delta+1", "rounds", "proper"],
        coloring_rows,
    )
    assert all(row[-1] for row in coloring_rows)
    assert all(row[1] <= row[2] for row in coloring_rows)

    deterministic_rows = _deterministic_rows()
    print_table(
        "E7  deterministic vs. randomized rounds on rings (coloring / MIS)",
        ["graph", "Cole-Vishkin rounds", "log*-bound + 3", "generic det. reduction rounds",
         "randomized coloring rounds", "Luby MIS rounds"],
        deterministic_rows,
    )
    # Cole–Vishkin respects its log*-style bound; the generic deterministic
    # reduction is the slow baseline (linear in n) on every instance.
    assert all(row[1] <= row[2] for row in deterministic_rows)
    assert all(row[3] > row[1] and row[3] > row[4] and row[3] > row[5] for row in deterministic_rows)
