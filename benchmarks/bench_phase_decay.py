"""E3 — Theorem 1.1 phase decay: |E_{i+1}| ≤ (1 − 1/λ)·|E_i| and ≤ ρ phases.

Runs the reduction with oracles of different strength (including
artificially weakened ones, which emulate a genuinely λ-approximate
oracle) and reports, per phase, the observed unhappy-edge count against
the guaranteed geometric envelope, plus the total phase count against
``ρ = λ·ln(m) + 1``.
"""

from __future__ import annotations

from repro.analysis import decay_curve, effective_lambda, print_table
from repro.core import phase_budget, solve_conflict_free_multicoloring
from repro.maxis import get_approximator

from benchmarks.conftest import hypergraph_family


def _weakened(oracle, keep_fraction):
    def solve(graph):
        full = oracle(graph)
        target = max(1, int(len(full) * keep_fraction))
        return set(sorted(full, key=repr)[:target])

    return solve


def _oracle_suite():
    greedy = get_approximator("greedy-min-degree")
    return [
        ("greedy-min-degree", greedy, 6.0),
        ("luby-best-of-5", get_approximator("luby-best-of-5"), 6.0),
        ("greedy@50%", _weakened(greedy, 0.5), 8.0),
        ("greedy@20%", _weakened(greedy, 0.2), 12.0),
    ]


def _run_sweep():
    summary_rows = []
    decay_rows = []
    for label, hypergraph, _, k in hypergraph_family(sizes=((30, 20), (60, 40), (90, 60))):
        m = hypergraph.num_edges()
        for oracle_name, oracle, lam in _oracle_suite():
            result = solve_conflict_free_multicoloring(hypergraph, k=k, approximator=oracle, lam=lam)
            curve = decay_curve(result)
            summary_rows.append(
                [
                    label,
                    oracle_name,
                    lam,
                    round(effective_lambda(result), 2),
                    result.num_phases,
                    phase_budget(lam, m),
                    result.num_phases <= phase_budget(lam, m),
                    curve.respects_guarantee(),
                ]
            )
            if label == "n=90,m=60" and oracle_name == "greedy@20%":
                for i, (observed, guaranteed) in enumerate(zip(curve.observed, curve.guaranteed)):
                    decay_rows.append([i, observed, round(guaranteed, 1)])
    return summary_rows, decay_rows


def test_phase_decay_table(benchmark):
    summary_rows, decay_rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print_table(
        "E3  Theorem 1.1: phases used vs. budget rho = lambda*ln(m)+1",
        ["instance", "oracle", "lambda", "effective lambda", "phases", "rho",
         "within rho", "decay within (1-1/lambda)^i"],
        summary_rows,
    )
    print_table(
        "E3  unhappy-edge decay, weakest oracle on the largest instance",
        ["phase", "observed |E_i|", "guaranteed bound"],
        decay_rows,
    )
    # The phase budget must hold for every run; the per-phase decay guarantee
    # is asserted for the oracles whose assumed λ is backed by a worst-case
    # argument on these instances (greedy and its weakened variants).  The
    # randomized Luby oracle's row is reported but not asserted, since its
    # assumed λ = 6 is a heuristic choice rather than a proven bound.
    assert all(row[6] for row in summary_rows)
    assert all(row[7] for row in summary_rows if row[1] != "luby-best-of-5")
