"""Shared workload builders for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md §4
(E1–E8).  The fixtures here provide the hypergraph / graph families used
across experiments so that all tables are computed on the same workloads.
"""

from __future__ import annotations

import pytest

# The family builders are shared with the perf harness (`repro bench`);
# they live in repro.bench so both consumers time identical workloads.
from repro.bench import graph_family, hypergraph_family, interval_family  # noqa: F401
from repro.hypergraph import colorable_almost_uniform_hypergraph


def pytest_terminal_summary(terminalreporter):
    """Re-emit every reproduction table after the run.

    The whole point of the harness is the printed tables (E1–E9); pytest's
    output capture would swallow them on passing tests, so they are collected
    by :func:`repro.analysis.tables.print_table` and replayed here, where they
    end up in ``bench_output.txt``.
    """
    from repro.analysis.tables import consume_table_log

    text = consume_table_log()
    if text:
        terminalreporter.write_sep("=", "reproduction tables (see DESIGN.md §4 / EXPERIMENTS.md)")
        terminalreporter.write(text + "\n")


@pytest.fixture(scope="session")
def small_colorable_instance():
    """One small instance shared by the lemma benchmarks (exact α is computable)."""
    hypergraph, planted = colorable_almost_uniform_hypergraph(n=18, m=9, k=2, epsilon=0.5, seed=77)
    return hypergraph, planted, 2
