"""Shared workload builders for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md §4
(E1–E8).  The fixtures here provide the hypergraph / graph families used
across experiments so that all tables are computed on the same workloads.
"""

from __future__ import annotations

import pytest

from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph, random_tree
from repro.hypergraph import colorable_almost_uniform_hypergraph, random_interval_hypergraph


def pytest_terminal_summary(terminalreporter):
    """Re-emit every reproduction table after the run.

    The whole point of the harness is the printed tables (E1–E9); pytest's
    output capture would swallow them on passing tests, so they are collected
    by :func:`repro.analysis.tables.print_table` and replayed here, where they
    end up in ``bench_output.txt``.
    """
    from repro.analysis.tables import consume_table_log

    text = consume_table_log()
    if text:
        terminalreporter.write_sep("=", "reproduction tables (see DESIGN.md §4 / EXPERIMENTS.md)")
        terminalreporter.write(text + "\n")


def hypergraph_family(sizes=((30, 20), (60, 40), (90, 60), (120, 80)), k: int = 4, epsilon: float = 0.5):
    """Return [(label, hypergraph, planted, k)] for a sweep of instance sizes."""
    family = []
    for idx, (n, m) in enumerate(sizes):
        hypergraph, planted = colorable_almost_uniform_hypergraph(
            n=n, m=m, k=k, epsilon=epsilon, seed=100 + idx
        )
        family.append((f"n={n},m={m}", hypergraph, planted, k))
    return family


def graph_family():
    """Return [(label, graph)] for the MIS model-comparison experiment (E7)."""
    return [
        ("cycle C_64", cycle_graph(64)),
        ("grid 8x8", grid_graph(8, 8)),
        ("tree n=64", random_tree(64, seed=5)),
        ("G(64, 0.08)", erdos_renyi_graph(64, 0.08, seed=6)),
        ("G(64, 0.20)", erdos_renyi_graph(64, 0.20, seed=7)),
    ]


def interval_family():
    """Return [(label, hypergraph, n_points)] of interval hypergraphs (E8)."""
    result = []
    for n_points, n_intervals, seed in [(16, 12, 1), (32, 24, 2), (48, 36, 3)]:
        hypergraph = random_interval_hypergraph(n_points, n_intervals, seed=seed)
        result.append((f"points={n_points}", hypergraph, n_points))
    return result


@pytest.fixture(scope="session")
def small_colorable_instance():
    """One small instance shared by the lemma benchmarks (exact α is computable)."""
    hypergraph, planted = colorable_almost_uniform_hypergraph(n=18, m=9, k=2, epsilon=0.5, seed=77)
    return hypergraph, planted, 2
