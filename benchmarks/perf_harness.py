"""Stand-alone perf harness runner.

Times the conflict-graph builder (bucketed vs. legacy) and the MIS
approximators on the standard workload families, and writes
``BENCH_conflict_graph.json`` / ``BENCH_maxis.json``.  The implementation
lives in :mod:`repro.bench` so that the ``repro bench`` CLI subcommand and
this script share one code path.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--smoke] [--out-dir DIR] [--repeats N]
"""

from __future__ import annotations

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
