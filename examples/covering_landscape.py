#!/usr/bin/env python3
"""The covering problems of the P-SLOCAL completeness landscape.

Besides conflict-free multicoloring and network decomposition, the paper's
introduction cites [GHK18]'s completeness results for approximate minimum
dominating set and distributed set cover.  This example exercises the
library's covering substrate:

* greedy ln(Δ)-style dominating-set approximation vs. the exact optimum,
* the locality-1 SLOCAL dominating-set algorithm (valid for every
  processing order, like the MIS example in the paper),
* the set-cover view of domination and of hypergraph vertex cover.

Run with:  python examples/covering_landscape.py
"""

from __future__ import annotations

from repro.analysis import format_records
from repro.covering import (
    domination_number,
    dominating_set_as_set_cover,
    greedy_dominating_set,
    greedy_set_cover,
    harmonic_number,
    hypergraph_vertex_cover_as_set_cover,
    set_cover_optimum,
    slocal_dominating_set,
)
from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph, random_tree
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.slocal import adversarial_orders


def dominating_set_table() -> None:
    workloads = [
        ("cycle C_18", cycle_graph(18)),
        ("grid 4x5", grid_graph(4, 5)),
        ("tree n=20", random_tree(20, seed=31)),
        ("G(20, 0.15)", erdos_renyi_graph(20, 0.15, seed=32)),
    ]
    rows = []
    for label, graph in workloads:
        optimum = domination_number(graph)
        greedy = greedy_dominating_set(graph)
        slocal = slocal_dominating_set(graph)
        rows.append(
            {
                "graph": label,
                "gamma(G)": optimum,
                "greedy size": len(greedy),
                "greedy ratio": round(len(greedy) / optimum, 2),
                "H(Delta+1) guarantee": round(harmonic_number(graph.max_degree() + 1), 2),
                "SLOCAL size (locality 1)": len(slocal),
            }
        )
    print("minimum dominating set: exact vs. greedy vs. SLOCAL")
    print(format_records(rows))


def order_robustness_demo() -> None:
    graph = erdos_renyi_graph(30, 0.12, seed=33)
    sizes = []
    for order in adversarial_orders(graph, n_random=3, seed=34):
        sizes.append(len(slocal_dominating_set(graph, order=order)))
    print(
        "\nSLOCAL dominating set over 8 adversarial orders: "
        f"always valid, sizes ranged {min(sizes)}..{max(sizes)}"
    )


def set_cover_views() -> None:
    graph = grid_graph(4, 4)
    domination_instance = dominating_set_as_set_cover(graph)
    hypergraph, _ = colorable_almost_uniform_hypergraph(n=18, m=10, k=2, seed=35)
    cover_instance = hypergraph_vertex_cover_as_set_cover(hypergraph)

    rows = [
        {
            "instance": "domination of grid 4x4 as set cover",
            "universe": len(domination_instance.universe),
            "sets": len(domination_instance.sets),
            "greedy cover": len(greedy_set_cover(domination_instance)),
            "optimum": set_cover_optimum(domination_instance),
        },
        {
            "instance": "vertex cover of hypergraph (n=18, m=10)",
            "universe": len(cover_instance.universe),
            "sets": len(cover_instance.sets),
            "greedy cover": len(greedy_set_cover(cover_instance)),
            "optimum": set_cover_optimum(cover_instance),
        },
    ]
    print("\nset-cover views of domination and hypergraph vertex cover")
    print(format_records(rows))


def main() -> None:
    dominating_set_table()
    order_robustness_demo()
    set_cover_views()


if __name__ == "__main__":
    main()
