#!/usr/bin/env python3
"""Conflict-free coloring of interval hypergraphs: direct vs. via MaxIS reduction.

The paper adapts the technique of [DN18], which solves conflict-free
coloring on *interval hypergraphs* using maximum independent sets.  This
example builds random interval hypergraphs and solves them twice:

* directly, with the optimal-order divide-and-conquer interval algorithm
  (O(log n) colors), and
* through the paper's phase-based reduction with a MaxIS approximation
  oracle (k·ρ color budget),

then compares color counts and phase counts.

Run with:  python examples/interval_coloring.py
"""

from __future__ import annotations

from repro import get_approximator, solve_conflict_free_multicoloring, verify_reduction_result
from repro.analysis import format_records
from repro.coloring import interval_color_bound, interval_conflict_free_coloring, num_colors_used
from repro.coloring.interval import canonical_point_order
from repro.hypergraph import random_interval_hypergraph


def main() -> None:
    rows = []
    # Interval hyperedges can contain a constant fraction of all points, so the
    # conflict graph grows quickly; the sweep stays at sizes where the pure
    # Python construction remains interactive.
    for n_points, n_intervals, seed in [(16, 10, 1), (24, 18, 2), (32, 24, 3), (48, 36, 4)]:
        hypergraph = random_interval_hypergraph(n_points, n_intervals, seed=seed)
        order = canonical_point_order(hypergraph)

        direct = interval_conflict_free_coloring(hypergraph, order)
        direct_colors = num_colors_used(direct)

        k = max(direct_colors, 2)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=k, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        report = verify_reduction_result(hypergraph, result)

        rows.append(
            {
                "points": n_points,
                "intervals (non-empty)": hypergraph.num_edges(),
                "direct colors": direct_colors,
                "direct bound (ceil log2(n+1))": interval_color_bound(n_points),
                "reduction colors": result.total_colors,
                "reduction budget k*rho": result.color_bound,
                "reduction phases": result.num_phases,
                "conflict-free": report.conflict_free,
            }
        )
    print("interval hypergraphs: direct divide-and-conquer vs. MaxIS-reduction")
    print(format_records(rows))


if __name__ == "__main__":
    main()
