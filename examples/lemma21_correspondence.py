#!/usr/bin/env python3
"""Walk through the Lemma 2.1 correspondence on a concrete instance.

The lemma relates conflict-free k-colorings of a hypergraph H to
independent sets of the conflict graph G_k:

* direction (a): a conflict-free coloring induces a *maximum* independent
  set of size m = |E(H)|;
* direction (b): any independent set induces a well-defined partial
  coloring making at least |I| hyperedges happy.

The script builds G_k, checks both directions with the library's verifiers,
and prints the size accounting (|V(G_k)| = k·Σ|e|, α(G_k) = m).

Run with:  python examples/lemma21_correspondence.py
"""

from __future__ import annotations

from repro import colorable_almost_uniform_hypergraph, get_approximator
from repro.analysis import format_table
from repro.core import (
    ConflictGraph,
    coloring_to_independent_set,
    happy_edges_of_independent_set,
    independent_set_to_coloring,
    maximum_independent_set_size_bound,
    verify_lemma_21a,
    verify_lemma_21b,
)
from repro.graphs import independence_number


def main() -> None:
    # Kept deliberately small so that the exact alpha(G_k) cross-check below
    # (an exponential-time computation) finishes instantly.
    k = 2
    hypergraph, planted = colorable_almost_uniform_hypergraph(n=18, m=10, k=k, seed=13)
    conflict_graph = ConflictGraph(hypergraph, k)

    print("conflict graph size accounting")
    print(
        format_table(
            ["quantity", "value"],
            [
                ["n = |V(H)|", hypergraph.num_vertices()],
                ["m = |E(H)|", hypergraph.num_edges()],
                ["sum of |e|", hypergraph.total_edge_size()],
                ["|V(G_k)| (= k * sum |e|)", conflict_graph.num_vertices()],
                ["|E(G_k)|", conflict_graph.num_edges()],
            ],
        )
    )

    # Direction (a): the planted coloring induces an independent set of size m.
    witness = verify_lemma_21a(conflict_graph, planted)
    print(f"\nLemma 2.1(a): |I_f| = {len(witness)} = m = {hypergraph.num_edges()}")
    alpha = independence_number(conflict_graph.graph)
    print(
        f"exact alpha(G_k) = {alpha}  (upper bound from E_edge cliques: "
        f"{maximum_independent_set_size_bound(conflict_graph)})"
    )

    # Direction (b): an approximate MaxIS induces a partial coloring with
    # at least |I| happy edges.
    oracle = get_approximator("luby-best-of-5")
    independent_set = oracle(conflict_graph.graph)
    happy = verify_lemma_21b(conflict_graph, independent_set)
    partial = independent_set_to_coloring(conflict_graph, independent_set)
    print(
        f"\nLemma 2.1(b): oracle returned |I| = {len(independent_set)}; "
        f"induced coloring colors {len(partial)} vertices and makes "
        f"{len(happy)} edges happy (>= |I|)"
    )

    # Round trip: the witness of (a) maps back to a coloring that keeps every
    # edge happy.
    recovered = independent_set_to_coloring(conflict_graph, witness)
    again_happy = happy_edges_of_independent_set(conflict_graph, witness)
    print(
        f"\nround trip: witness -> coloring colors {len(recovered)} vertices, "
        f"{len(again_happy)}/{hypergraph.num_edges()} edges happy"
    )
    # Re-encode the recovered coloring; it again yields one triple per edge.
    re_encoded = coloring_to_independent_set(conflict_graph, recovered)
    print(f"re-encoded independent set size: {len(re_encoded)}")


if __name__ == "__main__":
    main()
