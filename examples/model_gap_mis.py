#!/usr/bin/env python3
"""The model gap that motivates the paper: MIS in SLOCAL vs. LOCAL.

The introduction recalls that the maximal independent set problem

* has an SLOCAL algorithm of locality 1 (process nodes in any order, join
  if no processed neighbor joined), and
* has a fast randomized LOCAL algorithm (Luby), but no known
  polylogarithmic *deterministic* LOCAL algorithm —

which is exactly the gap the P-SLOCAL completeness programme studies.
This example runs both algorithms on a family of graphs and reports the
SLOCAL locality, the LOCAL round counts, and the validity/size of the
produced independent sets.

Run with:  python examples/model_gap_mis.py
"""

from __future__ import annotations

from repro.analysis import format_records, mis_model_comparison
from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph, random_tree
from repro.slocal import SLOCALEngine, SLOCALMIS, adversarial_orders


def order_insensitivity_demo() -> None:
    """Show that the SLOCAL MIS is valid for every (adversarial) processing order."""
    from repro.graphs import is_maximal_independent_set

    graph = erdos_renyi_graph(40, 0.12, seed=3)
    engine = SLOCALEngine(graph)
    sizes = []
    for order in adversarial_orders(graph, n_random=3, seed=1):
        result = engine.run(SLOCALMIS(), order=order)
        mis = {v for v, joined in result.outputs.items() if joined}
        assert is_maximal_independent_set(graph, mis)
        sizes.append(len(mis))
    print(
        "SLOCAL MIS (locality 1) over 8 adversarial orders: "
        f"all valid, sizes ranged {min(sizes)}..{max(sizes)}"
    )


def main() -> None:
    workloads = [
        ("cycle C_64", cycle_graph(64)),
        ("grid 8x8", grid_graph(8, 8)),
        ("tree n=64", random_tree(64, seed=5)),
        ("G(64, 0.08)", erdos_renyi_graph(64, 0.08, seed=6)),
        ("G(64, 0.20)", erdos_renyi_graph(64, 0.20, seed=7)),
    ]
    rows = []
    for name, graph in workloads:
        row = {"graph": name}
        row.update(mis_model_comparison(graph, seed=11))
        rows.append(row)
    print("MIS across models (SLOCAL locality vs. LOCAL rounds):")
    print(format_records(rows))
    print()
    order_insensitivity_demo()


if __name__ == "__main__":
    main()
