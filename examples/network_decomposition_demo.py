#!/usr/bin/env python3
"""Network decompositions and the P-SLOCAL completeness landscape.

(poly log, poly log)-network decomposition is the canonical
P-SLOCAL-complete problem from [GKM17]; the paper proves that
polylogarithmic MaxIS approximation joins that club.  This example

* prints the completeness registry shipped with the library (which result
  comes from which paper), and
* computes ball-carving network decompositions on a few graphs, reporting
  the realized (C, D) pairs against the polylog envelope.

Run with:  python examples/network_decomposition_demo.py
"""

from __future__ import annotations

import math

from repro.analysis import format_records
from repro.decomposition import ball_carving_decomposition, decomposition_quality, polylog_decomposition, verify_network_decomposition
from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph
from repro.reductions import summary_table


def main() -> None:
    print("P-SLOCAL completeness registry (problem, status, source):")
    print(format_records(summary_table()))

    workloads = [
        ("cycle C_100", cycle_graph(100)),
        ("grid 10x10", grid_graph(10, 10)),
        ("G(80, 0.05)", erdos_renyi_graph(80, 0.05, seed=3)),
        ("G(80, 0.15)", erdos_renyi_graph(80, 0.15, seed=4)),
    ]
    rows = []
    for name, graph in workloads:
        n = graph.num_vertices()
        decomposition = polylog_decomposition(graph)
        verify_network_decomposition(graph, decomposition)
        colors, diameter = decomposition_quality(graph, decomposition)
        rows.append(
            {
                "graph": name,
                "n": n,
                "clusters": decomposition.clustering.num_clusters(),
                "C (cluster colors)": colors,
                "D (weak diameter)": diameter,
                "polylog envelope 2*ceil(log2 n)": 2 * math.ceil(math.log2(n)),
            }
        )
    print("\nball-carving network decompositions (radius = ceil(log2 n)):")
    print(format_records(rows))

    print("\nsmaller radius trades diameter for colors (grid 10x10):")
    grid = grid_graph(10, 10)
    sweep = []
    for radius in (0, 1, 2, 3, 5):
        decomposition = ball_carving_decomposition(grid, radius)
        verify_network_decomposition(grid, decomposition, max_diameter=2 * radius)
        colors, diameter = decomposition_quality(grid, decomposition)
        sweep.append({"radius": radius, "C": colors, "D": diameter,
                      "clusters": decomposition.clustering.num_clusters()})
    print(format_records(sweep))


if __name__ == "__main__":
    main()
