#!/usr/bin/env python3
"""Sweep MaxIS oracles through the reduction and study the phase decay.

Theorem 1.1's analysis predicts that a λ-approximate oracle removes at
least a 1/λ fraction of the surviving hyperedges per phase, hence the
unhappy-edge count decays geometrically and at most ρ = λ·ln(m) + 1 phases
are needed.  This example runs the reduction with oracles of different
strength — including deliberately weakened ones — and reports the observed
decay, the effective λ, and the phase/color budgets.

Run with:  python examples/oracle_quality_sweep.py
"""

from __future__ import annotations

from repro import colorable_almost_uniform_hypergraph, get_approximator, solve_conflict_free_multicoloring
from repro.analysis import decay_curve, effective_lambda, format_records
from repro.core import phase_budget


def weakened(oracle, keep_fraction: float):
    """Return an oracle that only reports a fraction of what `oracle` finds."""

    def solve(graph):
        full = oracle(graph)
        target = max(1, int(len(full) * keep_fraction))
        return set(sorted(full, key=repr)[:target])

    return solve


def main() -> None:
    hypergraph, _ = colorable_almost_uniform_hypergraph(n=60, m=48, k=4, seed=23)
    m = hypergraph.num_edges()
    print(f"instance: n={hypergraph.num_vertices()}, m={m}, k=4\n")

    greedy = get_approximator("greedy-min-degree")
    oracles = [
        ("greedy-min-degree", greedy, 6.0),
        ("luby-best-of-5", get_approximator("luby-best-of-5"), 6.0),
        ("clique-cover", get_approximator("clique-cover"), 6.0),
        ("greedy weakened to 50%", weakened(greedy, 0.5), 8.0),
        ("greedy weakened to 20%", weakened(greedy, 0.2), 12.0),
    ]

    rows = []
    for name, oracle, lam in oracles:
        result = solve_conflict_free_multicoloring(hypergraph, k=4, approximator=oracle, lam=lam)
        curve = decay_curve(result)
        rows.append(
            {
                "oracle": name,
                "assumed lambda": lam,
                "effective lambda": round(effective_lambda(result), 2),
                "phases": result.num_phases,
                "phase budget rho": phase_budget(lam, m),
                "colors": result.total_colors,
                "color budget": result.color_bound,
                "decay respects (1-1/lambda)^i": curve.respects_guarantee(),
            }
        )
    print(format_records(rows))

    print("\nunhappy-edge decay for the weakest oracle (observed vs. guaranteed):")
    weakest = solve_conflict_free_multicoloring(
        hypergraph, k=4, approximator=weakened(greedy, 0.2), lam=12.0
    )
    curve = decay_curve(weakest)
    decay_rows = [
        {"phase": i, "observed |E_i|": obs, "guaranteed bound": round(bound, 1)}
        for i, (obs, bound) in enumerate(zip(curve.observed, curve.guaranteed))
    ]
    print(format_records(decay_rows))


if __name__ == "__main__":
    main()
