#!/usr/bin/env python3
"""Quickstart: solve conflict-free multicoloring through MaxIS approximation.

This is the end-to-end pipeline of Theorem 1.1 on a small instance:

1. generate an almost-uniform hypergraph that admits a conflict-free
   k-coloring (the premise of the hard instances in Theorem 1.2),
2. run the phase-based reduction with a (Δ+1)-approximate MaxIS oracle,
3. verify the produced multicoloring and compare the number of phases and
   colors against the theoretical budgets ρ = λ·ln(m) + 1 and k·ρ.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    colorable_almost_uniform_hypergraph,
    get_approximator,
    solve_conflict_free_multicoloring,
    verify_reduction_result,
)
from repro.analysis import format_records, phase_summary, run_summary


def main() -> None:
    # 1. A hard-instance-shaped hypergraph: n vertices, m = poly(n) edges,
    #    every edge size in [k, (1+eps)k], and a planted CF k-coloring.
    n, m, k = 60, 40, 4
    hypergraph, planted = colorable_almost_uniform_hypergraph(
        n=n, m=m, k=k, epsilon=0.5, seed=7
    )
    print(f"instance: n={n} vertices, m={hypergraph.num_edges()} hyperedges, palette k={k}")
    print(f"planted conflict-free coloring uses {len(set(planted.values()))} colors\n")

    # 2. The reduction, driven by the min-degree greedy MaxIS approximation
    #    (a (Δ+1)-approximation; λ below is the factor assumed by the analysis).
    lam = 6.0
    oracle = get_approximator("greedy-min-degree")
    result = solve_conflict_free_multicoloring(hypergraph, k=k, approximator=oracle, lam=lam)

    # 3. Verify and report.
    report = verify_reduction_result(hypergraph, result)
    print("run summary:")
    print(format_records([run_summary(result)]))
    print("\nper-phase record:")
    print(format_records(phase_summary(result)))
    print(
        f"\nconflict-free: {report.conflict_free}   "
        f"phases {result.num_phases}/{result.phase_bound}   "
        f"colors {result.total_colors}/{result.color_bound}"
    )


if __name__ == "__main__":
    main()
