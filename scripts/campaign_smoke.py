#!/usr/bin/env python
"""Campaign-runtime smoke gate: serial ≡ sharded-merged ≡ warm-pool, plus resume.

Runs the tiny committed 8-task spec (``examples/campaign_smoke.json``)
four ways and asserts all aggregates are byte-identical:

1. the serial reference executor;
2. both halves of a 2-shard split (``shard=(i, 2)``), fused back into one
   store with ``merge_shards`` — the multi-machine path on one machine;
3. a persistent 2-worker ``WorkerPool`` reused for two runs, the second
   of which must report a warm start;
4. the serial executor resumed after a simulated kill (the last JSONL row
   replaced by half a line).

Usage: ``python scripts/campaign_smoke.py`` (from the repository root; run
by ``make campaign-smoke`` and ``scripts/check.sh``).  Scratch output goes
to ``.campaign-smoke/`` (wiped on entry).
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import (  # noqa: E402
    CampaignSpec,
    CampaignStore,
    WorkerPool,
    campaign_digest,
    campaign_records,
    merge_shards,
    run_campaign,
)

SPEC_PATH = REPO_ROOT / "examples" / "campaign_smoke.json"
SCRATCH = REPO_ROOT / ".campaign-smoke"
N_SHARDS = 2


def digest_of(spec: CampaignSpec, directory: Path) -> str:
    return campaign_digest(campaign_records(spec, CampaignStore(directory).rows()))


def main() -> int:
    spec = CampaignSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    shutil.rmtree(SCRATCH, ignore_errors=True)

    serial = run_campaign(spec, SCRATCH / "serial", workers=0)
    if serial.failed:
        print(f"campaign-smoke: FAIL — {serial.failed} serial tasks failed")
        return 1
    serial_digest = digest_of(spec, SCRATCH / "serial")
    print(
        f"serial:    {serial.executed} tasks in {serial.wall_time_s:.3f}s "
        f"({serial.tasks_per_s:.1f}/s, {serial.cache_hits} cache hits)  "
        f"digest {serial_digest[:12]}"
    )

    # 2-shard split, each shard serial, fused by merge_shards.
    shard_dirs = [SCRATCH / f"shard{i}" for i in range(N_SHARDS)]
    executed = 0
    for index, shard_dir in enumerate(shard_dirs):
        stats = run_campaign(spec, shard_dir, shard=(index, N_SHARDS))
        executed += stats.executed
    merge_shards(SCRATCH / "merged", shard_dirs)
    merged_digest = digest_of(spec, SCRATCH / "merged")
    print(
        f"shards={N_SHARDS}:  {executed} tasks across {N_SHARDS} shard stores  "
        f"digest {merged_digest[:12]}"
    )
    if executed != spec.num_tasks():
        print("campaign-smoke: FAIL — shards did not cover the full task set")
        return 1
    if merged_digest != serial_digest:
        print("campaign-smoke: FAIL — merged shard aggregate differs from serial")
        return 1

    # Persistent pool: the second run through the same pool starts warm.
    with WorkerPool(2) as pool:
        run_campaign(spec, SCRATCH / "pool-cold", pool=pool)
        warm = run_campaign(spec, SCRATCH / "pool-warm", pool=pool)
    warm_digest = digest_of(spec, SCRATCH / "pool-warm")
    print(
        f"warm pool: {warm.executed} tasks in {warm.wall_time_s:.3f}s "
        f"({warm.tasks_per_s:.1f}/s, warm={warm.pool_warm}, "
        f"{warm.cache_hits} cache hits)  digest {warm_digest[:12]}"
    )
    if not warm.pool_warm:
        print("campaign-smoke: FAIL — second pool run did not report a warm start")
        return 1
    if warm_digest != serial_digest or digest_of(spec, SCRATCH / "pool-cold") != serial_digest:
        print("campaign-smoke: FAIL — pool aggregate differs from the serial reference")
        return 1

    # Simulated kill: drop the final row mid-line, then resume.
    store = CampaignStore(SCRATCH / "merged")
    lines = store.results_path.read_text(encoding="utf-8").splitlines(keepends=True)
    store.results_path.write_text("".join(lines[:-1]) + '{"task_key": "par', encoding="utf-8")
    resumed = run_campaign(spec, SCRATCH / "merged", workers=0)
    resumed_digest = digest_of(spec, SCRATCH / "merged")
    print(
        f"resume:    {resumed.executed} executed / {resumed.skipped} skipped  "
        f"digest {resumed_digest[:12]}"
    )
    if resumed.executed != 1 or resumed.skipped != spec.num_tasks() - 1:
        print("campaign-smoke: FAIL — resume did not skip exactly the completed tasks")
        return 1
    if resumed_digest != serial_digest:
        print("campaign-smoke: FAIL — resumed aggregate differs from the serial reference")
        return 1

    print(f"campaign-smoke: OK (serial ≡ {N_SHARDS}-shard-merged ≡ warm-pool ≡ resumed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
