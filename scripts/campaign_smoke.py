#!/usr/bin/env python
"""Campaign-runtime smoke gate: serial vs. pool byte identity plus resume.

Runs the tiny committed 8-task spec (``examples/campaign_smoke.json``)
three ways and asserts all aggregates are byte-identical:

1. the serial reference executor;
2. a 2-worker process pool;
3. the serial executor resumed after a simulated kill (the last JSONL row
   replaced by half a line).

Usage: ``python scripts/campaign_smoke.py`` (from the repository root; run
by ``make campaign-smoke`` and ``scripts/check.sh``).  Scratch output goes
to ``.campaign-smoke/`` (wiped on entry).
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import (  # noqa: E402
    CampaignSpec,
    CampaignStore,
    campaign_digest,
    campaign_records,
    run_campaign,
)

SPEC_PATH = REPO_ROOT / "examples" / "campaign_smoke.json"
SCRATCH = REPO_ROOT / ".campaign-smoke"


def digest_of(spec: CampaignSpec, directory: Path) -> str:
    return campaign_digest(campaign_records(spec, CampaignStore(directory).rows()))


def main() -> int:
    spec = CampaignSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    shutil.rmtree(SCRATCH, ignore_errors=True)

    serial = run_campaign(spec, SCRATCH / "serial", workers=0)
    if serial.failed:
        print(f"campaign-smoke: FAIL — {serial.failed} serial tasks failed")
        return 1
    serial_digest = digest_of(spec, SCRATCH / "serial")
    print(
        f"serial:   {serial.executed} tasks in {serial.wall_time_s:.3f}s "
        f"({serial.tasks_per_s:.1f}/s)  digest {serial_digest[:12]}"
    )

    pool = run_campaign(spec, SCRATCH / "pool", workers=2)
    pool_digest = digest_of(spec, SCRATCH / "pool")
    print(
        f"workers=2: {pool.executed} tasks in {pool.wall_time_s:.3f}s "
        f"({pool.tasks_per_s:.1f}/s)  digest {pool_digest[:12]}"
    )
    if pool_digest != serial_digest:
        print("campaign-smoke: FAIL — pool aggregate differs from the serial reference")
        return 1

    # Simulated kill: drop the final row mid-line, then resume.
    store = CampaignStore(SCRATCH / "pool")
    lines = store.results_path.read_text(encoding="utf-8").splitlines(keepends=True)
    store.results_path.write_text("".join(lines[:-1]) + '{"task_key": "par', encoding="utf-8")
    resumed = run_campaign(spec, SCRATCH / "pool", workers=0)
    resumed_digest = digest_of(spec, SCRATCH / "pool")
    print(
        f"resume:   {resumed.executed} executed / {resumed.skipped} skipped  "
        f"digest {resumed_digest[:12]}"
    )
    if resumed.executed != 1 or resumed.skipped != spec.num_tasks() - 1:
        print("campaign-smoke: FAIL — resume did not skip exactly the completed tasks")
        return 1
    if resumed_digest != serial_digest:
        print("campaign-smoke: FAIL — resumed aggregate differs from the serial reference")
        return 1

    print("campaign-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
