#!/usr/bin/env python
"""Chaos smoke gate: one supervised campaign under injected kills + hangs.

Runs the tiny committed 8-task spec (``examples/campaign_smoke.json``)
through the :class:`ShardCoordinator` with a deterministic fault plan
chosen so that, on the first dispatch (``max_salt=1`` keeps every
re-dispatch clean):

* shard 0 draws two *hangs* — the per-task watchdog must convert them
  into ``timeout`` rows and the restarted shard must re-run them;
* shard 1 draws a *kill* — the worker dies mid-shard and the coordinator
  must detect the crash and re-dispatch.

The run must land every shard (no poisoned quarantine), observe at least
one restart and at least one timeout row, and produce an aggregate digest
byte-identical to the fault-free serial reference.

Usage: ``python scripts/chaos_smoke.py`` (from the repository root; run
by ``make chaos-smoke`` and ``scripts/check.sh``).  Sets ``REPRO_CHAOS=1``
itself — the gate exists to stop *accidental* fault injection, and this
script is deliberate.  Scratch output goes to ``.chaos-smoke/`` (wiped on
entry).
"""

from __future__ import annotations

import os
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

os.environ["REPRO_CHAOS"] = "1"

from repro.runtime import (  # noqa: E402
    CampaignSpec,
    CampaignStore,
    FaultPlan,
    LocalProcessExecutor,
    ShardCoordinator,
    campaign_digest,
    campaign_records,
    run_campaign,
)

SPEC_PATH = REPO_ROOT / "examples" / "campaign_smoke.json"
SCRATCH = REPO_ROOT / ".chaos-smoke"

#: Seed 15 of this plan shape puts two hangs in shard 0 (before any kill)
#: and two kills in shard 1 on the first dispatch — both recovery paths
#: fire on every run, deterministically.
PLAN = FaultPlan(p_kill=0.25, p_hang=0.25, seed=15, max_salt=1, hang_s=60.0)


def main() -> int:
    spec = CampaignSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    shutil.rmtree(SCRATCH, ignore_errors=True)

    serial = run_campaign(spec, SCRATCH / "serial", workers=0)
    if serial.failed:
        print(f"chaos-smoke: FAIL — {serial.failed} serial reference tasks failed")
        return 1
    reference = campaign_digest(
        campaign_records(spec, CampaignStore(SCRATCH / "serial").rows())
    )

    coordinator = ShardCoordinator(
        spec,
        SCRATCH / "supervised",
        LocalProcessExecutor(),
        n_shards=2,
        heartbeat_timeout_s=15.0,
        max_restarts=4,
        base_backoff_s=0.01,
        poll_interval_s=0.01,
        task_timeout_s=0.5,
        retry=None,  # chaos faults are transient; nothing may be written off
        chaos=PLAN,
        restart_failed_shards=True,
        max_wall_clock_s=90.0,
    )
    report = coordinator.run()
    timeouts = sum(
        row["status"] == "timeout" for row in CampaignStore(SCRATCH / "supervised").rows()
    )
    for shard in report.shards:
        print(
            f"shard {shard.index}/2: {shard.status}  dispatches={shard.dispatches} "
            f"restarts={shard.restarts} stale_kills={shard.stale_kills} "
            f"exit_codes={shard.exit_codes}"
        )
    print(
        f"supervised: {report.status_counts.get('done', 0)}/{spec.num_tasks()} done, "
        f"{report.restarts} restart(s), {timeouts} watchdog timeout(s) "
        f"in {report.wall_time_s:.2f}s  digest {report.digest[:12]}"
    )

    if report.poisoned:
        print(f"chaos-smoke: FAIL — shards poisoned under chaos: {report.poisoned}")
        return 1
    if report.status_counts != {"done": spec.num_tasks()}:
        print(f"chaos-smoke: FAIL — unfinished rows: {report.status_counts}")
        return 1
    if report.restarts < 1:
        print("chaos-smoke: FAIL — the injected kill never forced a restart")
        return 1
    if timeouts < 1:
        print("chaos-smoke: FAIL — the injected hang never tripped the watchdog")
        return 1
    if report.digest != reference:
        print("chaos-smoke: FAIL — supervised digest differs from the serial reference")
        return 1

    print("chaos-smoke: OK (kill→restart, hang→watchdog timeout, digest ≡ serial)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
