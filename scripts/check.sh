#!/bin/sh
# Full local gate: tier-1 tests + perf-harness smoke run with schema check.
# Equivalent to `make check`; kept as a plain script for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench smoke =="
python -m repro bench --smoke --out-dir .bench-smoke --repeats 1
python scripts/validate_bench.py .bench-smoke/BENCH_conflict_graph.json .bench-smoke/BENCH_maxis.json .bench-smoke/BENCH_reduction.json

echo "check: OK"
