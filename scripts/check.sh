#!/bin/sh
# Full local gate: tier-1 tests + perf-harness smoke run with schema check.
# Equivalent to `make check`; kept as a plain script for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# The coverage gate runs the full suite itself (propagating pytest's exit
# code) and then enforces the line-coverage floor over
# src/repro/{core,maxis,graphs} — so tests run once, not twice.
# SKIP_COVERAGE=1 falls back to the plain (faster) tier-1 run.
if [ "${SKIP_COVERAGE:-0}" = "1" ]; then
    echo "== tier-1 tests (coverage skipped: SKIP_COVERAGE=1) =="
    python -m pytest -x -q
else
    echo "== tier-1 tests + coverage gate =="
    python scripts/coverage.py
fi

echo "== bench smoke =="
python -m repro bench --smoke --out-dir .bench-smoke --repeats 1
python scripts/validate_bench.py .bench-smoke

echo "== campaign smoke =="
python scripts/campaign_smoke.py

echo "== chaos smoke =="
python scripts/chaos_smoke.py

echo "== store smoke =="
python scripts/store_smoke.py

echo "== obs smoke =="
python scripts/obs_smoke.py

echo "check: OK"
