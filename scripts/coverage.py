#!/usr/bin/env python
"""Line-coverage gate for the core packages, with a dependency-free fallback.

Measures line coverage of ``src/repro/core``, ``src/repro/maxis``,
``src/repro/graphs``, ``src/repro/runtime`` and ``src/repro/obs`` under
the full test suite
and fails when the aggregate drops below ``FAIL_UNDER`` percent (the
floor measured when the gate was introduced — raise it when coverage
improves, never lower it to make a regression pass).

Two measurement backends:

* ``pytest-cov`` when it is installed (fast, standard); the floor is
  enforced via ``--cov-fail-under``.
* otherwise the stdlib :mod:`trace` module (no third-party dependency;
  roughly 5× slower than an untraced run).  Executable line numbers come
  from :func:`trace._find_executable_linenos`, and *every* module file in
  the target packages counts — files the suite never imports contribute
  zero hit lines.

Usage: ``python scripts/coverage.py`` (from the repository root; run by
``make coverage`` and ``scripts/check.sh``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Packages whose line coverage is gated (paths under src/).
TARGET_PACKAGES = (
    "repro/core",
    "repro/maxis",
    "repro/graphs",
    "repro/runtime",
    "repro/obs",
)

#: Aggregate fail-under floor in percent: the stdlib backend measured
#: 93.6% (core 91.6 / maxis 94.5 / graphs 94.8) when the gate was
#: introduced.  PR 4 added src/repro/runtime (98.4% at introduction) and
#: fixed the trace._Ignore module-name cache poisoning that had been
#: dropping __init__.py (and runtime/tasks.py) from the counts, lifting
#: the measured aggregate to 95.3% (floor 94).  PR 5's shard/worker-pool/
#: instance-cache runtime plus its campaign fuzz harness measured 95.6%
#: (runtime 98.9%) — the floor ratchets up to 95.  PR 8 added
#: src/repro/obs (98.8% at introduction; aggregate 96.1%).
#: pytest-cov counts lines slightly differently; the common floor is
#: conservative for both backends.
FAIL_UNDER = 95


def _have_pytest_cov() -> bool:
    try:
        import pytest_cov  # noqa: F401

        return True
    except ImportError:
        return False


def _run_with_pytest_cov() -> int:
    import subprocess

    args = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        *(f"--cov={pkg.replace('/', '.')}" for pkg in TARGET_PACKAGES),
        "--cov-report=term",
        f"--cov-fail-under={FAIL_UNDER}",
        "tests",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(SRC)
    return subprocess.call(args, cwd=REPO_ROOT, env=env)


def _target_files():
    for pkg in TARGET_PACKAGES:
        for path in sorted((SRC / pkg).rglob("*.py")):
            yield pkg, path


def _run_with_stdlib_trace() -> int:
    import trace

    import pytest

    sys.path.insert(0, str(SRC))
    tracer = trace.Trace(count=1, trace=0, ignoredirs=[sys.prefix, sys.exec_prefix])
    # trace._Ignore caches its ignore decision by *bare module name*: once a
    # stdlib file in an ignored dir runs (asyncio/tasks.py, any __init__.py),
    # every same-named file under src/ is silently dropped from the counts.
    # Pre-seed the cache with "do not ignore" for every gated module name so
    # e.g. repro/runtime/tasks.py and the package __init__ files are counted.
    for _pkg, path in _target_files():
        tracer.ignore._ignore[path.stem] = 0
    rc = tracer.runfunc(
        pytest.main, ["-q", "-p", "no:cacheprovider", str(REPO_ROOT / "tests")]
    )
    if rc:
        print(f"coverage: test run failed (pytest exit code {rc})")
        return int(rc)

    hit_lines = {}
    for (fname, lineno), _count in tracer.results().counts.items():
        hit_lines.setdefault(os.path.realpath(fname), set()).add(lineno)

    per_package = {pkg: [0, 0] for pkg in TARGET_PACKAGES}
    total_executable = total_hit = 0
    for pkg, path in _target_files():
        executable = set(trace._find_executable_linenos(str(path)))
        hits = hit_lines.get(os.path.realpath(str(path)), set())
        per_package[pkg][0] += len(executable & hits)
        per_package[pkg][1] += len(executable)
        total_hit += len(executable & hits)
        total_executable += len(executable)

    print()
    print("line coverage (stdlib trace backend):")
    for pkg, (hit, executable) in per_package.items():
        pct = 100.0 * hit / executable if executable else 100.0
        print(f"  src/{pkg:<14s} {hit:5d}/{executable:<5d}  {pct:5.1f}%")
    total_pct = 100.0 * total_hit / total_executable if total_executable else 100.0
    print(f"  {'TOTAL':<18s} {total_hit:5d}/{total_executable:<5d}  {total_pct:5.1f}%")
    if total_pct < FAIL_UNDER:
        print(f"coverage: FAIL — total {total_pct:.1f}% is below the floor {FAIL_UNDER}%")
        return 1
    print(f"coverage: OK — total {total_pct:.1f}% ≥ floor {FAIL_UNDER}%")
    return 0


def main() -> int:
    if _have_pytest_cov():
        return _run_with_pytest_cov()
    print("coverage: pytest-cov not installed; using the stdlib trace backend")
    return _run_with_stdlib_trace()


if __name__ == "__main__":
    raise SystemExit(main())
