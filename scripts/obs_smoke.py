#!/usr/bin/env python
"""Observability smoke gate: tracing is lossless, the metric catalog is live.

Runs the tiny committed 8-task spec (``examples/campaign_smoke.json``)
twice — once plain, once with ``--trace`` — and asserts:

1. the traced run's aggregate digest is byte-identical to the untraced
   reference (instrumentation must never perturb results);
2. the ``trace.jsonl`` sidecar is well-formed (schema-validated, zero
   skipped lines on a clean run) and contains the execution tree: one
   ``campaign_run`` span, one ``task`` span per task, nested ``phase``
   spans;
3. the persisted ``metrics.json`` snapshot is non-empty and its
   Prometheus rendering covers the catalog the acceptance criteria name
   (tasks/s, task-duration histogram, cache hits, pool warmth, retries/
   timeouts, store flush counts).

Usage: ``python scripts/obs_smoke.py`` (from the repository root; run by
``make obs-smoke`` and ``scripts/check.sh``).  Scratch output goes to
``.obs-smoke/`` (wiped on entry).
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.runtime import (  # noqa: E402
    CampaignSpec,
    CampaignStore,
    campaign_digest,
    campaign_records,
    run_campaign,
)

SPEC_PATH = REPO_ROOT / "examples" / "campaign_smoke.json"
SCRATCH = REPO_ROOT / ".obs-smoke"

#: Metric families the acceptance criteria require the snapshot to cover.
REQUIRED_FAMILIES = (
    "repro_campaign_tasks_per_second",
    "repro_task_duration_seconds",
    "repro_instance_cache_total",
    "repro_pool_dispatch_total",
    "repro_tasks_started_total",
    "repro_tasks_completed_total",
    "repro_tasks_retried_total",
    "repro_store_flushes_total",
    "repro_store_rows_appended_total",
)


def digest_of(spec: CampaignSpec, directory: Path) -> str:
    return campaign_digest(campaign_records(spec, CampaignStore(directory).rows()))


def main() -> int:
    spec = CampaignSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    shutil.rmtree(SCRATCH, ignore_errors=True)

    plain = run_campaign(spec, SCRATCH / "plain", workers=0)
    traced = run_campaign(spec, SCRATCH / "traced", workers=0, trace=True)
    if plain.failed or traced.failed:
        print("obs-smoke: FAIL — smoke campaign had failing tasks")
        return 1
    reference = digest_of(spec, SCRATCH / "plain")
    traced_digest = digest_of(spec, SCRATCH / "traced")
    print(f"plain:  {plain.executed} tasks  digest {reference[:12]}")
    print(f"traced: {traced.executed} tasks  digest {traced_digest[:12]}")
    if traced_digest != reference:
        print("obs-smoke: FAIL — tracing perturbed the aggregate digest")
        return 1

    sidecar = SCRATCH / "traced" / obs.TRACE_FILENAME
    valid, skipped = obs.validate_trace(sidecar)
    records = obs.read_trace(sidecar)
    spans = [r for r in records if r["type"] == "span"]
    names = [r["name"] for r in spans]
    print(f"trace:  {valid} valid record(s), {skipped} skipped, {len(spans)} span(s)")
    if skipped != 0:
        print("obs-smoke: FAIL — clean traced run left skipped sidecar lines")
        return 1
    if names.count("campaign_run") != 1 or names.count("task") != spec.num_tasks():
        print(
            f"obs-smoke: FAIL — expected 1 campaign_run + {spec.num_tasks()} task "
            f"spans, got {names.count('campaign_run')} + {names.count('task')}"
        )
        return 1
    if "phase" not in names:
        print("obs-smoke: FAIL — no reduction phase spans in the sidecar")
        return 1

    snapshot = obs.load_snapshot(SCRATCH / "traced" / obs.METRICS_FILENAME)
    populated = {m["name"] for m in snapshot["metrics"] if m["samples"]}
    print(f"metrics: {len(populated)} populated famil(ies) in the snapshot")
    if not populated:
        print("obs-smoke: FAIL — metrics snapshot has no samples")
        return 1
    missing = [name for name in REQUIRED_FAMILIES if name not in populated]
    if missing:
        print(f"obs-smoke: FAIL — snapshot lacks required families: {missing}")
        return 1
    text = obs.render_snapshot(snapshot)
    if "# TYPE repro_task_duration_seconds histogram" not in text:
        print("obs-smoke: FAIL — Prometheus rendering lost the duration histogram")
        return 1

    print("obs-smoke: OK (traced ≡ plain, sidecar well-formed, catalog covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
