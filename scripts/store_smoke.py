#!/usr/bin/env python
"""Store-backend smoke gate: JSONL ≡ SQLite ≡ compacted, plus incremental reports.

Runs the tiny committed 8-task spec (``examples/campaign_smoke.json``)
through both store backends and asserts every aggregation path lands on
one byte-identical digest:

1. the serial JSONL reference, digested from the full row log;
2. the same store digested through the incremental-aggregate path
   (``store.summaries()`` + ``records_from_summaries``);
3. a serial run on the SQLite backend, via both paths;
4. both stores compacted after a superseded duplicate row is planted —
   compaction must drop the row and leave the digest untouched.

Usage: ``python scripts/store_smoke.py`` (from the repository root; run
by ``make store-smoke`` and ``scripts/check.sh``).  Scratch output goes
to ``.store-smoke/`` (wiped on entry).
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import (  # noqa: E402
    CampaignSpec,
    campaign_digest,
    campaign_records,
    open_store,
    records_from_summaries,
    run_campaign,
)

SPEC_PATH = REPO_ROOT / "examples" / "campaign_smoke.json"
SCRATCH = REPO_ROOT / ".store-smoke"


def digests_of(spec: CampaignSpec, directory: Path) -> tuple:
    """(full-row digest, incremental-aggregate digest) for one store."""
    store = open_store(directory)
    full = campaign_digest(campaign_records(spec, store.rows()))
    incremental = campaign_digest(records_from_summaries(spec, store.summaries()))
    return full, incremental


def main() -> int:
    spec = CampaignSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    shutil.rmtree(SCRATCH, ignore_errors=True)

    runs = {}
    for backend in ("jsonl", "sqlite"):
        stats = run_campaign(spec, SCRATCH / backend, workers=0, backend=backend)
        if stats.failed:
            print(f"store-smoke: FAIL — {stats.failed} {backend} tasks failed")
            return 1
        full, incremental = digests_of(spec, SCRATCH / backend)
        print(
            f"{backend + ':':<8} {stats.executed} tasks in {stats.wall_time_s:.3f}s  "
            f"full {full[:12]}  incremental {incremental[:12]}"
        )
        if incremental != full:
            print(f"store-smoke: FAIL — {backend} incremental digest diverged")
            return 1
        runs[backend] = full
    if runs["sqlite"] != runs["jsonl"]:
        print("store-smoke: FAIL — sqlite digest differs from the JSONL reference")
        return 1
    reference = runs["jsonl"]

    for backend in ("jsonl", "sqlite"):
        store = open_store(SCRATCH / backend)
        store.append(store.rows()[0])  # superseded duplicate, as a retry leaves
        stats = store.compact()
        full, incremental = digests_of(spec, SCRATCH / backend)
        print(
            f"compact {backend}: {stats.rows_before} -> {stats.rows_after} rows, "
            f"{stats.bytes_before} -> {stats.bytes_after} bytes  full {full[:12]}"
        )
        if stats.rows_dropped < 1:
            print(f"store-smoke: FAIL — {backend} compaction dropped nothing")
            return 1
        if full != reference or incremental != reference:
            print(f"store-smoke: FAIL — compacted {backend} digest diverged")
            return 1

    print("store-smoke: OK (jsonl ≡ sqlite ≡ compacted, full ≡ incremental)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
