#!/usr/bin/env python
"""Validate BENCH_*.json files against the perf-harness schema.

Usage: python scripts/validate_bench.py BENCH_conflict_graph.json [...]
       python scripts/validate_bench.py .bench-smoke

Arguments may be files or directories; a directory validates every
``BENCH_*.json`` inside it (all four families, including
``BENCH_campaign.json``, whose records must carry the scale keys
``shards``, ``cache_hits`` and ``pool_warm``, the fault-tolerance
counters ``restarts``, ``timeouts`` and ``retried``, and the store
keys ``store_backend`` and ``report_wall_time_s`` — the incremental
report latency — next to the original throughput keys) and fails when
it contains none.  Exits non-zero
(with a message per file) on the first schema violation, so it can gate
CI / `make bench-smoke`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import validate_bench_payload  # noqa: E402


def main(argv: list) -> int:
    if not argv:
        print("usage: validate_bench.py BENCH_file.json|directory [...]", file=sys.stderr)
        return 2
    paths = []
    for name in argv:
        path = Path(name)
        if path.is_dir():
            found = sorted(path.glob("BENCH_*.json"))
            if not found:
                print(f"{path}: INVALID (directory contains no BENCH_*.json)", file=sys.stderr)
                return 1
            paths.extend(found)
        else:
            paths.append(path)
    for path in paths:
        try:
            validate_bench_payload(json.loads(path.read_text()))
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID ({exc})", file=sys.stderr)
            return 1
        print(f"{path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
