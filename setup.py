"""Legacy setup script (kept so editable installs work without the wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'P-SLOCAL-Completeness of Maximum Independent Set "
        "Approximation' (Maus, PODC 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["networkx", "numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
