"""repro — reproduction of "P-SLOCAL-Completeness of Maximum Independent Set
Approximation" (Yannic Maus, PODC 2019 / arXiv:1907.10499).

The package implements the paper's reduction from conflict-free
multicoloring to maximum-independent-set approximation, the Lemma 2.1
correspondence through the conflict graph ``G_k``, and every substrate the
argument rests on: hypergraphs, SLOCAL and LOCAL model simulators, MaxIS
approximation algorithms, conflict-free colorings and network
decompositions.

Quickstart
----------
>>> from repro import (
...     colorable_almost_uniform_hypergraph,
...     get_approximator,
...     solve_conflict_free_multicoloring,
...     verify_reduction_result,
... )
>>> hypergraph, _ = colorable_almost_uniform_hypergraph(n=30, m=20, k=3, seed=1)
>>> result = solve_conflict_free_multicoloring(
...     hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
... )
>>> report = verify_reduction_result(hypergraph, result)
>>> report.conflict_free
True
"""

from repro.exceptions import (
    ApproximationError,
    ColoringError,
    GraphError,
    HypergraphError,
    IndependenceError,
    LocalityViolation,
    ModelError,
    ReductionError,
    ReproError,
    VerificationError,
)
from repro.graphs import Graph
from repro.hypergraph import (
    Hypergraph,
    almost_uniform_hypergraph,
    colorable_almost_uniform_hypergraph,
    random_interval_hypergraph,
)
from repro.core import (
    ConflictFreeMulticoloringViaMaxIS,
    ConflictGraph,
    ConflictVertex,
    ReductionResult,
    coloring_to_independent_set,
    independent_set_to_coloring,
    phase_budget,
    solve_conflict_free_multicoloring,
    verify_lemma_21a,
    verify_lemma_21b,
    verify_reduction_result,
)
from repro.coloring import Multicoloring, verify_conflict_free_coloring
from repro.maxis import available_approximators, get_approximator
from repro.slocal import SLOCALEngine, slocal_greedy_coloring, slocal_mis
from repro.local_model import LocalNetwork, luby_mis, randomized_coloring

__version__ = "1.0.0"

__all__ = [
    "ApproximationError",
    "ColoringError",
    "GraphError",
    "HypergraphError",
    "IndependenceError",
    "LocalityViolation",
    "ModelError",
    "ReductionError",
    "ReproError",
    "VerificationError",
    "Graph",
    "Hypergraph",
    "almost_uniform_hypergraph",
    "colorable_almost_uniform_hypergraph",
    "random_interval_hypergraph",
    "ConflictFreeMulticoloringViaMaxIS",
    "ConflictGraph",
    "ConflictVertex",
    "ReductionResult",
    "coloring_to_independent_set",
    "independent_set_to_coloring",
    "phase_budget",
    "solve_conflict_free_multicoloring",
    "verify_lemma_21a",
    "verify_lemma_21b",
    "verify_reduction_result",
    "Multicoloring",
    "verify_conflict_free_coloring",
    "available_approximators",
    "get_approximator",
    "SLOCALEngine",
    "slocal_greedy_coloring",
    "slocal_mis",
    "LocalNetwork",
    "luby_mis",
    "randomized_coloring",
    "__version__",
]
