"""Analysis utilities: phase-decay statistics, metrics, table formatting."""

from repro.analysis.phase_stats import (
    DecayCurve,
    decay_curve,
    effective_lambda,
    geometric_fit_rate,
    observed_removal_fractions,
    phase_summary,
    phases_needed_at_rate,
    run_summary,
)
from repro.analysis.metrics import (
    approximator_quality_table,
    conflict_graph_scaling_row,
    mis_model_comparison,
)
from repro.analysis.records import (
    ExperimentRecord,
    read_records,
    record_model_gap,
    record_oracle_quality,
    record_phase_decay,
    write_records,
)
from repro.analysis.tables import consume_table_log, format_records, format_table, print_table

__all__ = [
    "DecayCurve",
    "decay_curve",
    "effective_lambda",
    "geometric_fit_rate",
    "observed_removal_fractions",
    "phase_summary",
    "phases_needed_at_rate",
    "run_summary",
    "approximator_quality_table",
    "conflict_graph_scaling_row",
    "mis_model_comparison",
    "ExperimentRecord",
    "read_records",
    "record_model_gap",
    "record_oracle_quality",
    "record_phase_decay",
    "write_records",
    "consume_table_log",
    "format_records",
    "format_table",
    "print_table",
]
