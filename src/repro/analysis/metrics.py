"""Cross-cutting metrics used by benchmarks: approximation quality, model costs.

These helpers compute, for a given instance, the numbers that the
experiment tables report side by side — e.g. the measured approximation
ratio of every registered MaxIS oracle, or the SLOCAL-locality versus
LOCAL-rounds comparison of benchmark E7.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.graphs.graph import Graph
from repro.graphs.independent_sets import independence_number
from repro.maxis.approximators import available_approximators

Vertex = Hashable


def approximator_quality_table(
    graph: Graph,
    names: Optional[List[str]] = None,
    optimum: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Measure every (selected) registered approximator on one graph.

    Returns one row per approximator with the set size, the measured ratio
    ``α(G)/|I|`` and the worst-case guarantee the algorithm claims on this
    instance.  ``optimum`` may be supplied to avoid recomputing α(G).
    """
    registry = available_approximators()
    if names is None:
        names = sorted(registry)
    if optimum is None:
        optimum = independence_number(graph)
    rows: List[Dict[str, float]] = []
    for name in names:
        approximator = registry[name]
        solution = approximator(graph)
        ratio = (optimum / len(solution)) if solution else float("inf")
        if optimum == 0:
            ratio = 1.0
        guarantee = approximator.guaranteed_lambda(graph)
        rows.append(
            {
                "approximator": name,
                "size": float(len(solution)),
                "optimum": float(optimum),
                "measured_ratio": ratio,
                "guaranteed_lambda": float(guarantee) if guarantee is not None else float("nan"),
            }
        )
    return rows


def mis_model_comparison(graph: Graph, seed: int = 0) -> Dict[str, float]:
    """Compare the SLOCAL locality-1 MIS with Luby's LOCAL MIS on one graph.

    Returns the sizes of the two (valid) MIS outputs, the SLOCAL locality
    (always 1), and the number of LOCAL communication rounds Luby's
    algorithm used.
    """
    from repro.graphs.independent_sets import is_maximal_independent_set
    from repro.local_model.algorithms import luby_mis
    from repro.slocal.algorithms import slocal_mis

    slocal_set = slocal_mis(graph)
    luby_set, run = luby_mis(graph, seed=seed)
    return {
        "n": float(graph.num_vertices()),
        "slocal_mis_size": float(len(slocal_set)),
        "slocal_locality": 1.0,
        "slocal_valid": 1.0 if is_maximal_independent_set(graph, slocal_set) else 0.0,
        "luby_mis_size": float(len(luby_set)),
        "luby_rounds": float(run.rounds),
        "luby_valid": 1.0 if is_maximal_independent_set(graph, luby_set) else 0.0,
    }


def conflict_graph_scaling_row(hypergraph, k: int) -> Dict[str, float]:
    """Size accounting of the conflict graph of one hypergraph (benchmark E5)."""
    from repro.core.bounds import (
        conflict_graph_edge_count_upper_bound,
        conflict_graph_vertex_count,
    )
    from repro.core.conflict_graph import ConflictGraph

    cg = ConflictGraph(hypergraph, k)
    total = hypergraph.total_edge_size()
    return {
        "n": float(hypergraph.num_vertices()),
        "m": float(hypergraph.num_edges()),
        "k": float(k),
        "cg_vertices": float(cg.num_vertices()),
        "cg_vertices_formula": float(conflict_graph_vertex_count(total, k)),
        "cg_edges": float(cg.num_edges()),
        "cg_edges_upper_bound": float(conflict_graph_edge_count_upper_bound(total, k)),
    }
