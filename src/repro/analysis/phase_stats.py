"""Phase-decay analysis of reduction runs (benchmarks E3/E4).

The analysis of Theorem 1.1 predicts geometric decay of the unhappy-edge
count: ``|E_{i+1}| ≤ (1 − 1/λ)·|E_i|``.  The helpers here turn a
:class:`~repro.core.reduction.ReductionResult` into the decay curve, fit
the observed per-phase removal rate, and compare phase/color counts to the
theoretical budgets — producing exactly the rows that EXPERIMENTS.md
reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.bounds import expected_remaining_edges
from repro.core.reduction import ReductionResult
from repro.exceptions import ReproError


@dataclass(frozen=True)
class DecayCurve:
    """Observed vs. guaranteed unhappy-edge counts per phase.

    Attributes
    ----------
    observed:
        ``[|E_1|, |E_2|, …]`` including the final count.
    guaranteed:
        The bound ``(1 − 1/λ)^i · m`` for the same indices.
    """

    observed: List[int]
    guaranteed: List[float]

    def respects_guarantee(self) -> bool:
        """Whether the observed curve never exceeds the guaranteed curve."""
        return all(o <= g + 1e-9 for o, g in zip(self.observed, self.guaranteed))


def decay_curve(result: ReductionResult) -> DecayCurve:
    """Build the :class:`DecayCurve` of a reduction run."""
    observed = result.remaining_edges_series()
    if not observed:
        return DecayCurve(observed=[], guaranteed=[])
    m = observed[0]
    guaranteed = [expected_remaining_edges(m, result.lam, i) for i in range(len(observed))]
    return DecayCurve(observed=observed, guaranteed=guaranteed)


def observed_removal_fractions(result: ReductionResult) -> List[float]:
    """Return the per-phase fraction of surviving edges that became happy."""
    return [p.removal_fraction for p in result.phases if p.edges_before > 0]


def effective_lambda(result: ReductionResult) -> float:
    """Estimate the approximation factor the oracle *effectively* achieved.

    The analysis gives per-phase removal fraction ``≥ 1/λ``; inverting the
    smallest observed removal fraction therefore upper-bounds the λ the
    oracle behaved like over the whole run.  Returns ``1.0`` for runs with
    no non-trivial phase.
    """
    fractions = [f for f in observed_removal_fractions(result) if f > 0]
    if not fractions:
        return 1.0
    return 1.0 / min(fractions)


def phase_summary(result: ReductionResult) -> List[Dict[str, float]]:
    """Return one row per phase with the quantities reported in EXPERIMENTS.md."""
    rows: List[Dict[str, float]] = []
    for p in result.phases:
        rows.append(
            {
                "phase": float(p.phase),
                "edges_before": float(p.edges_before),
                "is_size": float(p.independent_set_size),
                "removed": float(p.removed),
                "edges_after": float(p.edges_after),
                "removal_fraction": p.removal_fraction,
                "conflict_graph_vertices": float(p.conflict_graph_vertices),
                "conflict_graph_edges": float(p.conflict_graph_edges),
            }
        )
    return rows


def run_summary(result: ReductionResult) -> Dict[str, float]:
    """Return the headline numbers of a run (phases, colors, bounds, effective λ)."""
    return {
        "phases": float(result.num_phases),
        "phase_bound": float(result.phase_bound),
        "total_colors": float(result.total_colors),
        "color_bound": float(result.color_bound),
        "effective_lambda": effective_lambda(result),
        "assumed_lambda": result.lam,
        "within_phase_bound": 1.0 if result.within_phase_bound() else 0.0,
        "within_color_bound": 1.0 if result.within_color_bound() else 0.0,
    }


def geometric_fit_rate(observed: List[int]) -> float:
    """Fit a geometric decay rate ``r`` to an observed edge-count series.

    Returns the average of the per-step ratios ``|E_{i+1}| / |E_i|``
    (ignoring steps that start at zero).  A rate below ``1 − 1/λ`` means
    the run decayed faster than the theory requires.
    """
    if len(observed) < 2:
        raise ReproError("need at least two points to fit a decay rate")
    ratios = [
        observed[i + 1] / observed[i]
        for i in range(len(observed) - 1)
        if observed[i] > 0
    ]
    if not ratios:
        return 0.0
    return sum(ratios) / len(ratios)


def phases_needed_at_rate(m: int, rate: float) -> int:
    """Number of phases needed to drop below one edge at a constant decay ``rate``."""
    if not 0 <= rate < 1:
        raise ReproError(f"rate must lie in [0, 1), got {rate}")
    if m <= 1:
        return 1 if m == 1 else 0
    if rate == 0:
        return 1
    return math.ceil(math.log(m) / -math.log(rate))
