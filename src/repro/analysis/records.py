"""Machine-readable experiment records.

The benchmark harness prints plain-text tables; downstream users often want
the same data as JSON (to plot decay curves, compare oracles across
machines, or archive runs next to EXPERIMENTS.md).  This module provides a
small record model — an :class:`ExperimentRecord` is a named collection of
homogeneous rows plus free-form metadata — together with JSON round-trip
helpers and runners that produce the records for the core experiments
programmatically (the same computations the benches perform, minus the
pytest wrapper).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError


@dataclass
class ExperimentRecord:
    """One experiment's data: an identifier, metadata, and a list of row dicts.

    Attributes
    ----------
    experiment:
        Identifier such as ``"E3"``.
    description:
        One-line description of what the rows contain.
    rows:
        Homogeneous list of dictionaries (one per table row).
    metadata:
        Free-form run metadata (seeds, parameter sweeps, versions).
    """

    experiment: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append one row."""
        self.rows.append(dict(values))

    def column(self, key: str) -> List[Any]:
        """Return one column across all rows (missing values become ``None``)."""
        return [row.get(key) for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-friendly dictionary."""
        return {
            "experiment": self.experiment,
            "description": self.description,
            "metadata": dict(self.metadata),
            "rows": [dict(row) for row in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentRecord":
        """Inverse of :meth:`to_dict`."""
        for key in ("experiment", "description", "rows"):
            if key not in data:
                raise ReproError(f"experiment record is missing the {key!r} field")
        return cls(
            experiment=data["experiment"],
            description=data["description"],
            rows=[dict(row) for row in data["rows"]],
            metadata=dict(data.get("metadata", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def record_phase_decay(
    hypergraph,
    k: int,
    approximator,
    lam: float,
    label: Optional[str] = None,
) -> ExperimentRecord:
    """Run the reduction once and record its per-phase decay (experiment E3 data)."""
    from repro.analysis.phase_stats import decay_curve, effective_lambda, phase_summary
    from repro.core.reduction import solve_conflict_free_multicoloring

    result = solve_conflict_free_multicoloring(hypergraph, k=k, approximator=approximator, lam=lam)
    curve = decay_curve(result)
    record = ExperimentRecord(
        experiment="E3",
        description="per-phase unhappy-edge decay of the Theorem 1.1 reduction",
        metadata={
            "label": label or "",
            "n": hypergraph.num_vertices(),
            "m": hypergraph.num_edges(),
            "k": k,
            "lambda": lam,
            "effective_lambda": effective_lambda(result),
            "phase_bound": result.phase_bound,
            "color_bound": result.color_bound,
            "total_colors": result.total_colors,
        },
    )
    for row, observed, guaranteed in zip(
        phase_summary(result), curve.observed[1:], curve.guaranteed[1:]
    ):
        record.add_row(
            phase=int(row["phase"]),
            edges_before=int(row["edges_before"]),
            independent_set=int(row["is_size"]),
            edges_after=int(observed),
            guaranteed_bound=float(guaranteed),
            removal_fraction=float(row["removal_fraction"]),
        )
    return record


def record_oracle_quality(graph, names: Optional[List[str]] = None) -> ExperimentRecord:
    """Measure registered approximators on one graph (experiment E6 data)."""
    from repro.analysis.metrics import approximator_quality_table

    record = ExperimentRecord(
        experiment="E6",
        description="MaxIS approximator quality against the exact optimum",
        metadata={"n": graph.num_vertices(), "m": graph.num_edges()},
    )
    for row in approximator_quality_table(graph, names=names):
        record.add_row(**row)
    return record


def record_model_gap(graphs_with_labels, seed: int = 0) -> ExperimentRecord:
    """Compare SLOCAL and LOCAL MIS across graphs (experiment E7 data)."""
    from repro.analysis.metrics import mis_model_comparison

    record = ExperimentRecord(
        experiment="E7",
        description="MIS across models: SLOCAL locality vs. Luby's LOCAL rounds",
        metadata={"seed": seed},
    )
    for label, graph in graphs_with_labels:
        row = {"graph": label}
        row.update(mis_model_comparison(graph, seed=seed))
        record.add_row(**row)
    return record


def write_records(records: List[ExperimentRecord], path: str) -> None:
    """Write a list of records as one JSON document at ``path``."""
    payload = [record.to_dict() for record in records]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def read_records(path: str) -> List[ExperimentRecord]:
    """Read a JSON document written by :func:`write_records`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ReproError("expected a JSON list of experiment records")
    return [ExperimentRecord.from_dict(item) for item in payload]
