"""Plain-text table rendering shared by the benchmark harness and the examples.

The benchmark harness prints its reproduction tables to stdout (captured in
``bench_output.txt``); a tiny formatter keeps those tables aligned and free
of external dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Render a single cell: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], precision: int = 3) -> str:
    """Render an aligned plain-text table with a header rule."""
    rendered_rows: List[List[str]] = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered_rows
    ]
    return "\n".join([header_line, rule] + body)


def format_records(records: Sequence[Dict[str, Cell]], precision: int = 3) -> str:
    """Render a list of homogeneous dictionaries as a table (keys become headers)."""
    if not records:
        return "(no rows)"
    headers = list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows, precision=precision)


#: Accumulates every table printed via :func:`print_table` during a process.
#: The benchmark harness replays this log in its terminal summary so the
#: reproduction tables survive pytest's output capture.
_TABLE_LOG: List[str] = []


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> None:
    """Print a titled table and record it in the in-process table log."""
    text = f"\n== {title} ==\n{format_table(headers, list(rows))}\n"
    _TABLE_LOG.append(text)
    print(text, end="")


def consume_table_log() -> str:
    """Return every table printed so far and clear the log.

    Used by the benchmark harness (``benchmarks/conftest.py``) to re-emit the
    reproduction tables in pytest's terminal summary, where they are not
    swallowed by per-test output capture.
    """
    text = "".join(_TABLE_LOG)
    _TABLE_LOG.clear()
    return text
