"""Performance harness: timed conflict-graph builds and MIS solves.

This module is the library half of ``benchmarks/perf_harness.py`` and the
``repro bench`` CLI subcommand.  It times the two hottest layers of the
pipeline on the standard workload families (the same families the
benchmark suite under ``benchmarks/`` uses) and writes machine-readable
trajectories:

* ``BENCH_conflict_graph.json`` — wall time of the bucketed
  :class:`~repro.core.conflict_graph.ConflictGraph` builder next to the
  retained legacy (seed) builder, per workload;
* ``BENCH_maxis.json`` — wall time of each registered MIS approximator on
  the conflict graphs of the same workloads plus the plain-graph family;
* ``BENCH_reduction.json`` — wall time of the full Theorem 1.1 pipeline
  (``ConflictFreeMulticoloringViaMaxIS.run``, the incremental phase
  engine) next to the retained rebuild-per-phase path
  (:meth:`~repro.core.reduction.ConflictFreeMulticoloringViaMaxIS.run_rebuild`),
  per workload and oracle regime, with result equality asserted;
* ``BENCH_campaign.json`` — throughput (tasks/s) of the campaign runtime
  (:mod:`repro.runtime`): the serial reference executor vs. per-call
  worker pools vs. a sharded run fused by ``merge_shards`` vs. a
  persistent warm ``WorkerPool`` vs. the indexed SQLite store backend,
  all on one fixed campaign, with the deterministic aggregate digest
  asserted equal across every configuration (and, per run, the
  incremental-report digest asserted equal to the full-row reference).

JSON schema (``schema_version`` 1): the top level carries
``schema_version``, ``benchmark``, ``generated_by`` and ``records``; every
record carries ``label`` (workload), ``n`` / ``m`` (size of the object
being processed), ``wall_time_s`` and ``peak_triples`` (``|V(G_k)|``, the
high-water number of conflict triples the workload materializes).
Conflict-graph records add ``k``, ``num_edges``, ``legacy_wall_time_s``
and ``speedup``; MIS records add ``algorithm`` and ``is_size``; campaign
records add ``workers``, ``tasks``, ``tasks_per_s``, ``speedup`` (vs.
the serial executor), ``shards`` (1 unless the run was shard-split),
``pool_warm`` (persistent pool reused across runs), ``cache_hits``
(instance builds served by the per-process cache),
``report_wall_time_s`` (a warm incremental report on the
already-aggregated store — the O(new rows) query-path deliverable) and
``store_backend`` (``jsonl``/``sqlite``; plus the informational
``digest``); reduction
records add ``k``, ``num_phases``, ``total_colors``,
``rebuild_wall_time_s``, ``happy_check_wall_time_s`` (seconds the
incremental engine's incidence-driven happiness tracker spent across all
phases of the timed run; ``rebuild_happy_check_wall_time_s`` is the
informational full-scan counterpart) and ``speedup`` (plus the
informational ``oracle`` and ``lam``).  Later PRs must keep these keys so the trajectory stays
comparable (:func:`validate_bench_payload` is the schema check used by
tests and ``make bench-smoke``).

One deliberate semantics change since the incremental engine (PR 2):
conflict-graph ``wall_time_s`` times the :class:`ConflictGraph`
constructor, which now produces the frozen bitset snapshot the pipeline
consumes instead of an eagerly built mutable ``Graph``.  The extra
``graph_wall_time_s`` key also materializes the mutable graph — that is
the pre-PR-2 deliverable, so cross-PR comparisons spanning the change
should use it.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

CONFLICT_GRAPH_BENCH = "BENCH_conflict_graph.json"
MAXIS_BENCH = "BENCH_maxis.json"
REDUCTION_BENCH = "BENCH_reduction.json"
CAMPAIGN_BENCH = "BENCH_campaign.json"

SCHEMA_VERSION = 1

#: The benchmark families ``run()`` knows how to produce.
FAMILIES = ("conflict-graph", "maxis", "reduction", "campaign")

#: The instance-size sweep of the benchmark suite's ``hypergraph_family``.
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = ((30, 20), (60, 40), (90, 60), (120, 80))
#: The single smallest workload, for smoke runs.
SMOKE_SIZES: Tuple[Tuple[int, int], ...] = ((30, 20),)

#: MIS algorithms timed by default (registry names).  ``exact`` is omitted:
#: it is exponential and the conflict graphs here exceed its size guard.
#: ``greedy-min-degree`` exercises the bitset-only residual-degree kernel
#: and ``luby-batch-of-8`` the bit-parallel batched Luby rounds.
DEFAULT_MAXIS_ALGORITHMS: Tuple[str, ...] = (
    "greedy-min-degree",
    "greedy-first-fit",
    "luby-best-of-5",
    "luby-batch-of-8",
)


# ----------------------------------------------------------------------
# workload families (shared with benchmarks/conftest.py)
# ----------------------------------------------------------------------
def hypergraph_family(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES, k: int = 4, epsilon: float = 0.5
):
    """Return ``[(label, hypergraph, planted, k)]`` for a sweep of instance sizes."""
    from repro.hypergraph import colorable_almost_uniform_hypergraph

    family = []
    for idx, (n, m) in enumerate(sizes):
        hypergraph, planted = colorable_almost_uniform_hypergraph(
            n=n, m=m, k=k, epsilon=epsilon, seed=100 + idx
        )
        family.append((f"n={n},m={m}", hypergraph, planted, k))
    return family


def graph_family():
    """Return ``[(label, graph)]`` for the MIS model-comparison experiment (E7)."""
    from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph, random_tree

    return [
        ("cycle C_64", cycle_graph(64)),
        ("grid 8x8", grid_graph(8, 8)),
        ("tree n=64", random_tree(64, seed=5)),
        ("G(64, 0.08)", erdos_renyi_graph(64, 0.08, seed=6)),
        ("G(64, 0.20)", erdos_renyi_graph(64, 0.20, seed=7)),
    ]


def interval_family():
    """Return ``[(label, hypergraph, n_points)]`` of interval hypergraphs (E8)."""
    from repro.hypergraph import random_interval_hypergraph

    result = []
    for n_points, n_intervals, seed in [(16, 12, 1), (32, 24, 2), (48, 36, 3)]:
        hypergraph = random_interval_hypergraph(n_points, n_intervals, seed=seed)
        result.append((f"points={n_points}", hypergraph, n_points))
    return result


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def _best_time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def bench_conflict_graph(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    k: int = 4,
    repeats: int = 3,
    include_legacy: bool = True,
) -> List[Dict[str, object]]:
    """Time the bucketed builder (and optionally the legacy one) per workload."""
    from repro.core.conflict_graph import ConflictGraph, legacy_build_graph

    records: List[Dict[str, object]] = []
    for label, hypergraph, _planted, kk in hypergraph_family(sizes=sizes, k=k):
        # ``wall_time_s`` times the constructor alone — since the
        # incremental engine landed, that builds the bucket structures plus
        # the frozen bitset snapshot, which is exactly what the reduction's
        # phase loop consumes (the mutable .graph became a lazily
        # materialized compatibility view).  ``graph_wall_time_s``
        # additionally materializes that mutable Graph, i.e. the deliverable
        # PR 1 timed: compare *that* key against pre-PR-2 ``wall_time_s``
        # values when reading the trajectory across the change.
        fast_s, cg = _best_time(lambda: ConflictGraph(hypergraph, kk), repeats)

        def build_with_graph():
            full = ConflictGraph(hypergraph, kk)
            full.graph
            return full

        graph_s, _cg2 = _best_time(build_with_graph, repeats)
        record: Dict[str, object] = {
            "label": label,
            "n": hypergraph.num_vertices(),
            "m": hypergraph.num_edges(),
            "k": kk,
            "peak_triples": cg.num_vertices(),
            "num_edges": cg.num_edges(),
            "wall_time_s": fast_s,
            "graph_wall_time_s": graph_s,
        }
        if include_legacy:
            legacy_s, legacy = _best_time(lambda: legacy_build_graph(hypergraph, kk), repeats)
            if legacy != cg.graph:
                raise AssertionError(
                    f"bucketed and legacy conflict graphs differ on workload {label!r}"
                )
            record["legacy_wall_time_s"] = legacy_s
            # None (not inf) when the timer underflows: json.dumps would emit
            # the non-standard `Infinity` token and break strict consumers.
            record["speedup"] = legacy_s / fast_s if fast_s > 0 else None
        records.append(record)
    return records


def bench_maxis(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    k: int = 4,
    repeats: int = 3,
    algorithms: Sequence[str] = DEFAULT_MAXIS_ALGORITHMS,
    include_plain_graphs: bool = True,
) -> List[Dict[str, object]]:
    """Time MIS solves on conflict graphs (and the plain-graph family)."""
    from repro.core.conflict_graph import ConflictGraph
    from repro.maxis import get_approximator

    workloads: List[Tuple[str, object, int]] = []
    for label, hypergraph, _planted, kk in hypergraph_family(sizes=sizes, k=k):
        cg = ConflictGraph(hypergraph, kk)
        workloads.append((f"G_k[{label}]", cg.graph, cg.num_vertices()))
    if include_plain_graphs:
        for label, graph in graph_family():
            workloads.append((label, graph, 0))

    records: List[Dict[str, object]] = []
    for label, graph, peak_triples in workloads:
        for name in algorithms:
            solver = get_approximator(name)
            wall_s, result = _best_time(lambda: solver(graph), repeats)
            records.append(
                {
                    "label": label,
                    "n": graph.num_vertices(),
                    "m": graph.num_edges(),
                    "algorithm": name,
                    "is_size": len(result),
                    "peak_triples": peak_triples,
                    "wall_time_s": wall_s,
                }
            )
    return records


#: Assumed approximation factor for the λ-capped benchmark oracle.
REDUCTION_LAM = 4.0


def capped_oracle(base_name: str = "greedy-first-fit", lam: float = REDUCTION_LAM):
    """A genuinely λ-approximate oracle: the base oracle capped to ``⌈|I|/λ⌉`` triples.

    The full-strength registry oracles solve the colorable workloads in
    one or two phases, where an incremental engine cannot beat a rebuild
    by definition (there is nothing to reuse).  Capping the returned
    independent set to a ``1/λ`` fraction (any subset of an independent
    set is independent, so Lemma 2.1(b) still holds per selected triple)
    emulates an oracle that only achieves its worst-case guarantee — the
    regime the paper's analysis is about, with ``ρ = λ·ln(m) + 1`` phases
    — and is the primary workload of the reduction benchmark.
    """
    from repro.maxis import MaxISApproximator, get_approximator

    base = get_approximator(base_name)

    def solve(graph):
        full = sorted(base.solve(graph), key=repr)
        target = max(1, math.ceil(len(full) / lam))
        return set(full[:target])

    return MaxISApproximator(
        name=f"{base_name}@1/{lam:g}",
        solve=solve,
        accepts_frozen=True,  # delegates to a built-in, which handles views
        description=f"{base_name} capped to a 1/{lam:g} fraction (worst-case λ regime).",
    )


def bench_reduction(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    k: int = 4,
    repeats: int = 3,
    lam: float = REDUCTION_LAM,
) -> List[Dict[str, object]]:
    """Time the end-to-end reduction: incremental engine vs. rebuild-per-phase.

    Two oracle regimes per workload: the λ-capped first-fit oracle (the
    multi-phase worst-case regime, ~``λ·ln m`` phases) and the
    full-strength first-fit oracle (the 1–2 phase best case).  Both paths
    must produce identical :class:`~repro.core.reduction.ReductionResult`
    contents; a mismatch aborts the benchmark.
    """
    from repro.core.conflict_graph import ConflictGraph
    from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS
    from repro.maxis import get_approximator

    oracles = [
        (f"first-fit@1/{lam:g}", capped_oracle("greedy-first-fit", lam)),
        ("first-fit", get_approximator("greedy-first-fit")),
    ]
    records: List[Dict[str, object]] = []
    for label, hypergraph, _planted, kk in hypergraph_family(sizes=sizes, k=k):
        peak_triples = kk * hypergraph.total_edge_size()
        for oracle_label, oracle in oracles:
            reduction = ConflictFreeMulticoloringViaMaxIS(
                k=kk, approximator=oracle, lam=lam
            )
            fast_s, result = _best_time(lambda: reduction.run(hypergraph), repeats)
            # Incidence-driven happy-check seconds of the last incremental
            # run (the engine accumulates them around the per-phase check).
            happy_s = reduction.last_happy_check_wall_time_s
            rebuild_s, reference = _best_time(
                lambda: reduction.run_rebuild(hypergraph), repeats
            )
            rebuild_happy_s = reduction.last_happy_check_wall_time_s
            if (
                result.multicoloring != reference.multicoloring
                or result.phases != reference.phases
                or result.phase_bound != reference.phase_bound
                or result.color_bound != reference.color_bound
            ):
                raise AssertionError(
                    f"incremental and rebuild reductions differ on workload "
                    f"{label!r} with oracle {oracle_label!r}"
                )
            records.append(
                {
                    "label": label,
                    "n": hypergraph.num_vertices(),
                    "m": hypergraph.num_edges(),
                    "k": kk,
                    "oracle": oracle_label,
                    "lam": lam,
                    "peak_triples": peak_triples,
                    "num_phases": result.num_phases,
                    "total_colors": result.total_colors,
                    "wall_time_s": fast_s,
                    "rebuild_wall_time_s": rebuild_s,
                    "happy_check_wall_time_s": happy_s,
                    "rebuild_happy_check_wall_time_s": rebuild_happy_s,
                    # None (not inf) when the timer underflows, as above.
                    "speedup": rebuild_s / fast_s if fast_s > 0 else None,
                }
            )
    return records


#: Worker-pool sizes the campaign benchmark compares against the serial
#: executor (the smoke run only uses the first entry).
CAMPAIGN_WORKER_COUNTS: Tuple[int, ...] = (2, 4)


def _campaign_bench_spec(smoke: bool):
    """The campaign the throughput benchmark executes (8 tasks in smoke, 96 full)."""
    from repro.runtime import CampaignSpec

    if smoke:
        return CampaignSpec(
            name="bench-campaign-smoke",
            seed=7,
            families=("colorable",),
            sizes=((12, 8),),
            ks=(2,),
            oracles=("greedy-first-fit", "capped:greedy-first-fit"),
            lams=(2.0,),
            replicates=4,
        )
    return CampaignSpec(
        name="bench-campaign",
        seed=7,
        families=("colorable", "uniform"),
        sizes=((20, 12), (30, 20)),
        ks=(2,),
        oracles=("greedy-first-fit", "capped:greedy-first-fit"),
        lams=(2.0,),
        replicates=12,
    )


#: Shard count of the sharded-execution benchmark configuration.
CAMPAIGN_BENCH_SHARDS = 2


def bench_campaign(
    smoke: bool = False,
    repeats: int = 3,
    worker_counts: Optional[Sequence[int]] = None,
) -> List[Dict[str, object]]:
    """Time campaign execution: serial vs. pools vs. shards vs. supervision.

    Six execution shapes over the same spec, each into fresh scratch
    directories (best wall time over ``repeats``): the serial reference,
    per-call worker pools, a sharded run (every shard executed serially,
    then fused with ``merge_shards`` — the multi-machine path on one
    machine), a persistent ``WorkerPool`` kept warm across the repeats,
    the same sharded split driven by the fault-tolerant
    :class:`ShardCoordinator` (inline executor, no injected faults — the
    delta against the plain sharded row is the cost of heartbeat
    bookkeeping and supervised merging), and a serial run on the indexed
    SQLite backend (same digest — backend independence is part of the
    contract).  Every record also times a warm incremental report
    (``report_wall_time_s``): the steady-state O(new rows) cost of
    ``repro campaign report`` on an already-aggregated store, asserted
    digest-identical to the full-row reference.  Every run's deterministic
    aggregate digest must equal the serial one — the byte-identity
    contract of the scheduler — or the benchmark aborts.  ``tasks_per_s``
    is the throughput deliverable; ``speedup`` is relative to the serial
    executor on the same machine (bounded by the available cores);
    ``cache_hits`` counts instance builds served from the per-process
    :class:`InstanceCache` (the process-local cache is cleared before
    each run, so serial hits are pure within-run oracle/λ sharing);
    ``restarts``/``timeouts``/``retried`` count the fault-tolerance
    machinery's interventions, all zero on a healthy machine.
    """
    import shutil
    import tempfile

    from repro.runtime import (
        INSTANCE_CACHE,
        InlineExecutor,
        ShardCoordinator,
        WorkerPool,
        campaign_digest,
        campaign_records,
        merge_shards,
        open_store,
        records_from_summaries,
        run_campaign,
    )

    spec = _campaign_bench_spec(smoke)
    if worker_counts is None:
        worker_counts = CAMPAIGN_WORKER_COUNTS[:1] if smoke else CAMPAIGN_WORKER_COUNTS

    def summarize(store):
        rows = store.rows()
        digest = campaign_digest(campaign_records(spec, rows))  # full-row reference
        done = [r for r in rows if r["status"] == "done"]
        peak = max((r["peak_triples"] for r in done), default=0)
        # Incremental report: the first summaries() call builds the
        # persisted per-task aggregates; the *timed* second call is the
        # steady-state O(new rows) = O(0) path every later
        # `repro campaign report` takes on an already-aggregated store.
        store.summaries()
        start = time.perf_counter()
        incremental = campaign_digest(records_from_summaries(spec, store.summaries()))
        report_s = time.perf_counter() - start
        if incremental != digest:
            raise AssertionError(
                f"incremental report digest diverged from the full-row "
                f"reference: {incremental[:12]} != {digest[:12]}"
            )
        return digest, len(done), peak, report_s

    # Runners return (stats_list, store, restarts): restarts is always 0
    # for the unsupervised shapes — only the coordinator can re-dispatch.
    def run_serial_or_pool(scratch, workers: int):
        stats = run_campaign(spec, scratch, workers=workers)
        return [stats], open_store(scratch), 0

    def run_sqlite(scratch, _workers: int):
        stats = run_campaign(spec, scratch, workers=0, backend="sqlite")
        return [stats], open_store(scratch), 0

    def run_sharded(scratch, _workers: int):
        shard_dirs = [
            Path(scratch) / f"shard{i}" for i in range(CAMPAIGN_BENCH_SHARDS)
        ]
        stats = [
            run_campaign(spec, shard_dir, shard=(i, CAMPAIGN_BENCH_SHARDS))
            for i, shard_dir in enumerate(shard_dirs)
        ]
        return stats, merge_shards(Path(scratch) / "merged", shard_dirs), 0

    def make_warm_runner(pool: WorkerPool):
        def run_warm(scratch, _workers: int):
            return [run_campaign(spec, scratch, pool=pool)], open_store(scratch), 0

        return run_warm

    def run_supervised(scratch, _workers: int):
        # Inline executor: each shard runs in-process, so the measured
        # delta vs. the plain sharded row is pure coordinator overhead
        # (dispatch loop, heartbeat files, supervised merge) rather than
        # subprocess start-up.  No chaos plan — the healthy-path cost.
        out = Path(scratch) / "supervised"
        report = ShardCoordinator(
            spec,
            out,
            InlineExecutor(),
            n_shards=CAMPAIGN_BENCH_SHARDS,
            heartbeat_timeout_s=60.0,
            poll_interval_s=0.001,
        ).run()
        return [], open_store(out), report.restarts

    def run_once(runner, workers: int):
        scratch = tempfile.mkdtemp(prefix="bench-campaign-")
        try:
            INSTANCE_CACHE.clear()
            start = time.perf_counter()
            stats_list, store, restarts = runner(scratch, workers)
            wall = time.perf_counter() - start
            digest, done, peak, report_s = summarize(store)
            return stats_list, wall, digest, done, peak, restarts, report_s
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    # Parallel speedup is bounded by the cores the scheduler may use;
    # record that bound so the committed trajectory is interpretable
    # across machines (a 1-core container cannot beat the serial path).
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1

    warm_workers = worker_counts[0]
    warm_pool = WorkerPool(warm_workers)
    # (label, runner, workers, shards): the warm pool is primed by an
    # unrecorded run below so every *measured* warm repeat reuses live
    # workers (and their instance caches) — that is the deliverable.
    configurations = (
        [("serial", run_serial_or_pool, 0, 1)]
        + [(f"workers={w}", run_serial_or_pool, w, 1) for w in worker_counts]
        + [
            (f"shards={CAMPAIGN_BENCH_SHARDS}", run_sharded, 0, CAMPAIGN_BENCH_SHARDS),
            (f"workers={warm_workers}-warm", make_warm_runner(warm_pool), warm_workers, 1),
            ("supervised", run_supervised, 0, CAMPAIGN_BENCH_SHARDS),
            # The indexed backend, serial: digest must match the JSONL
            # reference (backend-independence is part of the contract).
            ("sqlite", run_sqlite, 0, 1),
        ]
    )
    records: List[Dict[str, object]] = []
    reference_digest: Optional[str] = None
    serial_s: Optional[float] = None
    try:
        for label, runner, workers, shards in configurations:
            best_s = float("inf")
            digest = ""
            done = peak = cache_hits = 0
            restarts = timeouts = retried = 0
            report_s = 0.0
            pool_warm = False
            if label.endswith("-warm"):
                run_once(runner, workers)  # prime the pool (unrecorded)
            for _ in range(max(1, repeats)):
                (
                    stats_list,
                    wall,
                    digest,
                    done,
                    peak,
                    run_restarts,
                    run_report_s,
                ) = run_once(runner, workers)
                if reference_digest is None:
                    reference_digest = digest
                if digest != reference_digest:
                    raise AssertionError(
                        f"campaign aggregate digest diverged under {label!r}: "
                        f"{digest[:12]} != serial {reference_digest[:12]}"
                    )
                if wall < best_s:
                    best_s = wall
                    cache_hits = sum(s.cache_hits for s in stats_list)
                    pool_warm = bool(stats_list) and all(
                        s.pool_warm for s in stats_list
                    )
                    restarts = run_restarts
                    timeouts = sum(s.timeouts for s in stats_list)
                    retried = sum(s.retried for s in stats_list)
                    report_s = run_report_s
            if workers == 0 and shards == 1:
                serial_s = best_s
            records.append(
                {
                    "label": label,
                    "n": spec.num_tasks(),
                    "m": done,
                    "k": spec.ks[0],
                    "peak_triples": peak,
                    "workers": max(1, workers),
                    "cpus": cpus,
                    "tasks": spec.num_tasks(),
                    "shards": shards,
                    "pool_warm": pool_warm,
                    "cache_hits": cache_hits,
                    "restarts": restarts,
                    "timeouts": timeouts,
                    "retried": retried,
                    "wall_time_s": best_s,
                    "tasks_per_s": spec.num_tasks() / best_s if best_s > 0 else None,
                    # None (not inf) when the timer underflows, as above.
                    "speedup": serial_s / best_s if best_s > 0 else None,
                    # Warm incremental report on the already-aggregated
                    # store: O(new rows) = O(0) here, vs. wall_time_s
                    # which includes the O(all rows) execution + scan.
                    "report_wall_time_s": report_s,
                    "store_backend": "sqlite" if label == "sqlite" else "jsonl",
                    "digest": digest[:12],
                }
            )
    finally:
        warm_pool.close()
    return records


# ----------------------------------------------------------------------
# JSON payloads
# ----------------------------------------------------------------------
def make_payload(benchmark: str, records: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap ``records`` in the versioned envelope written to disk."""
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "generated_by": "repro bench",
        "records": records,
    }


#: Extra record keys required per benchmark kind (beyond the common five).
_BENCHMARK_KEYS: Dict[str, Tuple[str, ...]] = {
    "conflict_graph_build": (
        "k",
        "num_edges",
        "graph_wall_time_s",
        "legacy_wall_time_s",
        "speedup",
    ),
    "maxis_solve": ("algorithm", "is_size"),
    "campaign_run": (
        "workers",
        "tasks",
        "tasks_per_s",
        "speedup",
        "shards",
        "cache_hits",
        "pool_warm",
        "restarts",
        "timeouts",
        "retried",
        "report_wall_time_s",
        "store_backend",
    ),
    "reduction_pipeline": (
        "k",
        "num_phases",
        "total_colors",
        "rebuild_wall_time_s",
        "happy_check_wall_time_s",
        "speedup",
    ),
}


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the BENCH_* schema."""
    for key in ("schema_version", "benchmark", "generated_by", "records"):
        if key not in payload:
            raise ValueError(f"bench payload missing key {key!r}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {payload['schema_version']!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    records = payload["records"]
    if not isinstance(records, list) or not records:
        raise ValueError("bench payload has no records")
    required = {"label", "n", "m", "wall_time_s", "peak_triples"}
    required.update(_BENCHMARK_KEYS.get(str(payload["benchmark"]), ()))
    for record in records:
        missing = required - set(record)
        if missing:
            raise ValueError(f"bench record missing keys {sorted(missing)!r}: {record!r}")
        if not isinstance(record["wall_time_s"], (int, float)) or record["wall_time_s"] < 0:
            raise ValueError(f"bench record has invalid wall_time_s: {record!r}")


def write_payload(path: Path, payload: Dict[str, object]) -> Path:
    """Validate and pretty-print ``payload`` to ``path``."""
    validate_bench_payload(payload)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def run(
    out_dir: str = ".",
    smoke: bool = False,
    repeats: int = 3,
    k: int = 4,
    families: Optional[Sequence[str]] = None,
) -> Dict[str, Path]:
    """Run the selected benchmark families and write ``BENCH_*.json`` into ``out_dir``.

    ``families`` selects a subset of :data:`FAMILIES` (``None`` runs all
    four).  Returns a mapping of benchmark name to the written file path.
    """
    selected = tuple(FAMILIES if families is None else families)
    unknown = [f for f in selected if f not in FAMILIES]
    if unknown:
        raise ValueError(f"unknown benchmark families {unknown!r}; known: {FAMILIES}")
    sizes = SMOKE_SIZES if smoke else DEFAULT_SIZES
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    if "conflict-graph" in selected:
        conflict_records = bench_conflict_graph(sizes=sizes, k=k, repeats=repeats)
        written["conflict_graph"] = write_payload(
            directory / CONFLICT_GRAPH_BENCH,
            make_payload("conflict_graph_build", conflict_records),
        )
    if "maxis" in selected:
        maxis_records = bench_maxis(
            sizes=sizes, k=k, repeats=repeats, include_plain_graphs=not smoke
        )
        written["maxis"] = write_payload(
            directory / MAXIS_BENCH, make_payload("maxis_solve", maxis_records)
        )
    if "reduction" in selected:
        reduction_records = bench_reduction(sizes=sizes, k=k, repeats=repeats)
        written["reduction"] = write_payload(
            directory / REDUCTION_BENCH,
            make_payload("reduction_pipeline", reduction_records),
        )
    if "campaign" in selected:
        campaign_records = bench_campaign(smoke=smoke, repeats=repeats)
        written["campaign"] = write_payload(
            directory / CAMPAIGN_BENCH, make_payload("campaign_run", campaign_records)
        )
    return written


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Stand-alone entry point used by ``benchmarks/perf_harness.py``."""
    parser = argparse.ArgumentParser(
        prog="perf_harness", description="Time conflict-graph builds and MIS solves."
    )
    parser.add_argument("--out-dir", default=".", help="directory for the BENCH_*.json files")
    parser.add_argument("--smoke", action="store_true", help="smallest workload only")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument("--palette", type=int, default=4, help="palette size k")
    parser.add_argument(
        "families",
        nargs="*",
        metavar="family",
        help=f"benchmark families to run, from {FAMILIES} (default: all)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    written = run(
        out_dir=args.out_dir,
        smoke=args.smoke,
        repeats=args.repeats,
        k=args.palette,
        families=args.families or None,
    )
    for name, path in written.items():
        print(f"{name}: wrote {path}")
    return 0
