"""Performance harness: timed conflict-graph builds and MIS solves.

This module is the library half of ``benchmarks/perf_harness.py`` and the
``repro bench`` CLI subcommand.  It times the two hottest layers of the
pipeline on the standard workload families (the same families the
benchmark suite under ``benchmarks/`` uses) and writes machine-readable
trajectories:

* ``BENCH_conflict_graph.json`` — wall time of the bucketed
  :class:`~repro.core.conflict_graph.ConflictGraph` builder next to the
  retained legacy (seed) builder, per workload;
* ``BENCH_maxis.json`` — wall time of each registered MIS approximator on
  the conflict graphs of the same workloads plus the plain-graph family.

JSON schema (``schema_version`` 1): the top level carries
``schema_version``, ``benchmark``, ``generated_by`` and ``records``; every
record carries ``label`` (workload), ``n`` / ``m`` (size of the object
being processed), ``wall_time_s`` and ``peak_triples`` (``|V(G_k)|``, the
high-water number of conflict triples the workload materializes).
Conflict-graph records add ``k``, ``num_edges``, ``legacy_wall_time_s``
and ``speedup``; MIS records add ``algorithm`` and ``is_size``.  Later PRs
must keep these keys so the trajectory stays comparable
(:func:`validate_bench_payload` is the schema check used by tests and
``make bench-smoke``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

CONFLICT_GRAPH_BENCH = "BENCH_conflict_graph.json"
MAXIS_BENCH = "BENCH_maxis.json"

SCHEMA_VERSION = 1

#: The instance-size sweep of the benchmark suite's ``hypergraph_family``.
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = ((30, 20), (60, 40), (90, 60), (120, 80))
#: The single smallest workload, for smoke runs.
SMOKE_SIZES: Tuple[Tuple[int, int], ...] = ((30, 20),)

#: MIS algorithms timed by default (registry names).  ``exact`` is omitted:
#: it is exponential and the conflict graphs here exceed its size guard.
DEFAULT_MAXIS_ALGORITHMS: Tuple[str, ...] = (
    "greedy-min-degree",
    "greedy-first-fit",
    "luby-best-of-5",
)


# ----------------------------------------------------------------------
# workload families (shared with benchmarks/conftest.py)
# ----------------------------------------------------------------------
def hypergraph_family(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES, k: int = 4, epsilon: float = 0.5
):
    """Return ``[(label, hypergraph, planted, k)]`` for a sweep of instance sizes."""
    from repro.hypergraph import colorable_almost_uniform_hypergraph

    family = []
    for idx, (n, m) in enumerate(sizes):
        hypergraph, planted = colorable_almost_uniform_hypergraph(
            n=n, m=m, k=k, epsilon=epsilon, seed=100 + idx
        )
        family.append((f"n={n},m={m}", hypergraph, planted, k))
    return family


def graph_family():
    """Return ``[(label, graph)]`` for the MIS model-comparison experiment (E7)."""
    from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph, random_tree

    return [
        ("cycle C_64", cycle_graph(64)),
        ("grid 8x8", grid_graph(8, 8)),
        ("tree n=64", random_tree(64, seed=5)),
        ("G(64, 0.08)", erdos_renyi_graph(64, 0.08, seed=6)),
        ("G(64, 0.20)", erdos_renyi_graph(64, 0.20, seed=7)),
    ]


def interval_family():
    """Return ``[(label, hypergraph, n_points)]`` of interval hypergraphs (E8)."""
    from repro.hypergraph import random_interval_hypergraph

    result = []
    for n_points, n_intervals, seed in [(16, 12, 1), (32, 24, 2), (48, 36, 3)]:
        hypergraph = random_interval_hypergraph(n_points, n_intervals, seed=seed)
        result.append((f"points={n_points}", hypergraph, n_points))
    return result


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def _best_time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def bench_conflict_graph(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    k: int = 4,
    repeats: int = 3,
    include_legacy: bool = True,
) -> List[Dict[str, object]]:
    """Time the bucketed builder (and optionally the legacy one) per workload."""
    from repro.core.conflict_graph import ConflictGraph, legacy_build_graph

    records: List[Dict[str, object]] = []
    for label, hypergraph, _planted, kk in hypergraph_family(sizes=sizes, k=k):
        fast_s, cg = _best_time(lambda: ConflictGraph(hypergraph, kk), repeats)
        record: Dict[str, object] = {
            "label": label,
            "n": hypergraph.num_vertices(),
            "m": hypergraph.num_edges(),
            "k": kk,
            "peak_triples": cg.num_vertices(),
            "num_edges": cg.num_edges(),
            "wall_time_s": fast_s,
        }
        if include_legacy:
            legacy_s, legacy = _best_time(lambda: legacy_build_graph(hypergraph, kk), repeats)
            if legacy != cg.graph:
                raise AssertionError(
                    f"bucketed and legacy conflict graphs differ on workload {label!r}"
                )
            record["legacy_wall_time_s"] = legacy_s
            # None (not inf) when the timer underflows: json.dumps would emit
            # the non-standard `Infinity` token and break strict consumers.
            record["speedup"] = legacy_s / fast_s if fast_s > 0 else None
        records.append(record)
    return records


def bench_maxis(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    k: int = 4,
    repeats: int = 3,
    algorithms: Sequence[str] = DEFAULT_MAXIS_ALGORITHMS,
    include_plain_graphs: bool = True,
) -> List[Dict[str, object]]:
    """Time MIS solves on conflict graphs (and the plain-graph family)."""
    from repro.core.conflict_graph import ConflictGraph
    from repro.maxis import get_approximator

    workloads: List[Tuple[str, object, int]] = []
    for label, hypergraph, _planted, kk in hypergraph_family(sizes=sizes, k=k):
        cg = ConflictGraph(hypergraph, kk)
        workloads.append((f"G_k[{label}]", cg.graph, cg.num_vertices()))
    if include_plain_graphs:
        for label, graph in graph_family():
            workloads.append((label, graph, 0))

    records: List[Dict[str, object]] = []
    for label, graph, peak_triples in workloads:
        for name in algorithms:
            solver = get_approximator(name)
            wall_s, result = _best_time(lambda: solver(graph), repeats)
            records.append(
                {
                    "label": label,
                    "n": graph.num_vertices(),
                    "m": graph.num_edges(),
                    "algorithm": name,
                    "is_size": len(result),
                    "peak_triples": peak_triples,
                    "wall_time_s": wall_s,
                }
            )
    return records


# ----------------------------------------------------------------------
# JSON payloads
# ----------------------------------------------------------------------
def make_payload(benchmark: str, records: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap ``records`` in the versioned envelope written to disk."""
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "generated_by": "repro bench",
        "records": records,
    }


#: Extra record keys required per benchmark kind (beyond the common five).
_BENCHMARK_KEYS: Dict[str, Tuple[str, ...]] = {
    "conflict_graph_build": ("k", "num_edges", "legacy_wall_time_s", "speedup"),
    "maxis_solve": ("algorithm", "is_size"),
}


def validate_bench_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the BENCH_* schema."""
    for key in ("schema_version", "benchmark", "generated_by", "records"):
        if key not in payload:
            raise ValueError(f"bench payload missing key {key!r}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {payload['schema_version']!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    records = payload["records"]
    if not isinstance(records, list) or not records:
        raise ValueError("bench payload has no records")
    required = {"label", "n", "m", "wall_time_s", "peak_triples"}
    required.update(_BENCHMARK_KEYS.get(str(payload["benchmark"]), ()))
    for record in records:
        missing = required - set(record)
        if missing:
            raise ValueError(f"bench record missing keys {sorted(missing)!r}: {record!r}")
        if not isinstance(record["wall_time_s"], (int, float)) or record["wall_time_s"] < 0:
            raise ValueError(f"bench record has invalid wall_time_s: {record!r}")


def write_payload(path: Path, payload: Dict[str, object]) -> Path:
    """Validate and pretty-print ``payload`` to ``path``."""
    validate_bench_payload(payload)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def run(
    out_dir: str = ".",
    smoke: bool = False,
    repeats: int = 3,
    k: int = 4,
) -> Dict[str, Path]:
    """Run both benchmarks and write ``BENCH_*.json`` into ``out_dir``.

    Returns a mapping of benchmark name to the written file path.
    """
    sizes = SMOKE_SIZES if smoke else DEFAULT_SIZES
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    conflict_records = bench_conflict_graph(sizes=sizes, k=k, repeats=repeats)
    written["conflict_graph"] = write_payload(
        directory / CONFLICT_GRAPH_BENCH,
        make_payload("conflict_graph_build", conflict_records),
    )
    maxis_records = bench_maxis(
        sizes=sizes, k=k, repeats=repeats, include_plain_graphs=not smoke
    )
    written["maxis"] = write_payload(
        directory / MAXIS_BENCH, make_payload("maxis_solve", maxis_records)
    )
    return written


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Stand-alone entry point used by ``benchmarks/perf_harness.py``."""
    parser = argparse.ArgumentParser(
        prog="perf_harness", description="Time conflict-graph builds and MIS solves."
    )
    parser.add_argument("--out-dir", default=".", help="directory for the BENCH_*.json files")
    parser.add_argument("--smoke", action="store_true", help="smallest workload only")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument("--palette", type=int, default=4, help="palette size k")
    args = parser.parse_args(list(argv) if argv is not None else None)
    written = run(out_dir=args.out_dir, smoke=args.smoke, repeats=args.repeats, k=args.palette)
    for name, path in written.items():
        print(f"{name}: wrote {path}")
    return 0
