"""Command-line interface of the reproduction.

The CLI exposes the main entry points of the library without writing any
Python: generating instances, running the reduction, checking the Lemma 2.1
correspondence, and printing the P-SLOCAL completeness registry.

Usage (after ``pip install -e .``)::

    python -m repro registry
    python -m repro reduce --vertices 40 --edges 25 --palette 3 --oracle greedy-min-degree --lam 5
    python -m repro lemma21 --vertices 20 --edges 10 --palette 2
    python -m repro models --vertices 48 --probability 0.1
    python -m repro campaign run --spec examples/campaign_demo.json --out campaign-out --workers 4
    python -m repro campaign run --spec examples/campaign_demo.json --out shard-0 --shard 0/2
    python -m repro campaign supervise --spec examples/campaign_demo.json --out campaign-out --shards 2
    python -m repro campaign merge --out campaign-out shard-0 shard-1
    python -m repro campaign status --out campaign-out
    python -m repro campaign report --out campaign-out
    python -m repro campaign compact --out campaign-out
    python -m repro campaign run --spec examples/campaign_demo.json --out campaign-out --trace
    python -m repro campaign metrics campaign-out
    python -m repro trace summary campaign-out

Every subcommand prints a plain-text table; seeds default to fixed values so
runs are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    format_records,
    mis_model_comparison,
    phase_summary,
    run_summary,
)
from repro.core import (
    ConflictGraph,
    solve_conflict_free_multicoloring,
    verify_lemma_21a,
    verify_lemma_21b,
    verify_reduction_result,
)
from repro.graphs import erdos_renyi_graph
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.maxis import available_approximators, get_approximator
from repro.reductions import summary_table


def _add_fault_tolerance_args(parser: argparse.ArgumentParser) -> None:
    """Watchdog / retry / durability flags shared by run and supervise."""
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-task watchdog deadline in seconds (a task exceeding it becomes "
            "a status=timeout row); overrides the spec's task_timeout_s"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help=(
            "attempts per task and error signature before it is skipped as "
            "exhausted (0 disables the retry policy: every failure is "
            "re-executed on every resume)"
        ),
    )
    parser.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.0,
        metavar="S",
        help="pause before the first in-run retry round (doubled per round)",
    )
    parser.add_argument(
        "--durability",
        default=None,
        choices=["flush", "fsync"],
        help=(
            "store write discipline: flush (default; a kill loses at most one "
            "row) or fsync (a machine crash loses at most one row)"
        ),
    )


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    """Fault-injection flags (refused unless REPRO_CHAOS=1)."""
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PK,PH,PF",
        help=(
            "inject faults per task with probabilities p_kill,p_hang,p_fail "
            "(e.g. 0.1,0.05,0.2); requires REPRO_CHAOS=1 and the serial executor"
        ),
    )
    parser.add_argument("--chaos-seed", type=int, default=0, help="fault decision seed")
    parser.add_argument(
        "--chaos-salt",
        type=int,
        default=0,
        help="dispatch salt (bumped per re-dispatch by the coordinator)",
    )
    parser.add_argument(
        "--chaos-max-salt",
        type=int,
        default=None,
        help="inject faults only while salt < this (targeted recovery tests)",
    )


def _retry_policy(args: argparse.Namespace):
    """The RetryPolicy encoded by --max-retries/--retry-base-delay (0 disables)."""
    from repro.runtime import RetryPolicy

    if args.max_retries == 0:
        return None
    return RetryPolicy(max_attempts=args.max_retries, base_delay_s=args.retry_base_delay)


def _fault_plan(args: argparse.Namespace):
    """The FaultPlan encoded by the --chaos* flags, or None."""
    from repro.runtime import FaultPlan

    if args.chaos is None:
        return None
    plan = FaultPlan.parse(args.chaos, seed=args.chaos_seed, salt=args.chaos_salt)
    if args.chaos_max_salt is not None:
        plan = FaultPlan(
            p_kill=plan.p_kill,
            p_hang=plan.p_hang,
            p_fail=plan.p_fail,
            seed=plan.seed,
            salt=plan.salt,
            hang_s=plan.hang_s,
            max_salt=args.chaos_max_salt,
        )
    return plan


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'P-SLOCAL-Completeness of Maximum Independent Set "
            "Approximation' (Maus, PODC 2019)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reduce_parser = sub.add_parser(
        "reduce", help="run the Theorem 1.1 reduction on a generated hypergraph"
    )
    reduce_parser.add_argument("--vertices", type=int, default=40, help="number of hypergraph vertices")
    reduce_parser.add_argument("--edges", type=int, default=25, help="number of hyperedges")
    reduce_parser.add_argument("--palette", type=int, default=3, help="per-phase palette size k")
    reduce_parser.add_argument(
        "--oracle",
        default="greedy-min-degree",
        choices=sorted(available_approximators()),
        help="MaxIS approximation oracle",
    )
    reduce_parser.add_argument("--lam", type=float, default=5.0, help="approximation factor assumed by the analysis")
    reduce_parser.add_argument("--seed", type=int, default=7, help="instance seed")

    lemma_parser = sub.add_parser("lemma21", help="check both directions of Lemma 2.1 on a generated instance")
    lemma_parser.add_argument("--vertices", type=int, default=20)
    lemma_parser.add_argument("--edges", type=int, default=10)
    lemma_parser.add_argument("--palette", type=int, default=2)
    lemma_parser.add_argument("--seed", type=int, default=13)

    models_parser = sub.add_parser("models", help="compare MIS in the SLOCAL and LOCAL models")
    models_parser.add_argument("--vertices", type=int, default=48)
    models_parser.add_argument("--probability", type=float, default=0.1)
    models_parser.add_argument("--seed", type=int, default=3)

    sub.add_parser("registry", help="print the P-SLOCAL completeness registry")

    bench_parser = sub.add_parser(
        "bench", help="run the perf harness and write BENCH_*.json trajectories"
    )
    bench_parser.add_argument("--out-dir", default=".", help="directory for BENCH_*.json files")
    bench_parser.add_argument(
        "--smoke", action="store_true", help="run only the smallest workload"
    )
    bench_parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    bench_parser.add_argument("--palette", type=int, default=4, help="palette size k")
    bench_parser.add_argument(
        "families",
        nargs="*",
        metavar="family",
        help=(
            "benchmark families to run: conflict-graph, maxis, reduction, "
            "campaign (default: all four)"
        ),
    )

    campaign_parser = sub.add_parser(
        "campaign",
        help="run, inspect and aggregate experiment campaigns (fleets of reductions)",
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="execute the pending tasks of a campaign (resumes automatically)"
    )
    campaign_run.add_argument("--spec", required=True, help="path to the CampaignSpec JSON file")
    campaign_run.add_argument(
        "--out",
        required=True,
        help="campaign directory (spec.json + results.jsonl or results.sqlite)",
    )
    campaign_run.add_argument(
        "--store",
        choices=["jsonl", "sqlite"],
        default=None,
        help=(
            "store backend override (default: the directory's existing backend, "
            "else the spec's 'store' field; the digest is backend-independent)"
        ),
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 or 1: the serial reference executor)",
    )
    campaign_run.add_argument(
        "--chunk-size", type=int, default=None, help="tasks per pool dispatch"
    )
    campaign_run.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help=(
            "run only shard I of N (stable sha256 partition of the task keys; "
            "give each machine its own --out directory and fuse them with "
            "'campaign merge')"
        ),
    )
    campaign_run.add_argument(
        "--trace",
        action="store_true",
        help=(
            "write a span/event trace sidecar (trace.jsonl) next to the store; "
            "results and digests are unaffected"
        ),
    )
    _add_fault_tolerance_args(campaign_run)
    campaign_run.add_argument(
        "--heartbeat",
        default=None,
        metavar="FILE",
        help=(
            "liveness file touched at run start and per stored row "
            "(consumed by 'campaign supervise')"
        ),
    )
    _add_chaos_args(campaign_run)

    campaign_supervise = campaign_sub.add_parser(
        "supervise",
        help=(
            "run every shard of a campaign under the fault-tolerant coordinator "
            "(heartbeats, restarts with backoff, poisoned-shard quarantine)"
        ),
    )
    campaign_supervise.add_argument(
        "--spec", required=True, help="path to the CampaignSpec JSON file"
    )
    campaign_supervise.add_argument(
        "--out", required=True, help="merged output campaign directory"
    )
    campaign_supervise.add_argument(
        "--shards", type=int, default=2, help="number of sha256-stable shards"
    )
    campaign_supervise.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="kill and re-dispatch a shard whose heartbeat is older than this",
    )
    campaign_supervise.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="crash re-dispatches per shard before it is quarantined as poisoned",
    )
    campaign_supervise.add_argument(
        "--base-backoff",
        type=float,
        default=0.05,
        metavar="S",
        help="first re-dispatch delay (doubled each restart, plus seeded jitter)",
    )
    campaign_supervise.add_argument(
        "--restart-failed-shards",
        action="store_true",
        help=(
            "restart shards that exit 1 (completed with failed rows) instead of "
            "landing them as-is"
        ),
    )
    campaign_supervise.add_argument(
        "--max-wall-clock",
        type=float,
        default=None,
        metavar="S",
        help="hard bound on the whole supervision run (kills workers, exits 2)",
    )
    campaign_supervise.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="require the merged aggregate digest to equal this serial reference",
    )
    campaign_supervise.add_argument(
        "--trace",
        action="store_true",
        help=(
            "write trace sidecars (coordinator events in the merged directory, "
            "task spans per shard); results and digests are unaffected"
        ),
    )
    _add_fault_tolerance_args(campaign_supervise)
    _add_chaos_args(campaign_supervise)

    campaign_merge = campaign_sub.add_parser(
        "merge",
        help="fuse shard campaign directories (same spec) into one store",
    )
    campaign_merge.add_argument(
        "--out", required=True, help="destination campaign directory"
    )
    campaign_merge.add_argument(
        "shards",
        nargs="+",
        metavar="SHARD_DIR",
        help="shard campaign directories, merged in order (later rows win per task)",
    )

    campaign_status = campaign_sub.add_parser(
        "status", help="show done/failed/pending task counts of a campaign directory"
    )
    campaign_status.add_argument("--out", required=True, help="campaign directory")
    campaign_status.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help=(
            "retry budget used to flag exhausted tasks (tasks that failed with "
            "the same error this many times are skipped on resume)"
        ),
    )

    campaign_compact = campaign_sub.add_parser(
        "compact",
        help=(
            "drop superseded/duplicate rows from a campaign store "
            "(digest-identical; crash-safe temp-file rewrite)"
        ),
    )
    campaign_compact.add_argument("--out", required=True, help="campaign directory")

    campaign_report = campaign_sub.add_parser(
        "report", help="print the aggregate records and their deterministic digest"
    )
    campaign_report.add_argument("--out", required=True, help="campaign directory")
    campaign_report.add_argument(
        "--records", default=None, help="also write the aggregate records to this JSON file"
    )

    campaign_metrics = campaign_sub.add_parser(
        "metrics",
        help=(
            "print the metrics snapshot persisted by the last run of a campaign "
            "directory (Prometheus text exposition, or --json)"
        ),
    )
    campaign_metrics.add_argument(
        "out", help="campaign directory (or a metrics.json path directly)"
    )
    campaign_metrics.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw JSON snapshot instead of Prometheus text",
    )

    trace_parser = sub.add_parser(
        "trace", help="inspect trace.jsonl sidecars written by campaign --trace runs"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="aggregate a trace sidecar: per-span timings plus the slowest spans",
    )
    trace_summary.add_argument(
        "out", help="campaign directory (or a trace.jsonl path directly)"
    )
    trace_summary.add_argument(
        "--limit",
        type=int,
        default=10,
        help="how many of the slowest individual spans to list",
    )
    return parser


def _cmd_reduce(args: argparse.Namespace) -> int:
    hypergraph, _ = colorable_almost_uniform_hypergraph(
        n=args.vertices, m=args.edges, k=args.palette, seed=args.seed
    )
    oracle = get_approximator(args.oracle)
    result = solve_conflict_free_multicoloring(
        hypergraph, k=args.palette, approximator=oracle, lam=args.lam
    )
    report = verify_reduction_result(hypergraph, result)
    print(format_records([run_summary(result)]))
    print()
    print(format_records(phase_summary(result)))
    print(f"\nconflict-free: {report.conflict_free}")
    return 0 if report.conflict_free else 1


def _cmd_lemma21(args: argparse.Namespace) -> int:
    hypergraph, planted = colorable_almost_uniform_hypergraph(
        n=args.vertices, m=args.edges, k=args.palette, seed=args.seed
    )
    conflict_graph = ConflictGraph(hypergraph, args.palette)
    witness = verify_lemma_21a(conflict_graph, planted)
    independent_set = get_approximator("greedy-min-degree")(conflict_graph.graph)
    happy = verify_lemma_21b(conflict_graph, independent_set)
    print(
        format_records(
            [
                {
                    "m": hypergraph.num_edges(),
                    "|V(G_k)|": conflict_graph.num_vertices(),
                    "|E(G_k)|": conflict_graph.num_edges(),
                    "|I_f| (lemma a)": len(witness),
                    "|I| from oracle": len(independent_set),
                    "happy edges (lemma b)": len(happy),
                }
            ]
        )
    )
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    graph = erdos_renyi_graph(args.vertices, args.probability, seed=args.seed)
    print(format_records([mis_model_comparison(graph, seed=args.seed)]))
    return 0


def _cmd_registry(_: argparse.Namespace) -> int:
    print(format_records(summary_table()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro import bench

    written = bench.run(
        out_dir=args.out_dir,
        smoke=args.smoke,
        repeats=args.repeats,
        k=args.palette,
        families=args.families or None,
    )
    for name, path in written.items():
        payload = json.loads(path.read_text())
        print(f"# {payload['benchmark']} -> {path}")
        print(format_records(payload["records"]))
        print()
    return 0


def _parse_shard(text: str):
    """Parse a ``--shard I/N`` argument (range-checked later by the runtime)."""
    from repro.exceptions import CampaignError

    try:
        index_text, _, count_text = text.partition("/")
        return int(index_text), int(count_text)
    except ValueError as exc:
        raise CampaignError(
            f"--shard must look like I/N (e.g. 0/4), got {text!r}"
        ) from exc


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.exceptions import CampaignError, ObsError
    from repro.runtime import (
        CampaignSpec,
        cache_counts_of,
        campaign_digest,
        format_duration,
        merge_shards,
        open_store,
        records_from_summaries,
        retry_exhausted_of,
        run_campaign,
        status_counts_of,
        throughput_record,
    )

    try:
        if args.campaign_command == "run":
            spec_path = Path(args.spec)
            if not spec_path.exists():
                print(f"campaign spec not found: {spec_path}", file=sys.stderr)
                return 2
            spec = CampaignSpec.from_json(spec_path.read_text(encoding="utf-8"))
            shard = _parse_shard(args.shard) if args.shard is not None else None
            stats = run_campaign(
                spec,
                args.out,
                workers=args.workers,
                chunk_size=args.chunk_size,
                shard=shard,
                retry=_retry_policy(args),
                task_timeout_s=args.task_timeout,
                heartbeat=args.heartbeat,
                chaos=_fault_plan(args),
                durability=args.durability,
                backend=args.store,
                trace=args.trace,
            )
            store = open_store(args.out)
            # One incremental pass serves both views: the summaries feed
            # the records *and* the status counts (O(new rows), not
            # O(all rows)).
            summaries = store.summaries()
            records = records_from_summaries(spec, summaries)
            print(format_records(throughput_record(spec, [stats]).rows))
            counts = status_counts_of(summaries)
            scope = (
                f"shard {shard[0]}/{shard[1]} ({stats.executed + stats.skipped} tasks) of "
                if shard is not None
                else ""
            )
            print(
                f"\ncampaign {spec.name!r}: {scope}"
                f"{counts.get('done', 0)}/{spec.num_tasks()} done, "
                f"{counts.get('failed', 0)} failed, "
                f"{counts.get('timeout', 0)} timed out "
                f"({stats.executed} executed, {stats.skipped} resumed, "
                f"{stats.retried} retried, {stats.exhausted} exhausted)"
            )
            print(
                f"instance cache: {stats.cache_hits} hits / {stats.cache_misses} misses"
            )
            print(f"aggregate digest: {campaign_digest(records)}")
            # Exhausted tasks are still not done, so a run that only
            # skipped them must not signal success.
            return 0 if stats.failed == 0 and stats.exhausted == 0 else 1

        if args.campaign_command == "supervise":
            from repro.runtime import ShardCoordinator

            spec_path = Path(args.spec)
            if not spec_path.exists():
                print(f"campaign spec not found: {spec_path}", file=sys.stderr)
                return 2
            spec = CampaignSpec.from_json(spec_path.read_text(encoding="utf-8"))
            coordinator = ShardCoordinator(
                spec,
                args.out,
                n_shards=args.shards,
                heartbeat_timeout_s=args.heartbeat_timeout,
                max_restarts=args.max_restarts,
                base_backoff_s=args.base_backoff,
                task_timeout_s=args.task_timeout,
                retry=_retry_policy(args),
                durability=args.durability,
                chaos=_fault_plan(args),
                restart_failed_shards=args.restart_failed_shards,
                max_wall_clock_s=args.max_wall_clock,
                expected_digest=args.expect_digest,
                trace=args.trace,
            )
            report = coordinator.run()
            print(
                format_records(
                    [
                        {
                            "shard": f"{entry.index}/{report.n_shards}",
                            "status": entry.status,
                            "dispatches": entry.dispatches,
                            "restarts": entry.restarts,
                            "stale_kills": entry.stale_kills,
                        }
                        for entry in report.shards
                    ]
                )
            )
            counts = report.status_counts
            print(
                f"\nsupervised campaign {spec.name!r}: "
                f"{counts.get('done', 0)}/{spec.num_tasks()} done, "
                f"{counts.get('failed', 0)} failed, "
                f"{counts.get('timeout', 0)} timed out; "
                f"{report.restarts} restart(s) in {format_duration(report.wall_time_s)}"
            )
            if report.poisoned:
                print(
                    f"poisoned shard(s) quarantined after {args.max_restarts} "
                    f"restarts: {report.poisoned}",
                    file=sys.stderr,
                )
            print(f"aggregate digest: {report.digest}")
            return 0 if report.ok else 1

        if args.campaign_command == "merge":
            merged = merge_shards(args.out, args.shards)
            spec = merged.load_spec()
            # merge_shards already combined the shards' partial
            # aggregates, so this is a cache read, not a row scan.
            summaries = merged.summaries()
            records = records_from_summaries(spec, summaries)
            counts = status_counts_of(summaries)
            print(
                f"merged {len(args.shards)} shard store(s) into {args.out}: "
                f"campaign {spec.name!r}, {counts.get('done', 0)}/{spec.num_tasks()} done, "
                f"{counts.get('failed', 0)} failed"
            )
            print(f"aggregate digest: {campaign_digest(records)}")
            return 0

        if args.campaign_command == "metrics":
            import json

            from repro import obs

            path = Path(args.out)
            if path.is_dir():
                path = path / obs.METRICS_FILENAME
            if not path.exists():
                print(
                    f"no metrics snapshot at {path} (campaign runs write one "
                    f"automatically; re-run the campaign to produce it)",
                    file=sys.stderr,
                )
                return 2
            snapshot = obs.load_snapshot(path)
            if args.as_json:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            else:
                print(obs.render_snapshot(snapshot), end="")
            return 0

        store = open_store(args.out)
        spec = store.load_spec()

        if args.campaign_command == "compact":
            stats = store.compact()
            records = records_from_summaries(spec, store.summaries())
            print(
                f"compacted {args.out}: {stats.rows_before} -> {stats.rows_after} "
                f"rows ({stats.rows_dropped} superseded/duplicate dropped), "
                f"{stats.bytes_before} -> {stats.bytes_after} bytes"
            )
            print(f"aggregate digest: {campaign_digest(records)}")
            return 0

        if args.campaign_command == "status":
            import time as _time

            # A single incremental read of the store feeds every view
            # below; the old path re-read the whole row log 3-4 times.
            read_start = _time.perf_counter()
            summaries = store.summaries()
            read_elapsed = _time.perf_counter() - read_start
            counts = status_counts_of(summaries)
            cache = cache_counts_of(summaries)
            done = counts.get("done", 0)
            failed = counts.get("failed", 0)
            timeouts = counts.get("timeout", 0)
            print(
                format_records(
                    [
                        {
                            "campaign": spec.name,
                            "tasks": spec.num_tasks(),
                            "done": done,
                            "failed": failed,
                            "timeout": timeouts,
                            "pending": spec.num_tasks() - done,
                            "cache_hits": cache["cache_hits"],
                            "cache_misses": cache["cache_misses"],
                        }
                    ]
                )
            )
            exhausted = (
                retry_exhausted_of(summaries, args.max_retries)
                if args.max_retries
                else set()
            )
            if exhausted:
                shown = ", ".join(sorted(exhausted)[:5])
                more = len(exhausted) - min(len(exhausted), 5)
                suffix = f" (+{more} more)" if more else ""
                print(
                    f"warning: {len(exhausted)} task(s) exhausted their retry budget "
                    f"({args.max_retries} attempts with the same error) and will be "
                    f"skipped on resume: {shown}{suffix}",
                    file=sys.stderr,
                )
            print(f"(incremental store read: {format_duration(read_elapsed)})")
            return 0

        # report — incremental: only rows appended since the last
        # report/status are summarized (the fuzz harness asserts this
        # path digest-identical to the full-row reference).
        import time as _time

        report_start = _time.perf_counter()
        records = records_from_summaries(spec, store.summaries())
        report_elapsed = _time.perf_counter() - report_start
        for record in records:
            print(f"# {record.experiment}: {record.description}")
            if record.rows:
                print(format_records(record.rows))
            else:
                print("(no completed tasks)")
            print()
        print(f"(report built in {format_duration(report_elapsed)})")
        print(f"aggregate digest: {campaign_digest(records)}")
        if args.records:
            from repro.analysis import write_records

            write_records(records, args.records)
            print(f"records written to {args.records}")
        return 0
    except (CampaignError, ObsError) as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace summary``: aggregate a trace.jsonl sidecar."""
    from pathlib import Path

    from repro import obs
    from repro.exceptions import ObsError
    from repro.runtime import format_duration

    path = Path(args.out)
    if path.is_dir():
        path = path / obs.TRACE_FILENAME
    if not path.exists():
        print(
            f"no trace sidecar at {path} (re-run the campaign with --trace)",
            file=sys.stderr,
        )
        return 2
    try:
        records = obs.read_trace(path)
    except ObsError as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 2

    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    starts = [r for r in records if r.get("type") == "trace_start"]
    print(
        f"trace {path}: {len(records)} record(s) from {len(starts)} process "
        f"start(s) — {len(spans)} span(s), {len(events)} event(s)"
    )
    if not spans:
        return 0

    by_name: dict = {}
    for span in spans:
        entry = by_name.setdefault(span["name"], {"count": 0, "total": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += span["dur_s"]
        entry["max"] = max(entry["max"], span["dur_s"])
    rows = [
        {
            "span": name,
            "count": entry["count"],
            "total": format_duration(entry["total"]),
            "mean": format_duration(entry["total"] / entry["count"]),
            "max": format_duration(entry["max"]),
        }
        for name, entry in sorted(
            by_name.items(), key=lambda item: (-item[1]["total"], item[0])
        )
    ]
    print()
    print(format_records(rows))

    if args.limit > 0:
        slowest = sorted(spans, key=lambda s: (-s["dur_s"], s["span_id"]))[: args.limit]
        print(f"\nslowest {len(slowest)} span(s):")
        print(
            format_records(
                [
                    {
                        "span": span["name"],
                        "dur": format_duration(span["dur_s"]),
                        "depth": span["depth"],
                        "attrs": ", ".join(
                            f"{key}={value}"
                            for key, value in sorted(span.get("attrs", {}).items())
                        )
                        or "-",
                    }
                    for span in slowest
                ]
            )
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` (and tests)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "reduce": _cmd_reduce,
        "lemma21": _cmd_lemma21,
        "models": _cmd_models,
        "registry": _cmd_registry,
        "bench": _cmd_bench,
        "campaign": _cmd_campaign,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
