"""Conflict-free (multi)coloring of hypergraphs: definitions, baselines, interval case."""

from repro.coloring.conflict_free import (
    UNCOLORED,
    color_of,
    colors_used,
    happy_edges,
    happy_edges_incident,
    is_conflict_free,
    is_happy,
    num_colors_used,
    restrict_coloring,
    unhappy_edges,
    unique_color_vertices,
    verify_conflict_free_coloring,
)
from repro.coloring.multicoloring import (
    Multicoloring,
    edge_color_census,
    is_conflict_free_multicoloring,
    is_edge_happy,
    single_coloring_as_multicoloring,
    verify_conflict_free_multicoloring,
)
from repro.coloring.greedy import (
    greedy_conflict_free_coloring,
    proper_coloring_of_primal_graph,
    unique_maximum_coloring_bound,
)
from repro.coloring.interval import (
    canonical_point_order,
    divide_and_conquer_coloring,
    interval_color_bound,
    interval_conflict_free_coloring,
    is_interval_hypergraph,
)

__all__ = [
    "UNCOLORED",
    "color_of",
    "colors_used",
    "happy_edges",
    "happy_edges_incident",
    "is_conflict_free",
    "is_happy",
    "num_colors_used",
    "restrict_coloring",
    "unhappy_edges",
    "unique_color_vertices",
    "verify_conflict_free_coloring",
    "Multicoloring",
    "edge_color_census",
    "is_conflict_free_multicoloring",
    "is_edge_happy",
    "single_coloring_as_multicoloring",
    "verify_conflict_free_multicoloring",
    "greedy_conflict_free_coloring",
    "proper_coloring_of_primal_graph",
    "unique_maximum_coloring_bound",
    "canonical_point_order",
    "divide_and_conquer_coloring",
    "interval_color_bound",
    "interval_conflict_free_coloring",
    "is_interval_hypergraph",
]
