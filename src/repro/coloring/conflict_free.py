"""Conflict-free colorings of hypergraphs: definitions, happy edges, verification.

A (single-color) conflict-free k-coloring of a hypergraph ``H = (V, E)``
is a map ``f : V → {1, …, k}`` such that every hyperedge ``e`` contains a
vertex whose color is unique within ``e``.  Following the paper, an edge
with this property is called **happy**; in intermediate stages of the
reduction only some edges are happy and uncolored vertices are denoted by
``UNCOLORED`` (the paper's ``⊥``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.exceptions import ColoringError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
Color = Hashable

#: Sentinel standing for the paper's ``⊥`` (vertex not colored).
UNCOLORED = None


def color_of(coloring: Dict[Vertex, Color], vertex: Vertex) -> Color:
    """Return the color of ``vertex`` in a partial coloring (``UNCOLORED`` if absent)."""
    return coloring.get(vertex, UNCOLORED)


def unique_color_vertices(
    hypergraph: Hypergraph, coloring: Dict[Vertex, Color], edge_id
) -> Set[Vertex]:
    """Return the vertices of ``edge_id`` whose color appears exactly once in the edge.

    Uncolored vertices (color ``UNCOLORED``) never count as uniquely colored.
    """
    members = hypergraph.edge(edge_id)
    counts: Dict[Color, int] = {}
    for v in members:
        c = color_of(coloring, v)
        if c is UNCOLORED:
            continue
        counts[c] = counts.get(c, 0) + 1
    return {
        v
        for v in members
        if color_of(coloring, v) is not UNCOLORED and counts[color_of(coloring, v)] == 1
    }


def is_happy(hypergraph: Hypergraph, coloring: Dict[Vertex, Color], edge_id) -> bool:
    """Return ``True`` if hyperedge ``edge_id`` is happy under ``coloring``."""
    return bool(unique_color_vertices(hypergraph, coloring, edge_id))


def happy_edges(hypergraph: Hypergraph, coloring: Dict[Vertex, Color]) -> Set:
    """Return the set of edge ids that are happy under ``coloring``."""
    return {e for e in hypergraph.edge_ids if is_happy(hypergraph, coloring, e)}


def happy_from_incidence(coloring: Dict[Vertex, Color], incident_of) -> Set:
    """Happy edges of a partial coloring, driven by an incident-edge lookup.

    ``incident_of(v)`` yields the ids of the edges containing ``v``.  Per
    colored vertex the color-census of its incident edges is bumped, then
    every *touched* edge is classified from its census — an edge is happy
    iff some color appears on exactly one of its members, and an edge no
    colored vertex touches cannot be happy.  This single kernel backs both
    :func:`happy_edges_incident` and the phase loop's stateful
    :class:`repro.core.happiness.HappinessTracker`, so the happiness rule
    cannot diverge between them.
    """
    census: Dict = {}
    for v, c in coloring.items():
        if c is UNCOLORED:
            continue
        for e in incident_of(v):
            counts = census.get(e)
            if counts is None:
                counts = census[e] = {}
            counts[c] = counts.get(c, 0) + 1
    return {e for e, counts in census.items() if 1 in counts.values()}


def happy_edges_incident(hypergraph: Hypergraph, coloring: Dict[Vertex, Color]) -> Set:
    """Return the happy edges by scanning only edges *incident to colored vertices*.

    Equal to :func:`happy_edges` for every input, but the cost is
    ``O(Σ_{v colored} deg(v))`` instead of a full pass over the edge
    family; colored non-vertices are ignored (a partial coloring may
    mention vertices the hypergraph no longer has).
    """
    return happy_from_incidence(
        coloring,
        lambda v: hypergraph.edges_containing(v) if hypergraph.has_vertex(v) else (),
    )


def unhappy_edges(
    hypergraph: Hypergraph,
    coloring: Dict[Vertex, Color],
    happy: Optional[Set] = None,
) -> Set:
    """Return the set of edge ids that are *not* happy under ``coloring``.

    ``happy`` may carry a precomputed :func:`happy_edges` result so callers
    that need both sides of the partition compute the census only once.
    """
    if happy is None:
        happy = happy_edges(hypergraph, coloring)
    return set(hypergraph.edge_ids) - happy


def is_conflict_free(
    hypergraph: Hypergraph,
    coloring: Dict[Vertex, Color],
    happy: Optional[Set] = None,
) -> bool:
    """Return ``True`` if every hyperedge is happy under ``coloring``.

    The coloring may be partial; only happiness matters.  ``happy``
    optionally short-circuits the computation with a precomputed
    :func:`happy_edges` result.
    """
    return not unhappy_edges(hypergraph, coloring, happy=happy)


def verify_conflict_free_coloring(
    hypergraph: Hypergraph,
    coloring: Dict[Vertex, Color],
    k: Optional[int] = None,
    require_total: bool = False,
) -> None:
    """Raise :class:`ColoringError` unless ``coloring`` is a valid conflict-free coloring.

    Parameters
    ----------
    hypergraph:
        The instance.
    coloring:
        Map from vertices to colors; vertices may be missing or mapped to
        ``UNCOLORED`` unless ``require_total`` is set.
    k:
        When given, the coloring must use at most ``k`` distinct colors.
    require_total:
        When ``True``, every vertex of the hypergraph must receive a color.
    """
    foreign = set(coloring) - hypergraph.vertices
    if foreign:
        raise ColoringError(
            f"coloring mentions non-vertices, e.g. {next(iter(foreign))!r}"
        )
    if require_total:
        missing = {
            v for v in hypergraph.vertices if color_of(coloring, v) is UNCOLORED
        }
        if missing:
            raise ColoringError(
                f"{len(missing)} vertices are uncolored, e.g. {next(iter(missing))!r}"
            )
    if k is not None:
        used = {c for c in coloring.values() if c is not UNCOLORED}
        if len(used) > k:
            raise ColoringError(f"coloring uses {len(used)} colors, more than k = {k}")
    bad = unhappy_edges(hypergraph, coloring, happy=happy_edges_incident(hypergraph, coloring))
    if bad:
        example = next(iter(bad))
        raise ColoringError(
            f"{len(bad)} hyperedges are not happy, e.g. edge {example!r} with members "
            f"{sorted(hypergraph.edge(example), key=repr)!r}"
        )


def colors_used(coloring: Dict[Vertex, Color]) -> Set[Color]:
    """Return the set of real colors used (``UNCOLORED`` excluded)."""
    return {c for c in coloring.values() if c is not UNCOLORED}


def num_colors_used(coloring: Dict[Vertex, Color]) -> int:
    """Return the number of distinct real colors used."""
    return len(colors_used(coloring))


def restrict_coloring(coloring: Dict[Vertex, Color], vertices: Iterable[Vertex]) -> Dict[Vertex, Color]:
    """Restrict a coloring to ``vertices`` (dropping ``UNCOLORED`` entries)."""
    keep = set(vertices)
    return {
        v: c for v, c in coloring.items() if v in keep and c is not UNCOLORED
    }
