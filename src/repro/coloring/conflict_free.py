"""Conflict-free colorings of hypergraphs: definitions, happy edges, verification.

A (single-color) conflict-free k-coloring of a hypergraph ``H = (V, E)``
is a map ``f : V → {1, …, k}`` such that every hyperedge ``e`` contains a
vertex whose color is unique within ``e``.  Following the paper, an edge
with this property is called **happy**; in intermediate stages of the
reduction only some edges are happy and uncolored vertices are denoted by
``UNCOLORED`` (the paper's ``⊥``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.exceptions import ColoringError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
Color = Hashable

#: Sentinel standing for the paper's ``⊥`` (vertex not colored).
UNCOLORED = None


def color_of(coloring: Dict[Vertex, Color], vertex: Vertex) -> Color:
    """Return the color of ``vertex`` in a partial coloring (``UNCOLORED`` if absent)."""
    return coloring.get(vertex, UNCOLORED)


def unique_color_vertices(
    hypergraph: Hypergraph, coloring: Dict[Vertex, Color], edge_id
) -> Set[Vertex]:
    """Return the vertices of ``edge_id`` whose color appears exactly once in the edge.

    Uncolored vertices (color ``UNCOLORED``) never count as uniquely colored.
    """
    members = hypergraph.edge(edge_id)
    counts: Dict[Color, int] = {}
    for v in members:
        c = color_of(coloring, v)
        if c is UNCOLORED:
            continue
        counts[c] = counts.get(c, 0) + 1
    return {
        v
        for v in members
        if color_of(coloring, v) is not UNCOLORED and counts[color_of(coloring, v)] == 1
    }


def is_happy(hypergraph: Hypergraph, coloring: Dict[Vertex, Color], edge_id) -> bool:
    """Return ``True`` if hyperedge ``edge_id`` is happy under ``coloring``."""
    return bool(unique_color_vertices(hypergraph, coloring, edge_id))


def happy_edges(hypergraph: Hypergraph, coloring: Dict[Vertex, Color]) -> Set:
    """Return the set of edge ids that are happy under ``coloring``."""
    return {e for e in hypergraph.edge_ids if is_happy(hypergraph, coloring, e)}


def unhappy_edges(hypergraph: Hypergraph, coloring: Dict[Vertex, Color]) -> Set:
    """Return the set of edge ids that are *not* happy under ``coloring``."""
    return set(hypergraph.edge_ids) - happy_edges(hypergraph, coloring)


def is_conflict_free(hypergraph: Hypergraph, coloring: Dict[Vertex, Color]) -> bool:
    """Return ``True`` if every hyperedge is happy under ``coloring``.

    The coloring may be partial; only happiness matters.
    """
    return not unhappy_edges(hypergraph, coloring)


def verify_conflict_free_coloring(
    hypergraph: Hypergraph,
    coloring: Dict[Vertex, Color],
    k: Optional[int] = None,
    require_total: bool = False,
) -> None:
    """Raise :class:`ColoringError` unless ``coloring`` is a valid conflict-free coloring.

    Parameters
    ----------
    hypergraph:
        The instance.
    coloring:
        Map from vertices to colors; vertices may be missing or mapped to
        ``UNCOLORED`` unless ``require_total`` is set.
    k:
        When given, the coloring must use at most ``k`` distinct colors.
    require_total:
        When ``True``, every vertex of the hypergraph must receive a color.
    """
    foreign = set(coloring) - hypergraph.vertices
    if foreign:
        raise ColoringError(
            f"coloring mentions non-vertices, e.g. {next(iter(foreign))!r}"
        )
    if require_total:
        missing = {
            v for v in hypergraph.vertices if color_of(coloring, v) is UNCOLORED
        }
        if missing:
            raise ColoringError(
                f"{len(missing)} vertices are uncolored, e.g. {next(iter(missing))!r}"
            )
    if k is not None:
        used = {c for c in coloring.values() if c is not UNCOLORED}
        if len(used) > k:
            raise ColoringError(f"coloring uses {len(used)} colors, more than k = {k}")
    bad = unhappy_edges(hypergraph, coloring)
    if bad:
        example = next(iter(bad))
        raise ColoringError(
            f"{len(bad)} hyperedges are not happy, e.g. edge {example!r} with members "
            f"{sorted(hypergraph.edge(example), key=repr)!r}"
        )


def colors_used(coloring: Dict[Vertex, Color]) -> Set[Color]:
    """Return the set of real colors used (``UNCOLORED`` excluded)."""
    return {c for c in coloring.values() if c is not UNCOLORED}


def num_colors_used(coloring: Dict[Vertex, Color]) -> int:
    """Return the number of distinct real colors used."""
    return len(colors_used(coloring))


def restrict_coloring(coloring: Dict[Vertex, Color], vertices: Iterable[Vertex]) -> Dict[Vertex, Color]:
    """Restrict a coloring to ``vertices`` (dropping ``UNCOLORED`` entries)."""
    keep = set(vertices)
    return {
        v: c for v, c in coloring.items() if v in keep and c is not UNCOLORED
    }
