"""Centralized baselines for conflict-free coloring.

These are *not* part of the paper's reduction; they serve as reference
points in the benchmark harness (how many colors does a direct greedy
approach use versus the reduction's ``k·ρ`` budget?) and as generators of
valid conflict-free colorings for testing Lemma 2.1(a).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.coloring.conflict_free import (
    UNCOLORED,
    is_conflict_free,
    verify_conflict_free_coloring,
)
from repro.exceptions import ColoringError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable


def proper_coloring_of_primal_graph(hypergraph: Hypergraph) -> Dict[Vertex, int]:
    """Conflict-free coloring obtained from a proper coloring of the primal graph.

    If all vertices of every hyperedge receive pairwise distinct colors then
    trivially every edge is happy.  The number of colors is at most
    ``Δ_primal + 1``, where ``Δ_primal`` is the maximum degree of the
    2-section graph — usually far more colors than necessary, but always
    correct; used as the "many colors, trivially conflict-free" baseline.
    """
    from repro.graphs.coloring import greedy_coloring

    primal = hypergraph.primal_graph()
    coloring = greedy_coloring(primal)
    # Colors are shifted to start at 1 to match the paper's {1, …, k} convention.
    return {v: c + 1 for v, c in coloring.items()}


def greedy_conflict_free_coloring(
    hypergraph: Hypergraph, max_colors: Optional[int] = None
) -> Dict[Vertex, int]:
    """Round-based conflict-free coloring (the classical framework algorithm).

    Rounds are numbered ``1, 2, 3, …``.  In round ``c`` let ``U`` be the set
    of still-uncolored vertices; build the *trace primal graph* on ``U``
    whose edges join two uncolored vertices that appear together in some
    hyperedge, take a maximal independent set ``S`` of it, and give every
    vertex of ``S`` color ``c``.  The procedure stops as soon as the partial
    coloring is conflict-free.

    Correctness: consider any hyperedge ``e`` once every vertex is colored
    and let ``c`` be the largest color inside ``e``.  Two vertices of ``e``
    with color ``c`` would both have been uncolored in round ``c`` and
    adjacent in that round's trace primal graph, contradicting the
    independence of ``S``; hence exactly one vertex of ``e`` carries ``c``
    and ``e`` is happy.  Termination: every round colors at least one vertex
    (a maximal independent set of a non-empty vertex set is non-empty), so
    there are at most ``n`` rounds.

    Parameters
    ----------
    max_colors:
        Safety cap; raise :class:`ColoringError` when more rounds would be
        needed.

    Returns
    -------
    dict
        A partial coloring (vertices may remain uncolored) that is
        conflict-free for the whole hypergraph.
    """
    from repro.graphs.graph import Graph
    from repro.graphs.independent_sets import greedy_maximal_independent_set

    coloring: Dict[Vertex, int] = {}
    color = 0
    while not is_conflict_free(hypergraph, coloring):
        color += 1
        if max_colors is not None and color > max_colors:
            raise ColoringError(
                f"greedy conflict-free coloring exceeded the cap of {max_colors} colors"
            )
        uncolored = {
            v for v in hypergraph.vertices if coloring.get(v, UNCOLORED) is UNCOLORED
        }
        if not uncolored:
            # Every vertex is colored yet some edge is unhappy: impossible by
            # the correctness argument above, so reaching this line means the
            # hypergraph was mutated concurrently.
            raise ColoringError("no uncolored vertices remain but some edge is unhappy")
        trace_primal = Graph(vertices=uncolored)
        for _, members in hypergraph.edges():
            trace = sorted(members & uncolored, key=repr)
            for i, u in enumerate(trace):
                for v in trace[i + 1:]:
                    if not trace_primal.has_edge(u, v):
                        trace_primal.add_edge(u, v)
        for v in greedy_maximal_independent_set(trace_primal):
            coloring[v] = color
    verify_conflict_free_coloring(hypergraph, coloring)
    return coloring


def unique_maximum_coloring_bound(hypergraph: Hypergraph) -> int:
    """Crude upper bound on the number of colors any reasonable CF heuristic needs.

    The primal-graph baseline gives ``Δ_primal + 1`` colors, which is an
    upper bound on the conflict-free chromatic number; exposed for use in
    benchmark tables.
    """
    return hypergraph.primal_graph().max_degree() + 1
