"""Conflict-free coloring of interval hypergraphs ([DN18] setting).

The unpublished work [DN18] that the paper adapts solves conflict-free
coloring on *interval hypergraphs*: vertices are points on a line and
hyperedges are the subsets induced by intervals.  The classical
divide-and-conquer algorithm colors the median point with the smallest
color of the current level and recurses on both halves with the next
color; every interval covers a contiguous range of points, and the point
of minimum color inside the range is unique, so ``⌈log2(n)⌉ + 1`` colors
always suffice.

This module provides that optimal-order algorithm plus the helpers needed
by benchmark E8 (the end-to-end comparison between direct interval
coloring and the paper's MaxIS-approximation reduction on the same
instances).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence

from repro.coloring.conflict_free import verify_conflict_free_coloring
from repro.exceptions import ColoringError, HypergraphError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable


def is_interval_hypergraph(hypergraph: Hypergraph, order: Sequence[Vertex]) -> bool:
    """Return ``True`` if every hyperedge is contiguous with respect to ``order``.

    ``order`` must be a permutation of the vertex set (the left-to-right
    order of the points on the line).
    """
    position = {v: i for i, v in enumerate(order)}
    if set(position) != hypergraph.vertices:
        raise HypergraphError("order must be a permutation of the vertex set")
    for _, members in hypergraph.edges():
        indices = sorted(position[v] for v in members)
        if indices[-1] - indices[0] + 1 != len(indices):
            return False
    return True


def divide_and_conquer_coloring(order: Sequence[Vertex]) -> Dict[Vertex, int]:
    """Color points so that every interval of ``order`` has a unique minimum color.

    The median of the current range receives the current color; both halves
    recurse with the next color.  Any contiguous range then contains exactly
    one vertex holding the minimum color present in the range, so the
    coloring is conflict-free for *every* interval hypergraph over ``order``.

    Colors are ``1 … ⌈log2(n+1)⌉``.
    """
    order_list = list(order)
    coloring: Dict[Vertex, int] = {}

    def recurse(lo: int, hi: int, color: int) -> None:
        if lo > hi:
            return
        mid = (lo + hi) // 2
        coloring[order_list[mid]] = color
        recurse(lo, mid - 1, color + 1)
        recurse(mid + 1, hi, color + 1)

    recurse(0, len(order_list) - 1, 1)
    return coloring


def interval_conflict_free_coloring(
    hypergraph: Hypergraph, order: Sequence[Vertex]
) -> Dict[Vertex, int]:
    """Conflict-free coloring of an interval hypergraph with ``O(log n)`` colors.

    Parameters
    ----------
    hypergraph:
        An interval hypergraph with respect to ``order``.
    order:
        Left-to-right order of the points.

    Raises
    ------
    ColoringError
        If the hypergraph is not an interval hypergraph for ``order``.
    """
    if not is_interval_hypergraph(hypergraph, order):
        raise ColoringError("hypergraph is not an interval hypergraph for the given order")
    coloring = divide_and_conquer_coloring(order)
    verify_conflict_free_coloring(hypergraph, coloring)
    return coloring


def interval_color_bound(n: int) -> int:
    """Return the ``⌈log2(n+1)⌉`` upper bound on colors used by the D&C algorithm."""
    if n < 0:
        raise ColoringError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0
    return math.ceil(math.log2(n + 1))


def canonical_point_order(hypergraph: Hypergraph) -> List[Vertex]:
    """Return the natural sorted order of integer-indexed interval hypergraph vertices.

    The generators in :mod:`repro.hypergraph.generators` label points with
    their index, so sorting the vertices recovers the geometric order.
    """
    return sorted(hypergraph.vertices, key=lambda v: (not isinstance(v, int), v if isinstance(v, int) else repr(v)))
