"""Conflict-free *multi*colorings: each vertex may hold a set of colors.

The target problem of the paper's reduction (Theorem 1.2) is conflict-free
multicoloring: every vertex is assigned a non-empty subset of colors and
every hyperedge must contain a vertex with a color that no other vertex of
the edge has (in any of its color sets).  The reduction of Theorem 1.1
produces a multicoloring naturally — each phase contributes at most one
color per vertex, drawn from a phase-private palette.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from repro.exceptions import ColoringError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
Color = Hashable
ColorSet = FrozenSet[Color]


class Multicoloring:
    """A partial assignment of color *sets* to vertices.

    The class is a thin mutable wrapper over ``Dict[Vertex, Set[Color]]``
    with the operations the reduction needs: adding one color to a vertex,
    merging phase colorings, and conflict-freeness checks.
    """

    def __init__(self, assignment: Optional[Dict[Vertex, Iterable[Color]]] = None) -> None:
        self._colors: Dict[Vertex, Set[Color]] = {}
        if assignment:
            for v, colors in assignment.items():
                for c in colors:
                    self.add_color(v, c)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_color(self, vertex: Vertex, color: Color) -> None:
        """Give ``vertex`` the additional color ``color``."""
        if color is None:
            raise ColoringError("None is reserved for 'uncolored' and cannot be assigned")
        self._colors.setdefault(vertex, set()).add(color)

    def merge_single_coloring(self, coloring: Dict[Vertex, Color]) -> None:
        """Merge a partial single-color coloring (phase output) into this multicoloring."""
        for v, c in coloring.items():
            if c is not None:
                self.add_color(v, c)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def colors_of(self, vertex: Vertex) -> Set[Color]:
        """Return the colors of ``vertex`` (empty set if uncolored)."""
        return set(self._colors.get(vertex, set()))

    def colored_vertices(self) -> Set[Vertex]:
        """Return the vertices holding at least one color."""
        return {v for v, cs in self._colors.items() if cs}

    def all_colors(self) -> Set[Color]:
        """Return every color used by some vertex."""
        result: Set[Color] = set()
        for cs in self._colors.values():
            result |= cs
        return result

    def num_colors(self) -> int:
        """Return the total number of distinct colors used."""
        return len(self.all_colors())

    def max_colors_per_vertex(self) -> int:
        """Return the largest number of colors any single vertex holds."""
        return max((len(cs) for cs in self._colors.values()), default=0)

    def as_dict(self) -> Dict[Vertex, FrozenSet[Color]]:
        """Return an immutable snapshot of the assignment."""
        return {v: frozenset(cs) for v, cs in self._colors.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multicoloring):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Multicoloring(vertices={len(self._colors)}, "
            f"colors={self.num_colors()})"
        )


def edge_color_census(
    hypergraph: Hypergraph, multicoloring: Multicoloring, edge_id
) -> Dict[Color, int]:
    """Count, for hyperedge ``edge_id``, how many member vertices hold each color."""
    counts: Dict[Color, int] = {}
    for v in hypergraph.edge(edge_id):
        for c in multicoloring.colors_of(v):
            counts[c] = counts.get(c, 0) + 1
    return counts


def is_edge_happy(hypergraph: Hypergraph, multicoloring: Multicoloring, edge_id) -> bool:
    """Return ``True`` if some color appears on exactly one vertex of the edge."""
    return any(count == 1 for count in edge_color_census(hypergraph, multicoloring, edge_id).values())


def happy_edges(hypergraph: Hypergraph, multicoloring: Multicoloring) -> Set:
    """Return the ids of edges happy under the multicoloring."""
    return {e for e in hypergraph.edge_ids if is_edge_happy(hypergraph, multicoloring, e)}


def unhappy_edges(
    hypergraph: Hypergraph,
    multicoloring: Multicoloring,
    happy: Optional[Set] = None,
) -> Set:
    """Return the ids of edges *not* happy under the multicoloring.

    ``happy`` may carry a precomputed :func:`happy_edges` result; both
    :func:`is_conflict_free_multicoloring` and
    :func:`verify_conflict_free_multicoloring` route through this single
    computation instead of re-censusing every edge per call.
    """
    if happy is None:
        happy = happy_edges(hypergraph, multicoloring)
    return set(hypergraph.edge_ids) - happy


def is_conflict_free_multicoloring(
    hypergraph: Hypergraph,
    multicoloring: Multicoloring,
    happy: Optional[Set] = None,
) -> bool:
    """Return ``True`` if every hyperedge is happy under the multicoloring."""
    return not unhappy_edges(hypergraph, multicoloring, happy=happy)


def verify_conflict_free_multicoloring(
    hypergraph: Hypergraph,
    multicoloring: Multicoloring,
    max_total_colors: Optional[int] = None,
    happy: Optional[Set] = None,
) -> None:
    """Raise :class:`ColoringError` unless the multicoloring is conflict-free.

    Parameters
    ----------
    max_total_colors:
        Optional bound on the total number of distinct colors (the
        reduction's budget is ``k·ρ``).
    happy:
        Optional precomputed :func:`happy_edges` result, reused instead of
        re-censusing the edge family.
    """
    foreign = multicoloring.colored_vertices() - hypergraph.vertices
    if foreign:
        raise ColoringError(
            f"multicoloring mentions non-vertices, e.g. {next(iter(foreign))!r}"
        )
    if max_total_colors is not None and multicoloring.num_colors() > max_total_colors:
        raise ColoringError(
            f"multicoloring uses {multicoloring.num_colors()} colors, "
            f"exceeding the budget {max_total_colors}"
        )
    unhappy = unhappy_edges(hypergraph, multicoloring, happy=happy)
    if unhappy:
        example = next(iter(unhappy))
        raise ColoringError(
            f"{len(unhappy)} hyperedges are not happy under the multicoloring, "
            f"e.g. edge {example!r}"
        )


def single_coloring_as_multicoloring(coloring: Dict[Vertex, Color]) -> Multicoloring:
    """Lift a (partial) single-color coloring to a multicoloring."""
    mc = Multicoloring()
    mc.merge_single_coloring(coloring)
    return mc
