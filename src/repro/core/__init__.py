"""Core contribution of the paper: conflict graph, Lemma 2.1 correspondence,
the phase-based reduction of Theorem 1.1, bounds, and certificates."""

from repro.core.conflict_graph import (
    ConflictGraph,
    ConflictVertex,
    build_conflict_graph,
    classify_conflict_edge,
    conflict_vertices,
    legacy_build_graph,
)
from repro.core.correspondence import (
    coloring_to_independent_set,
    happy_edges_of_independent_set,
    independent_set_to_coloring,
    maximum_independent_set_size_bound,
    verify_lemma_21a,
    verify_lemma_21b,
)
from repro.core.happiness import HappinessTracker
from repro.core.reduction import (
    ConflictFreeMulticoloringViaMaxIS,
    PhaseRecord,
    ReductionResult,
    solve_conflict_free_multicoloring,
)
from repro.core.bounds import (
    color_budget,
    conflict_graph_edge_count_upper_bound,
    conflict_graph_vertex_count,
    expected_remaining_edges,
    is_polylog,
    minimum_lambda_for_phase_count,
    per_phase_removal_fraction,
    phase_budget,
)
from repro.core.certificates import (
    CertificateReport,
    check_decay,
    check_phase_accounting,
    verify_reduction_result,
)
from repro.core.containment import ClusterwiseMaxISResult, clusterwise_maxis

__all__ = [
    "ConflictGraph",
    "ConflictVertex",
    "build_conflict_graph",
    "classify_conflict_edge",
    "conflict_vertices",
    "legacy_build_graph",
    "coloring_to_independent_set",
    "happy_edges_of_independent_set",
    "independent_set_to_coloring",
    "maximum_independent_set_size_bound",
    "verify_lemma_21a",
    "verify_lemma_21b",
    "ConflictFreeMulticoloringViaMaxIS",
    "HappinessTracker",
    "PhaseRecord",
    "ReductionResult",
    "solve_conflict_free_multicoloring",
    "color_budget",
    "conflict_graph_edge_count_upper_bound",
    "conflict_graph_vertex_count",
    "expected_remaining_edges",
    "is_polylog",
    "minimum_lambda_for_phase_count",
    "per_phase_removal_fraction",
    "phase_budget",
    "CertificateReport",
    "check_decay",
    "check_phase_accounting",
    "verify_reduction_result",
    "ClusterwiseMaxISResult",
    "clusterwise_maxis",
]
