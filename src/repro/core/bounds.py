"""Quantitative bounds from the proof of Theorem 1.1.

The hardness reduction runs ``ρ = λ·ln(m) + 1`` phases; after phase ``i``
at most ``(1 - 1/λ)^i · m`` hyperedges remain unhappy, so after ``ρ``
phases the count drops below 1 and the produced multicoloring uses at most
``k·ρ`` colors.  These closed forms are collected here so that the
reduction, its certificates and the benchmark harness all compute them in
exactly one place.
"""

from __future__ import annotations

import math

from repro.exceptions import ReductionError


def phase_budget(lam: float, m: int) -> int:
    """Return ``ρ = ⌈λ·ln(m)⌉ + 1``, the number of phases used by the reduction.

    Parameters
    ----------
    lam:
        The approximation factor λ ≥ 1 of the MaxIS oracle.
    m:
        The number of hyperedges of the original hypergraph.

    Notes
    -----
    The paper sets ``ρ = λ·ln(m) + 1`` and argues
    ``(1 - 1/λ)^ρ · m ≤ e^{-ρ/λ} · m < 1``.  Since the number of phases must
    be an integer we take the ceiling of ``λ·ln(m)``, which can only help.
    For ``m ≤ 1`` a single phase suffices.
    """
    if lam < 1:
        raise ReductionError(f"approximation factor must be ≥ 1, got {lam}")
    if m < 0:
        raise ReductionError(f"edge count must be non-negative, got {m}")
    if m <= 1:
        return 1
    return math.ceil(lam * math.log(m)) + 1


def color_budget(k: int, lam: float, m: int) -> int:
    """Return the total color budget ``k·ρ`` of the reduction."""
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    return k * phase_budget(lam, m)


def expected_remaining_edges(m: int, lam: float, phase: int) -> float:
    """Return the guaranteed bound ``(1 - 1/λ)^phase · m`` on surviving edges."""
    if lam < 1:
        raise ReductionError(f"approximation factor must be ≥ 1, got {lam}")
    if phase < 0:
        raise ReductionError(f"phase must be non-negative, got {phase}")
    if m < 0:
        raise ReductionError(f"edge count must be non-negative, got {m}")
    return ((1.0 - 1.0 / lam) ** phase) * m


def per_phase_removal_fraction(lam: float) -> float:
    """Return the guaranteed per-phase removal fraction ``1/λ``."""
    if lam < 1:
        raise ReductionError(f"approximation factor must be ≥ 1, got {lam}")
    return 1.0 / lam


def conflict_graph_vertex_count(total_edge_size: int, k: int) -> int:
    """Return ``|V(G_k)| = k · Σ_e |e|``."""
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    if total_edge_size < 0:
        raise ReductionError("total edge size must be non-negative")
    return k * total_edge_size


def conflict_graph_edge_count_upper_bound(total_edge_size: int, k: int) -> int:
    """Return the trivial quadratic upper bound ``|E(G_k)| ≤ |V(G_k)|² / 2``.

    The paper only needs polynomiality; the quadratic bound is what the
    benchmark harness reports the measured edge counts against.
    """
    n = conflict_graph_vertex_count(total_edge_size, k)
    return n * n // 2


def is_polylog(value: float, n: int, exponent: float = 3.0, constant: float = 8.0) -> bool:
    """Heuristic check that ``value ≤ constant · log2(n)^exponent``.

    "Polylogarithmic" is an asymptotic notion; for the finite instances of
    the benchmark harness we report whether the measured quantity stays
    under a fixed reference envelope ``c · log^3``, which is the convention
    used throughout EXPERIMENTS.md.
    """
    if n < 2:
        return True
    return value <= constant * (math.log2(n) ** exponent)


def minimum_lambda_for_phase_count(m: int, phases: int) -> float:
    """Return the largest λ for which ``phases`` phases provably suffice.

    Inverse of :func:`phase_budget` (up to rounding): solves
    ``phases ≥ λ·ln(m) + 1``.  Useful when budgeting experiments backwards
    from a wall-clock constraint.
    """
    if phases < 1:
        raise ReductionError(f"phase count must be at least 1, got {phases}")
    if m <= 1:
        return float("inf")
    return max(1.0, (phases - 1) / math.log(m))
