"""End-to-end certificates for the reduction's output.

P-SLOCAL membership results (and the derandomization theorem of [GHK18]
the paper cites) hinge on solutions being *efficiently verifiable*.  The
functions here verify, given only the reduction's output and the original
hypergraph, that

* the produced multicoloring is conflict-free,
* the total number of colors respects the ``k·ρ`` budget,
* the per-phase accounting is internally consistent
  (``|E_{i+1}| = |E_i| − #happy`` and ``#happy ≥ |I_i|``), and
* when the oracle honoured its λ guarantee, the phase count stayed within
  ``ρ`` and the decay followed ``|E_{i+1}| ≤ (1 − 1/λ)·|E_i|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.coloring.multicoloring import verify_conflict_free_multicoloring
from repro.core.reduction import ReductionResult
from repro.exceptions import VerificationError
from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of verifying a :class:`ReductionResult`.

    Attributes
    ----------
    conflict_free:
        The multicoloring makes every hyperedge happy.
    within_color_budget:
        At most ``k·ρ`` colors were used.
    within_phase_budget:
        At most ``ρ`` phases were executed.
    decay_respected:
        Every phase removed at least a ``1/λ`` fraction of the surviving
        edges (the inequality the analysis guarantees under its premise).
    issues:
        Human-readable list of violations (empty when everything holds).
    """

    conflict_free: bool
    within_color_budget: bool
    within_phase_budget: bool
    decay_respected: bool
    issues: List[str]

    @property
    def all_ok(self) -> bool:
        """Whether every checked property holds."""
        return not self.issues


def check_phase_accounting(result: ReductionResult) -> List[str]:
    """Return a list of per-phase bookkeeping inconsistencies (empty when clean)."""
    issues: List[str] = []
    previous_after: Optional[int] = None
    for record in result.phases:
        if previous_after is not None and record.edges_before != previous_after:
            issues.append(
                f"phase {record.phase}: starts with {record.edges_before} edges but the "
                f"previous phase left {previous_after}"
            )
        if record.edges_after != record.edges_before - len(record.happy_edges):
            issues.append(
                f"phase {record.phase}: edges_after={record.edges_after} does not equal "
                f"edges_before - #happy = {record.edges_before - len(record.happy_edges)}"
            )
        if record.edges_before > 0 and len(record.happy_edges) < record.independent_set_size:
            issues.append(
                f"phase {record.phase}: {len(record.happy_edges)} happy edges but the "
                f"independent set had size {record.independent_set_size} "
                "(Lemma 2.1(b) violated)"
            )
        previous_after = record.edges_after
    if result.phases and result.phases[-1].edges_after != 0:
        issues.append(
            f"final phase leaves {result.phases[-1].edges_after} unhappy edges"
        )
    return issues


def check_decay(result: ReductionResult) -> List[str]:
    """Return violations of the ``|E_{i+1}| ≤ (1 − 1/λ)·|E_i|`` guarantee."""
    issues: List[str] = []
    for record in result.phases:
        if record.edges_before == 0:
            continue
        bound = (1.0 - 1.0 / result.lam) * record.edges_before
        # The bound is only promised when α(G^i_k) = |E_i|; we still report
        # (rather than fail) because the benchmark harness wants to see where
        # weaker oracles fall short.
        if record.edges_after > bound + 1e-9:
            issues.append(
                f"phase {record.phase}: {record.edges_after} edges remain, above the "
                f"(1 - 1/λ)·|E_i| = {bound:.2f} guarantee"
            )
    return issues


def verify_reduction_result(
    hypergraph: Hypergraph,
    result: ReductionResult,
    require_phase_budget: bool = False,
    require_decay: bool = False,
) -> CertificateReport:
    """Verify a reduction output against the original hypergraph.

    Parameters
    ----------
    hypergraph:
        The *original* instance the reduction was run on.
    result:
        The reduction's output.
    require_phase_budget / require_decay:
        When set, a violation of the corresponding theoretical guarantee
        raises :class:`VerificationError` instead of merely being reported.
        The conflict-freeness of the multicoloring and the internal
        bookkeeping are always enforced.
    """
    issues: List[str] = []

    conflict_free = True
    try:
        verify_conflict_free_multicoloring(hypergraph, result.multicoloring)
    except Exception as exc:  # ColoringError subclasses ReproError
        conflict_free = False
        issues.append(f"multicoloring is not conflict-free: {exc}")

    issues.extend(check_phase_accounting(result))

    within_color_budget = result.total_colors <= result.color_bound
    if not within_color_budget:
        issues.append(
            f"{result.total_colors} colors used, exceeding the budget k·ρ = {result.color_bound}"
        )

    within_phase_budget = result.num_phases <= result.phase_bound
    if not within_phase_budget:
        msg = (
            f"{result.num_phases} phases executed, exceeding the budget ρ = {result.phase_bound}"
        )
        if require_phase_budget:
            issues.append(msg)
        # Otherwise the phase overshoot is reported through the flag only:
        # it is legitimate when the analysis premise does not hold.

    decay_issues = check_decay(result)
    decay_respected = not decay_issues
    if require_decay:
        issues.extend(decay_issues)

    report = CertificateReport(
        conflict_free=conflict_free,
        within_color_budget=within_color_budget,
        within_phase_budget=within_phase_budget,
        decay_respected=decay_respected,
        issues=issues,
    )
    if not conflict_free or check_phase_accounting(result):
        raise VerificationError("; ".join(report.issues))
    if (require_phase_budget and not within_phase_budget) or (require_decay and not decay_respected):
        raise VerificationError("; ".join(report.issues))
    return report
