"""Construction of the conflict graph ``G_k`` (Section 2 of the paper).

Given a hypergraph ``H = (V, E)`` and a palette size ``k``, the conflict
graph ``G_k`` has

* vertex set ``V(G_k) = {(e, v, c) : e ∈ E(H), v ∈ e, 1 ≤ c ≤ k}`` and
* edge set ``E(G_k) = E_vertex ∪ E_edge ∪ E_color`` where

  - ``E_vertex`` joins ``(e, v, c)`` and ``(g, v, d)`` for every vertex
    ``v`` and distinct colors ``c ≠ d`` — a vertex may only commit to one
    color;
  - ``E_edge`` joins ``(e, v, c)`` and ``(e, u, d)`` for every edge ``e``
    — an edge contributes at most one triple to an independent set;
  - ``E_color`` joins ``(e, v, c)`` and ``(g, u, c)`` for *distinct*
    vertices ``u ≠ v`` whenever ``{u, v} ⊆ e`` or ``{u, v} ⊆ g`` — the
    chosen color must be unique within the edge that selected it.  (The
    paper's displayed definition does not spell out ``u ≠ v``, but its
    proof of Lemma 2.1(a) requires it; see DESIGN.md "interpretation
    notes".)

The triples are represented as :class:`ConflictVertex` named tuples; the
graph itself is an ordinary :class:`repro.graphs.Graph`, so every
independent-set algorithm in :mod:`repro.maxis` applies directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.exceptions import ReductionError
from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph, iter_bits, popcount
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
EdgeId = Hashable
Color = int


class ConflictVertex(NamedTuple):
    """A vertex ``(e, v, c)`` of the conflict graph.

    Attributes
    ----------
    edge:
        The hyperedge id ``e``.
    vertex:
        A vertex ``v ∈ e`` of the hypergraph.
    color:
        A palette color ``c ∈ {1, …, k}``.
    """

    edge: EdgeId
    vertex: Vertex
    color: Color


def conflict_vertices(hypergraph: Hypergraph, k: int) -> List[ConflictVertex]:
    """Enumerate ``V(G_k)`` in deterministic order."""
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    result: List[ConflictVertex] = []
    for e in hypergraph.edge_ids:
        for v in sorted(hypergraph.edge(e), key=repr):
            for c in range(1, k + 1):
                result.append(ConflictVertex(edge=e, vertex=v, color=c))
    return result


def classify_conflict_edge(a: ConflictVertex, b: ConflictVertex, hypergraph: Hypergraph) -> Set[str]:
    """Return the subset of ``{"vertex", "edge", "color"}`` relations that join ``a`` and ``b``.

    An empty set means the two triples are *not* adjacent in ``G_k``.  The
    three relations are not mutually exclusive (e.g. two triples of the same
    edge and the same color lie in both ``E_edge`` and ``E_color``); the
    conflict graph simply contains the union.
    """
    if a == b:
        return set()
    kinds: Set[str] = set()
    if a.vertex == b.vertex and a.color != b.color:
        kinds.add("vertex")
    if a.edge == b.edge:
        kinds.add("edge")
    if a.color == b.color and a.vertex != b.vertex:
        # The E_color relation is between triples of *distinct* hypergraph
        # vertices: the paper's proof of Lemma 2.1(a) derives its contradiction
        # from "u ∈ e and u ≠ v also has color c", and with u = v allowed the
        # lemma would be false (one vertex may legitimately witness happiness
        # of two different edges).  See DESIGN.md, "interpretation notes".
        ea = hypergraph.edge(a.edge)
        eb = hypergraph.edge(b.edge)
        pair = {a.vertex, b.vertex}
        if pair <= ea or pair <= eb:
            kinds.add("color")
    return kinds


def _build_structures(
    hypergraph: Hypergraph, k: int
) -> Tuple[
    List[ConflictVertex],
    List[int],
    Dict[EdgeId, Tuple[List[Vertex], int]],
    Dict[Tuple[Vertex, Color], List[int]],
    Dict[Vertex, List[int]],
    int,
]:
    """Build ``G_k``'s adjacency directly from the three bucket structures.

    Returns ``(triples, rows, blocks, vc_bucket, by_vertex, num_edges)`` where
    ``triples`` is ``V(G_k)`` in the canonical interning order of
    :func:`conflict_vertices` and ``rows[i]`` is the *bitset* (over triple
    indices) of the neighbors of triple ``i``.  The bucket structures are
    returned (not discarded) because :class:`ConflictGraph` keeps them as
    live state: :meth:`ConflictGraph.remove_hyperedges` maintains them
    across phases of the reduction.  Each relation is emitted as
    whole-bucket bitmask ORs — no pairwise ``frozenset`` dedup, no
    per-element set inserts and no ``repr`` sorting in inner loops (the
    only sorts are the per-edge member orderings that define the interning
    table itself):

    * ``E_vertex`` — group triples by hypergraph vertex; each ``(v, c)``
      class links to the rest of its group in one mask OR;
    * ``E_edge`` — each hyperedge's block of ``|e|·k`` consecutive indices
      forms a clique (one contiguous mask);
    * ``E_color`` — a triple ``(e, v, c)`` links to the ``(·, u, c)``
      buckets of its co-members ``u ∈ e \\ {v}`` (the union
      ``S[e][c] \\ bucket(v, c)``), and symmetrically each ``(·, u, c)``
      bucket receives the aggregated mask of the witnessing triples, so
      rows stay symmetric even when only one of the two edges witnesses
      the relation.
    """
    edge_ids = hypergraph.edge_ids
    triples: List[ConflictVertex] = []
    # (vertex, color) -> indices of triples (·, vertex, color); insertion is
    # in canonical order, so the buckets are ascending.  The *_mask twins
    # hold the same sets as bitmasks for the relation emission below.
    vc_bucket: Dict[Tuple[Vertex, Color], List[int]] = {}
    vc_mask: Dict[Tuple[Vertex, Color], int] = {}
    by_vertex: Dict[Vertex, List[int]] = {}
    group_mask: Dict[Vertex, int] = {}
    # edge id -> (sorted members, base index); insertion is edge_ids order.
    blocks: Dict[EdgeId, Tuple[List[Vertex], int]] = {}
    append_triple = triples.append
    colors = range(1, k + 1)
    for e in edge_ids:
        members = sorted(hypergraph.edge(e), key=repr)
        base = len(triples)
        blocks[e] = (members, base)
        for v in members:
            group = by_vertex.get(v)
            if group is None:
                group = by_vertex[v] = []
            gm = group_mask.get(v, 0)
            for c in colors:
                i = len(triples)
                bit = 1 << i
                append_triple(ConflictVertex(e, v, c))
                key = (v, c)
                bucket = vc_bucket.get(key)
                if bucket is None:
                    vc_bucket[key] = [i]
                    vc_mask[key] = bit
                else:
                    bucket.append(i)
                    vc_mask[key] |= bit
                group.append(i)
                gm |= bit
            group_mask[v] = gm

    rows: List[int] = [0] * len(triples)

    # E_vertex: within each vertex group, link every pair of distinct colors
    # (one OR of "the group minus my color class" per triple).
    for (v, c), bucket in vc_bucket.items():
        others = group_mask[v] & ~vc_mask[(v, c)]
        if others:
            for i in bucket:
                rows[i] |= others

    for members, base in blocks.values():
        size = len(members) * k
        # E_edge: each hyperedge's triples form a clique (contiguous mask;
        # the self-bit is cleared in the final pass).
        block = ((1 << size) - 1) << base
        # S[c] = all triples (·, u, c) over members u of this edge.
        for c in range(1, k + 1):
            s_c = 0
            edge_color = 0  # the (e, ·, c) triples of this edge itself
            for pos, u in enumerate(members):
                s_c |= vc_mask[(u, c)]
                edge_color |= 1 << (base + pos * k + (c - 1))
            # E_color, direct side: (e, v, c) links to every (·, u, c) with
            # u a co-member of e (its own vertex's bucket masked out).
            for pos, v in enumerate(members):
                ia = base + pos * k + (c - 1)
                rows[ia] |= block | (s_c & ~vc_mask[(v, c)])
            # E_color, symmetric side: every (g, u, c) with u ∈ e receives
            # the (e, v, c) triples of the other members v ≠ u, covering
            # witnesses g does not see itself.
            for pos, u in enumerate(members):
                incoming = edge_color & ~(1 << (base + pos * k + (c - 1)))
                if incoming:
                    for ib in vc_bucket[(u, c)]:
                        rows[ib] |= incoming

    # Clear the self-bits introduced by the E_edge block masks; count the
    # conflict edges in the same pass so the frozen snapshot constructor
    # does not need its own popcount sweep.
    degree_sum = 0
    for i in range(len(rows)):
        row = rows[i] & ~(1 << i)
        rows[i] = row
        degree_sum += popcount(row)
    return triples, rows, blocks, vc_bucket, by_vertex, degree_sum // 2


def _edge_vertex_pairs(hypergraph: Hypergraph, k: int) -> Iterator[Tuple[ConflictVertex, ConflictVertex]]:
    """Yield each adjacent pair of conflict vertices exactly once (internal).

    This is the original quadratic-overhead enumeration (pairwise
    ``frozenset`` dedup, ``repr``-sorted inner loops).  It is retained as
    the *reference* builder: the property tests check the bucketed
    :func:`_build_adjacency` against it, and the perf harness times it to
    report the speedup trajectory.
    """
    # E_vertex: same hypergraph vertex, different colors (edges may coincide or differ).
    triples_by_vertex: Dict[Vertex, List[ConflictVertex]] = {}
    # E_edge / E_color bookkeeping below reuses the full triple list per edge.
    triples_by_edge: Dict[EdgeId, List[ConflictVertex]] = {}
    all_triples = conflict_vertices(hypergraph, k)
    for t in all_triples:
        triples_by_vertex.setdefault(t.vertex, []).append(t)
        triples_by_edge.setdefault(t.edge, []).append(t)

    emitted: Set[frozenset] = set()

    def emit(a: ConflictVertex, b: ConflictVertex):
        key = frozenset((a, b))
        if key not in emitted:
            emitted.add(key)
            return (a, b)
        return None

    # E_vertex
    for triples in triples_by_vertex.values():
        for i, a in enumerate(triples):
            for b in triples[i + 1:]:
                if a.color != b.color:
                    pair = emit(a, b)
                    if pair:
                        yield pair

    # E_edge
    for triples in triples_by_edge.values():
        for i, a in enumerate(triples):
            for b in triples[i + 1:]:
                pair = emit(a, b)
                if pair:
                    yield pair

    # E_color: same color c, distinct vertices u ≠ v, and {u, v} contained
    # in one of the *two edges named by the triples*.  Iterate over each
    # triple a = (e, v, c); for every other vertex u of the same hyperedge e
    # and every hyperedge g containing u, the triple b = (g, u, c) is an
    # E_color neighbor of a (this covers the "{u, v} ⊆ e" branch; the
    # "{u, v} ⊆ g" branch is produced when the roles of a and b are swapped).
    for a in all_triples:
        members = hypergraph.edge(a.edge)
        for u in sorted(members, key=repr):
            if u == a.vertex:
                # Same-vertex pairs are excluded from E_color; see
                # classify_conflict_edge for the rationale.
                continue
            for g in sorted(hypergraph.edges_containing(u), key=repr):
                b = ConflictVertex(edge=g, vertex=u, color=a.color)
                pair = emit(a, b)
                if pair:
                    yield pair


def legacy_build_graph(hypergraph: Hypergraph, k: int) -> Graph:
    """Build ``G_k`` with the original pairwise-emit algorithm (reference).

    Kept verbatim from the seed implementation so that (a) the property
    tests have an independent oracle for the bucketed builder and (b) the
    perf harness can measure the before/after speedup on identical
    workloads.
    """
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    graph = Graph(vertices=conflict_vertices(hypergraph, k))
    for a, b in _edge_vertex_pairs(hypergraph, k):
        if not graph.has_edge(a, b):
            graph.add_edge(a, b)
    return graph


class ConflictGraph:
    """The conflict graph ``G_k`` of conflict-free ``k``-coloring a hypergraph.

    The instance is built once and can then be *maintained* across the
    phases of the reduction: :meth:`remove_hyperedges` deletes the triples
    of happy hyperedges (and every conflict edge incident to them) in time
    proportional to the deleted part, because removing hyperedges never
    creates new conflicts between surviving triples — ``G^{i+1}_k`` is
    exactly the induced subgraph of ``G^i_k`` on the surviving triples.
    Internally the adjacency lives in one immutable
    :class:`~repro.graphs.indexed.IndexedGraph` snapshot plus an alive
    bitmask; :meth:`frozen` and :meth:`frozen_sorted` serve alive-mask
    subgraph views of it, and the mutable :attr:`graph` is materialized
    lazily from the current view.

    Parameters
    ----------
    hypergraph:
        The instance ``H``.  Callers that use :meth:`remove_hyperedges`
        are expected to mirror the removals on ``hypergraph`` (the
        reduction's phase loop removes from both); the conflict graph
        itself never mutates it.
    k:
        The palette size.

    Attributes
    ----------
    graph:
        The underlying :class:`repro.graphs.Graph` whose vertices are
        :class:`ConflictVertex` triples (lazily materialized; insertion
        order is the canonical triple order restricted to the surviving
        edges).
    """

    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        if k <= 0:
            raise ReductionError(f"palette size k must be positive, got {k}")
        self.hypergraph = hypergraph
        self.k = k
        triples, rows, blocks, vc_bucket, by_vertex, num_edges = _build_structures(
            hypergraph, k
        )
        self._triples = triples
        self._blocks = blocks
        self._vc_bucket = vc_bucket
        self._by_vertex = by_vertex
        self._canonical = IndexedGraph._from_bitsets(triples, rows, num_edges)
        self._alive = (1 << len(triples)) - 1
        # |E(G_k)| over the surviving triples, maintained under
        # remove_hyperedges in O(deleted part) — num_edges() must not pay a
        # full popcount sweep per phase of the reduction.
        self._alive_edge_count = num_edges
        self._graph: Optional[Graph] = None
        self._frozen_view: Optional["IndexedGraph"] = self._canonical
        # repr-sorted snapshot for the MIS oracles (built on first use).
        self._sorted_full: Optional["IndexedGraph"] = None
        self._sorted_alive = 0
        self._canon_to_sorted: List[int] = []
        self._sorted_view: Optional["IndexedGraph"] = None

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def remove_hyperedges(self, edge_ids: Iterable[EdgeId]) -> None:
        """Delete every triple of the given hyperedges from the conflict graph.

        All conflict edges incident to a deleted triple disappear with it;
        the ``E_vertex``/``E_edge``/``E_color`` bucket structures and the
        alive masks of the frozen snapshots are updated in time
        proportional to the deleted part (plus the size of the touched
        buckets).  This realizes the phase step ``G^{i+1}_k =
        G^i_k[surviving triples]``: hyperedge removal never makes two
        surviving triples adjacent, so the maintained graph equals a
        from-scratch rebuild on the surviving hypergraph.

        The caller is responsible for removing the same edges from
        :attr:`hypergraph` (before or after this call).

        Raises
        ------
        ReductionError
            If some edge id is unknown (or already removed); no state is
            modified in that case.
        """
        ids = list(dict.fromkeys(edge_ids))  # dedupe, preserving order
        unknown = [e for e in ids if e not in self._blocks]
        if unknown:
            raise ReductionError(
                f"edges not in conflict graph: {sorted(unknown, key=repr)!r}"
            )
        if not ids:
            return
        k = self.k
        dead_mask = 0
        dead_ids: List[int] = []
        touched_vertices: Set[Vertex] = set()
        for e in ids:
            members, base = self._blocks.pop(e)
            size = len(members) * k
            dead_mask |= ((1 << size) - 1) << base
            dead_ids.extend(range(base, base + size))
            touched_vertices.update(members)
        dead_set = set(dead_ids)
        for v in touched_vertices:
            survivors = [i for i in self._by_vertex[v] if i not in dead_set]
            if survivors:
                self._by_vertex[v] = survivors
            else:
                del self._by_vertex[v]
            for c in range(1, k + 1):
                bucket = self._vc_bucket.get((v, c))
                if bucket is None:
                    continue
                kept = [i for i in bucket if i not in dead_set]
                if kept:
                    self._vc_bucket[(v, c)] = kept
                else:
                    del self._vc_bucket[(v, c)]
        # Conflict edges incident to the deleted triples: each dead triple
        # counts its alive neighbors; edges with both endpoints dead are
        # counted once per endpoint, so subtract half the within-dead sum.
        bitsets = self._canonical.bitsets()
        alive_old = self._alive
        incident = 0
        within = 0
        for i in dead_ids:
            row = bitsets[i]
            incident += popcount(row & alive_old)
            within += popcount(row & dead_mask)
        self._alive_edge_count -= incident - within // 2
        self._alive &= ~dead_mask
        self._frozen_view = None
        self._graph = None
        if self._sorted_full is not None:
            sorted_dead = 0
            perm = self._canon_to_sorted
            for i in dead_ids:
                sorted_dead |= 1 << perm[i]
            self._sorted_alive &= ~sorted_dead
            self._sorted_view = None

    def _current_frozen(self) -> "IndexedGraph":
        """The canonical-order frozen graph restricted to the alive triples."""
        if self._frozen_view is None:
            self._frozen_view = self._canonical.subgraph_view(self._alive)
        return self._frozen_view

    @property
    def graph(self) -> Graph:
        """The mutable :class:`Graph` over the surviving triples (lazy)."""
        if self._graph is None:
            self._graph = self._current_frozen().to_graph()
        return self._graph

    def frozen(self) -> "IndexedGraph":
        """Return (and cache) the conflict graph as an :class:`IndexedGraph`.

        The interning table is the canonical triple order of
        :func:`conflict_vertices`; after :meth:`remove_hyperedges` the
        result is an alive-mask subgraph view of the original snapshot
        (same table, dead ids masked out), so the frozen form stays valid
        across deletions without re-interning.

        The cache assumes the conflict graph is only mutated through
        :meth:`remove_hyperedges` (as the whole pipeline does): mutating
        ``self.graph`` directly would leave the cached snapshot stale —
        call ``self.graph.freeze()`` instead if you do.
        """
        return self._current_frozen()

    def frozen_sorted(self) -> "IndexedGraph":
        """Return the surviving conflict graph frozen in ``repr`` order.

        This is the interning order the MIS oracles use
        (:func:`~repro.graphs.indexed.freeze_sorted`), so handing this
        view to an approximator reproduces, bit for bit, what the
        approximator would compute on a freshly rebuilt conflict graph of
        the surviving hypergraph.  The full snapshot is derived from the
        canonical one exactly once per :class:`ConflictGraph`; subsequent
        calls only re-mask.
        """
        if self._sorted_full is None:
            triples = self._triples
            n = len(triples)
            # The sort keys are exactly repr(triple); the f-string mirrors
            # NamedTuple.__repr__ to skip its per-call overhead (guarded by
            # a unit test), and an is-sorted scan avoids the argsort in the
            # common case where the canonical order already repr-sorts.
            keys = [
                f"ConflictVertex(edge={t[0]!r}, vertex={t[1]!r}, color={t[2]!r})"
                for t in triples
            ]
            if all(keys[i] <= keys[i + 1] for i in range(n - 1)):
                # The canonical order already is the repr order (true for
                # every instance whose labels repr-sort component-wise,
                # e.g. integer ids) — reuse the snapshot, skip the remap.
                self._sorted_full = self._canonical
                self._canon_to_sorted = list(range(n))
                self._sorted_alive = self._alive
            else:
                order = sorted(range(n), key=keys.__getitem__)
                self._sorted_full = self._canonical._permuted(order)
                perm = [0] * n
                for p, old in enumerate(order):
                    perm[old] = p
                self._canon_to_sorted = perm
                alive = 0
                if self._alive == (1 << n) - 1:
                    alive = self._alive
                else:
                    for i in iter_bits(self._alive):
                        alive |= 1 << perm[i]
                self._sorted_alive = alive
        if self._sorted_view is None:
            self._sorted_view = self._sorted_full.subgraph_view(self._sorted_alive)
        return self._sorted_view

    def verification_graph(self):
        """The cheapest already-materialized form for independence checks.

        Returns the mutable :attr:`graph` when it has been materialized
        (so pre-existing callers keep their exact behavior) and the
        canonical frozen view otherwise — the reduction's phase engine
        never needs the mutable graph at all.  Either form is accepted by
        :func:`~repro.graphs.independent_sets.verify_independent_set`.
        """
        if self._graph is not None:
            return self._graph
        return self._current_frozen()

    def bucket_structure(self) -> Dict[str, Dict]:
        """Snapshot of the maintained bucket state, keyed by triples.

        Returns the three structures the incremental builder maintains —
        ``vertex_color`` (the ``(v, c)`` buckets feeding ``E_vertex`` and
        ``E_color``), ``by_vertex`` (the per-vertex groups of ``E_vertex``)
        and ``edge_blocks`` (the per-hyperedge cliques of ``E_edge``) —
        with triple indices resolved to :class:`ConflictVertex` values, so
        a maintained instance can be compared structurally against a
        from-scratch rebuild in tests.
        """
        t = self._triples
        k = self.k
        return {
            "vertex_color": {
                key: [t[i] for i in bucket] for key, bucket in self._vc_bucket.items()
            },
            "by_vertex": {
                v: [t[i] for i in group] for v, group in self._by_vertex.items()
            },
            "edge_blocks": {
                e: [t[i] for i in range(base, base + len(members) * k)]
                for e, (members, base) in self._blocks.items()
            },
        }

    # ------------------------------------------------------------------
    # size accounting (benchmark E5)
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        """Return ``|V(G_k)| = k · Σ_e |e|`` (over the surviving edges)."""
        return popcount(self._alive)

    def num_edges(self) -> int:
        """Return ``|E(G_k)|`` (over the surviving edges; O(1), counter-maintained)."""
        return self._alive_edge_count

    def expected_num_vertices(self) -> int:
        """The closed-form vertex count ``k · Σ_e |e|`` (cross-check for tests)."""
        return self.k * self.hypergraph.total_edge_size()

    # ------------------------------------------------------------------
    # structure helpers used by the correspondence and by tests
    # ------------------------------------------------------------------
    def triples_of_edge(self, edge_id: EdgeId) -> List[ConflictVertex]:
        """Return all triples ``(edge_id, ·, ·)``."""
        return [
            ConflictVertex(edge_id, v, c)
            for v in sorted(self.hypergraph.edge(edge_id), key=repr)
            for c in range(1, self.k + 1)
        ]

    def triples_of_vertex(self, vertex: Vertex) -> List[ConflictVertex]:
        """Return all triples ``(·, vertex, ·)``."""
        return [
            ConflictVertex(e, vertex, c)
            for e in sorted(self.hypergraph.edges_containing(vertex), key=repr)
            for c in range(1, self.k + 1)
        ]

    def edge_kinds(self, a: ConflictVertex, b: ConflictVertex) -> Set[str]:
        """Classify the relation(s) connecting two triples (empty if non-adjacent)."""
        return classify_conflict_edge(a, b, self.hypergraph)

    def host_assignment(self) -> Dict[ConflictVertex, Vertex]:
        """Return the natural host map used for local simulation: ``(e, v, c) ↦ v``."""
        return {t: t.vertex for t in self.graph.vertices}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConflictGraph(k={self.k}, |V|={self.num_vertices()}, "
            f"|E|={self.num_edges()})"
        )


def build_conflict_graph(hypergraph: Hypergraph, k: int) -> ConflictGraph:
    """Convenience constructor mirroring the paper's ``G_k`` notation."""
    return ConflictGraph(hypergraph, k)
