"""Construction of the conflict graph ``G_k`` (Section 2 of the paper).

Given a hypergraph ``H = (V, E)`` and a palette size ``k``, the conflict
graph ``G_k`` has

* vertex set ``V(G_k) = {(e, v, c) : e ∈ E(H), v ∈ e, 1 ≤ c ≤ k}`` and
* edge set ``E(G_k) = E_vertex ∪ E_edge ∪ E_color`` where

  - ``E_vertex`` joins ``(e, v, c)`` and ``(g, v, d)`` for every vertex
    ``v`` and distinct colors ``c ≠ d`` — a vertex may only commit to one
    color;
  - ``E_edge`` joins ``(e, v, c)`` and ``(e, u, d)`` for every edge ``e``
    — an edge contributes at most one triple to an independent set;
  - ``E_color`` joins ``(e, v, c)`` and ``(g, u, c)`` for *distinct*
    vertices ``u ≠ v`` whenever ``{u, v} ⊆ e`` or ``{u, v} ⊆ g`` — the
    chosen color must be unique within the edge that selected it.  (The
    paper's displayed definition does not spell out ``u ≠ v``, but its
    proof of Lemma 2.1(a) requires it; see DESIGN.md "interpretation
    notes".)

The triples are represented as :class:`ConflictVertex` named tuples; the
graph itself is an ordinary :class:`repro.graphs.Graph`, so every
independent-set algorithm in :mod:`repro.maxis` applies directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.exceptions import ReductionError
from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
EdgeId = Hashable
Color = int


class ConflictVertex(NamedTuple):
    """A vertex ``(e, v, c)`` of the conflict graph.

    Attributes
    ----------
    edge:
        The hyperedge id ``e``.
    vertex:
        A vertex ``v ∈ e`` of the hypergraph.
    color:
        A palette color ``c ∈ {1, …, k}``.
    """

    edge: EdgeId
    vertex: Vertex
    color: Color


def conflict_vertices(hypergraph: Hypergraph, k: int) -> List[ConflictVertex]:
    """Enumerate ``V(G_k)`` in deterministic order."""
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    result: List[ConflictVertex] = []
    for e in hypergraph.edge_ids:
        for v in sorted(hypergraph.edge(e), key=repr):
            for c in range(1, k + 1):
                result.append(ConflictVertex(edge=e, vertex=v, color=c))
    return result


def classify_conflict_edge(a: ConflictVertex, b: ConflictVertex, hypergraph: Hypergraph) -> Set[str]:
    """Return the subset of ``{"vertex", "edge", "color"}`` relations that join ``a`` and ``b``.

    An empty set means the two triples are *not* adjacent in ``G_k``.  The
    three relations are not mutually exclusive (e.g. two triples of the same
    edge and the same color lie in both ``E_edge`` and ``E_color``); the
    conflict graph simply contains the union.
    """
    if a == b:
        return set()
    kinds: Set[str] = set()
    if a.vertex == b.vertex and a.color != b.color:
        kinds.add("vertex")
    if a.edge == b.edge:
        kinds.add("edge")
    if a.color == b.color and a.vertex != b.vertex:
        # The E_color relation is between triples of *distinct* hypergraph
        # vertices: the paper's proof of Lemma 2.1(a) derives its contradiction
        # from "u ∈ e and u ≠ v also has color c", and with u = v allowed the
        # lemma would be false (one vertex may legitimately witness happiness
        # of two different edges).  See DESIGN.md, "interpretation notes".
        ea = hypergraph.edge(a.edge)
        eb = hypergraph.edge(b.edge)
        pair = {a.vertex, b.vertex}
        if pair <= ea or pair <= eb:
            kinds.add("color")
    return kinds


def _build_adjacency(
    hypergraph: Hypergraph, k: int
) -> Tuple[List[ConflictVertex], List[Set[int]]]:
    """Build ``G_k``'s adjacency directly from the three bucket structures.

    Returns ``(triples, rows)`` where ``triples`` is ``V(G_k)`` in the
    canonical interning order of :func:`conflict_vertices` and ``rows[i]``
    is the set of neighbor *indices* of triple ``i``.  Each relation is
    emitted straight into per-vertex integer sets — no pairwise
    ``frozenset`` dedup, no ``has_edge`` pre-check and no ``repr`` sorting
    in inner loops (the only sorts are the per-edge member orderings that
    define the interning table itself):

    * ``E_vertex`` — group triples by hypergraph vertex, link the
      different-color classes of each group;
    * ``E_edge`` — each hyperedge's block of ``|e|·k`` consecutive indices
      forms a clique;
    * ``E_color`` — for each triple ``(e, v, c)`` and each co-member
      ``u ∈ e \\ {v}``, link to the ``(·, u, c)`` bucket (the witnessing
      edge is ``e`` itself; the symmetric witness is added explicitly).
    """
    edge_ids = hypergraph.edge_ids
    triples: List[ConflictVertex] = []
    rows: List[Set[int]] = []
    # (vertex, color) -> indices of triples (·, vertex, color); insertion is
    # in canonical order, so the buckets are ascending.
    vc_bucket: Dict[Tuple[Vertex, Color], List[int]] = {}
    by_vertex: Dict[Vertex, List[int]] = {}
    edge_blocks: List[Tuple[List[Vertex], int]] = []  # (sorted members, base index)
    for e in edge_ids:
        members = sorted(hypergraph.edge(e), key=repr)
        base = len(triples)
        edge_blocks.append((members, base))
        for v in members:
            for c in range(1, k + 1):
                i = len(triples)
                triples.append(ConflictVertex(edge=e, vertex=v, color=c))
                rows.append(set())
                vc_bucket.setdefault((v, c), []).append(i)
                by_vertex.setdefault(v, []).append(i)

    # E_vertex: within each vertex group, link every pair of distinct colors.
    for v, group in by_vertex.items():
        group_set = set(group)
        for c in range(1, k + 1):
            bucket = vc_bucket[(v, c)]
            others = group_set.difference(bucket)
            if not others:
                continue
            for i in bucket:
                rows[i] |= others

    # E_edge: each hyperedge's triples form a clique (consecutive indices).
    for members, base in edge_blocks:
        size = len(members) * k
        block = set(range(base, base + size))
        for i in block:
            row = rows[i]
            row |= block
            row.discard(i)

    # E_color: for a = (e, v, c) and u ∈ e with u ≠ v, every b = (g, u, c)
    # is adjacent to a ({u, v} ⊆ e witnesses the relation); both directions
    # are recorded so the rows stay symmetric.
    for members, base in edge_blocks:
        for pos, v in enumerate(members):
            for u in members:
                if u == v:
                    continue
                for c in range(1, k + 1):
                    ia = base + pos * k + (c - 1)
                    bucket = vc_bucket[(u, c)]
                    rows[ia].update(bucket)
                    for ib in bucket:
                        rows[ib].add(ia)
    return triples, rows


def _edge_vertex_pairs(hypergraph: Hypergraph, k: int) -> Iterator[Tuple[ConflictVertex, ConflictVertex]]:
    """Yield each adjacent pair of conflict vertices exactly once (internal).

    This is the original quadratic-overhead enumeration (pairwise
    ``frozenset`` dedup, ``repr``-sorted inner loops).  It is retained as
    the *reference* builder: the property tests check the bucketed
    :func:`_build_adjacency` against it, and the perf harness times it to
    report the speedup trajectory.
    """
    # E_vertex: same hypergraph vertex, different colors (edges may coincide or differ).
    triples_by_vertex: Dict[Vertex, List[ConflictVertex]] = {}
    # E_edge / E_color bookkeeping below reuses the full triple list per edge.
    triples_by_edge: Dict[EdgeId, List[ConflictVertex]] = {}
    all_triples = conflict_vertices(hypergraph, k)
    for t in all_triples:
        triples_by_vertex.setdefault(t.vertex, []).append(t)
        triples_by_edge.setdefault(t.edge, []).append(t)

    emitted: Set[frozenset] = set()

    def emit(a: ConflictVertex, b: ConflictVertex):
        key = frozenset((a, b))
        if key not in emitted:
            emitted.add(key)
            return (a, b)
        return None

    # E_vertex
    for triples in triples_by_vertex.values():
        for i, a in enumerate(triples):
            for b in triples[i + 1:]:
                if a.color != b.color:
                    pair = emit(a, b)
                    if pair:
                        yield pair

    # E_edge
    for triples in triples_by_edge.values():
        for i, a in enumerate(triples):
            for b in triples[i + 1:]:
                pair = emit(a, b)
                if pair:
                    yield pair

    # E_color: same color c, distinct vertices u ≠ v, and {u, v} contained
    # in one of the *two edges named by the triples*.  Iterate over each
    # triple a = (e, v, c); for every other vertex u of the same hyperedge e
    # and every hyperedge g containing u, the triple b = (g, u, c) is an
    # E_color neighbor of a (this covers the "{u, v} ⊆ e" branch; the
    # "{u, v} ⊆ g" branch is produced when the roles of a and b are swapped).
    for a in all_triples:
        members = hypergraph.edge(a.edge)
        for u in sorted(members, key=repr):
            if u == a.vertex:
                # Same-vertex pairs are excluded from E_color; see
                # classify_conflict_edge for the rationale.
                continue
            for g in sorted(hypergraph.edges_containing(u), key=repr):
                b = ConflictVertex(edge=g, vertex=u, color=a.color)
                pair = emit(a, b)
                if pair:
                    yield pair


def legacy_build_graph(hypergraph: Hypergraph, k: int) -> Graph:
    """Build ``G_k`` with the original pairwise-emit algorithm (reference).

    Kept verbatim from the seed implementation so that (a) the property
    tests have an independent oracle for the bucketed builder and (b) the
    perf harness can measure the before/after speedup on identical
    workloads.
    """
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    graph = Graph(vertices=conflict_vertices(hypergraph, k))
    for a, b in _edge_vertex_pairs(hypergraph, k):
        if not graph.has_edge(a, b):
            graph.add_edge(a, b)
    return graph


class ConflictGraph:
    """The conflict graph ``G_k`` of conflict-free ``k``-coloring a hypergraph.

    Parameters
    ----------
    hypergraph:
        The instance ``H``.
    k:
        The palette size.

    Attributes
    ----------
    graph:
        The underlying :class:`repro.graphs.Graph` whose vertices are
        :class:`ConflictVertex` triples.
    """

    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        if k <= 0:
            raise ReductionError(f"palette size k must be positive, got {k}")
        self.hypergraph = hypergraph
        self.k = k
        triples, rows = _build_adjacency(hypergraph, k)
        self.graph = Graph._from_adjacency_unchecked(
            {t: {triples[j] for j in rows[i]} for i, t in enumerate(triples)}
        )
        self._frozen: Optional["IndexedGraph"] = None

    def frozen(self) -> "IndexedGraph":
        """Return (and cache) the conflict graph as an :class:`IndexedGraph`.

        The interning table is the canonical triple order of
        :func:`conflict_vertices`, so ids are stable across calls and runs.

        The cache assumes :class:`ConflictGraph` is treated as immutable
        (as the whole pipeline does): mutating ``self.graph`` after the
        first call would leave the cached snapshot stale — call
        ``self.graph.freeze()`` directly instead if you mutate.
        """
        if self._frozen is None:
            self._frozen = self.graph.freeze()
        return self._frozen

    # ------------------------------------------------------------------
    # size accounting (benchmark E5)
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        """Return ``|V(G_k)| = k · Σ_e |e|``."""
        return self.graph.num_vertices()

    def num_edges(self) -> int:
        """Return ``|E(G_k)|``."""
        return self.graph.num_edges()

    def expected_num_vertices(self) -> int:
        """The closed-form vertex count ``k · Σ_e |e|`` (cross-check for tests)."""
        return self.k * self.hypergraph.total_edge_size()

    # ------------------------------------------------------------------
    # structure helpers used by the correspondence and by tests
    # ------------------------------------------------------------------
    def triples_of_edge(self, edge_id: EdgeId) -> List[ConflictVertex]:
        """Return all triples ``(edge_id, ·, ·)``."""
        return [
            ConflictVertex(edge_id, v, c)
            for v in sorted(self.hypergraph.edge(edge_id), key=repr)
            for c in range(1, self.k + 1)
        ]

    def triples_of_vertex(self, vertex: Vertex) -> List[ConflictVertex]:
        """Return all triples ``(·, vertex, ·)``."""
        return [
            ConflictVertex(e, vertex, c)
            for e in sorted(self.hypergraph.edges_containing(vertex), key=repr)
            for c in range(1, self.k + 1)
        ]

    def edge_kinds(self, a: ConflictVertex, b: ConflictVertex) -> Set[str]:
        """Classify the relation(s) connecting two triples (empty if non-adjacent)."""
        return classify_conflict_edge(a, b, self.hypergraph)

    def host_assignment(self) -> Dict[ConflictVertex, Vertex]:
        """Return the natural host map used for local simulation: ``(e, v, c) ↦ v``."""
        return {t: t.vertex for t in self.graph.vertices}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConflictGraph(k={self.k}, |V|={self.num_vertices()}, "
            f"|E|={self.num_edges()})"
        )


def build_conflict_graph(hypergraph: Hypergraph, k: int) -> ConflictGraph:
    """Convenience constructor mirroring the paper's ``G_k`` notation."""
    return ConflictGraph(hypergraph, k)
