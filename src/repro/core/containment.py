"""The containment direction: MaxIS approximation is in P-SLOCAL.

Theorem 1.1's containment half is cited from [GKM17, Theorem 7.1]: any
problem whose solutions can be verified locally — in particular computing
good independent sets — admits a polylogarithmic SLOCAL algorithm.  The
constructive idea is the standard cluster-by-cluster argument:

1. compute a network decomposition with cluster (weak) diameter
   ``O(log n)``;
2. process the cluster color classes sequentially; every cluster solves its
   own subproblem *optimally* on its induced subgraph, excluding vertices
   already dominated by neighboring clusters processed earlier.

The resulting independent set is maximal, and because every cluster
contributes an optimum of its residual subgraph the practical approximation
quality is far better than the maximality guarantee; benchmark
``bench_containment`` (an ablation) measures it against the exact optimum
and the oracles of :mod:`repro.maxis`.

This module is an executable companion to the cited containment result —
its purpose is to exercise the SLOCAL machinery end to end on the MaxIS
problem itself, not to re-prove [GKM17]'s approximation bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from repro.decomposition.clusters import Clustering
from repro.decomposition.network_decomposition import (
    NetworkDecomposition,
    ball_carving_decomposition,
)
from repro.exceptions import ReductionError
from repro.graphs.graph import Graph
from repro.graphs.independent_sets import maximum_independent_set, verify_independent_set

Vertex = Hashable


@dataclass
class ClusterwiseMaxISResult:
    """Result of the cluster-by-cluster SLOCAL MaxIS computation.

    Attributes
    ----------
    independent_set:
        The produced independent set (always maximal).
    decomposition:
        The network decomposition that was used.
    cluster_contributions:
        Per-cluster count of selected vertices.
    locality:
        The effective SLOCAL locality: a cluster only inspects its own
        (weak-diameter-bounded) ball plus one extra hop for the boundary, so
        the locality is ``max cluster weak diameter + 1``.
    """

    independent_set: Set[Vertex]
    decomposition: NetworkDecomposition
    cluster_contributions: Dict[Hashable, int]
    locality: int


def clusterwise_maxis(
    graph: Graph,
    decomposition: Optional[NetworkDecomposition] = None,
    cluster_size_limit: int = 64,
) -> ClusterwiseMaxISResult:
    """Compute an independent set cluster by cluster along a network decomposition.

    Parameters
    ----------
    graph:
        The input graph.
    decomposition:
        Optional pre-computed network decomposition; defaults to ball
        carving with radius ``⌈log2 n⌉`` (the polylog regime).
    cluster_size_limit:
        Safety bound on the exact per-cluster solve; clusters larger than
        this fall back to the min-degree greedy heuristic so the procedure
        stays polynomial on adversarial decompositions.

    Returns
    -------
    ClusterwiseMaxISResult
        The independent set together with per-cluster accounting.
    """
    n = graph.num_vertices()
    if decomposition is None:
        radius = max(1, math.ceil(math.log2(n))) if n >= 2 else 0
        decomposition = ball_carving_decomposition(graph, radius)

    clustering: Clustering = decomposition.clustering
    clustering.verify_partition(graph)

    # Process cluster color classes in increasing color order; clusters of
    # the same color are non-adjacent, so their choices cannot conflict.
    clusters_by_color: Dict[int, List] = {}
    for cluster_id in clustering.cluster_ids():
        color = decomposition.cluster_colors.get(cluster_id)
        if color is None:
            raise ReductionError(f"cluster {cluster_id!r} has no color")
        clusters_by_color.setdefault(color, []).append(cluster_id)

    selected: Set[Vertex] = set()
    contributions: Dict[Hashable, int] = {}
    cluster_members = clustering.clusters()
    for color in sorted(clusters_by_color):
        for cluster_id in sorted(clusters_by_color[color], key=repr):
            members = cluster_members[cluster_id]
            # Exclude vertices already dominated by selections of earlier
            # clusters (those selections live in neighboring clusters).
            blocked = {v for v in members if graph.neighbors(v) & selected}
            available = members - blocked
            if not available:
                contributions[cluster_id] = 0
                continue
            subgraph = graph.subgraph(available)
            if subgraph.num_vertices() <= cluster_size_limit:
                local_choice = maximum_independent_set(subgraph)
            else:
                from repro.graphs.independent_sets import greedy_min_degree_independent_set

                local_choice = greedy_min_degree_independent_set(subgraph)
            selected |= local_choice
            contributions[cluster_id] = len(local_choice)

    verify_independent_set(graph, selected)
    locality = decomposition.max_weak_diameter(graph) + 1 if n else 0
    return ClusterwiseMaxISResult(
        independent_set=selected,
        decomposition=decomposition,
        cluster_contributions=contributions,
        locality=locality,
    )


def is_maximal(graph: Graph, result: ClusterwiseMaxISResult) -> bool:
    """Return ``True`` if the produced set is inclusion-maximal (it always should be)."""
    from repro.graphs.independent_sets import is_maximal_independent_set

    return is_maximal_independent_set(graph, result.independent_set)
