"""The Lemma 2.1 correspondence between colorings of ``H`` and independent sets of ``G_k``.

Direction (a): a conflict-free ``k``-coloring ``f`` of ``H`` induces an
independent set ``I_f`` of the conflict graph with exactly one triple per
hyperedge, hence ``|I_f| = m``; no independent set can be larger because
the ``E_edge`` relation makes each edge's triples a clique.

Direction (b): any independent set ``I`` of ``G_k`` induces a well-defined
partial coloring ``f_I`` (``E_vertex`` forbids two colors at one vertex)
under which at least ``|I|`` hyperedges are happy.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.coloring.conflict_free import UNCOLORED, unique_color_vertices
from repro.core.conflict_graph import ConflictGraph, ConflictVertex
from repro.exceptions import ColoringError, IndependenceError, ReductionError
from repro.graphs.independent_sets import verify_independent_set
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
Color = int


def coloring_to_independent_set(
    conflict_graph: ConflictGraph,
    coloring: Dict[Vertex, Color],
    require_conflict_free: bool = True,
) -> Set[ConflictVertex]:
    """Build the independent set ``I_f`` of Lemma 2.1(a) from a coloring ``f``.

    For every hyperedge ``e`` that is happy under ``coloring`` the set
    receives one triple ``(e, v, f(v))`` where ``v`` is a vertex whose color
    is unique within ``e`` (ties broken deterministically by ``repr``).

    Parameters
    ----------
    conflict_graph:
        The conflict graph ``G_k`` of the hypergraph.
    coloring:
        A (partial) coloring of the hypergraph with colors in ``1..k``.
    require_conflict_free:
        When ``True`` (the default, matching the lemma statement) every
        hyperedge must be happy and the resulting set has size exactly
        ``m``; when ``False`` unhappy edges simply contribute nothing.

    Raises
    ------
    ColoringError
        If a used color lies outside ``1..k``, or ``require_conflict_free``
        is set and some edge is unhappy.
    """
    hypergraph = conflict_graph.hypergraph
    k = conflict_graph.k
    for v, c in coloring.items():
        if c is UNCOLORED:
            continue
        if not isinstance(c, int) or not 1 <= c <= k:
            raise ColoringError(
                f"vertex {v!r} has color {c!r}, outside the palette 1..{k}"
            )

    independent_set: Set[ConflictVertex] = set()
    for e in hypergraph.edge_ids:
        unique = unique_color_vertices(hypergraph, coloring, e)
        if not unique:
            if require_conflict_free:
                raise ColoringError(
                    f"edge {e!r} is not happy; the coloring is not conflict-free"
                )
            continue
        v = min(unique, key=repr)
        independent_set.add(ConflictVertex(edge=e, vertex=v, color=coloring[v]))

    # The lemma asserts independence; verifying it here turns any bug in the
    # construction (or in the conflict-graph definition) into a loud failure.
    verify_independent_set(conflict_graph.verification_graph(), independent_set)
    return independent_set


def independent_set_to_coloring(
    conflict_graph: ConflictGraph,
    independent_set: Iterable[ConflictVertex],
) -> Dict[Vertex, Color]:
    """Build the partial coloring ``f_I`` of Lemma 2.1(b) from an independent set.

    ``f_I(v) = c`` if some triple ``(·, v, c)`` belongs to the independent
    set and ``⊥`` (absent from the returned dict) otherwise.

    Raises
    ------
    IndependenceError
        If the input is not an independent set of the conflict graph.
    ReductionError
        If the coloring would be ill-defined (two triples with the same
        vertex but different colors) — by the ``E_vertex`` relation this can
        only happen when the input was not independent, so this error
        indicates an inconsistent conflict graph.
    """
    triples = set(independent_set)
    for t in triples:
        if not isinstance(t, ConflictVertex):
            raise ReductionError(f"{t!r} is not a ConflictVertex triple")
    verify_independent_set(conflict_graph.verification_graph(), triples)

    coloring: Dict[Vertex, Color] = {}
    for t in sorted(triples, key=repr):
        existing = coloring.get(t.vertex)
        if existing is not None and existing != t.color:
            raise ReductionError(
                f"independent set assigns two colors ({existing}, {t.color}) to "
                f"vertex {t.vertex!r}; E_vertex should have prevented this"
            )
        coloring[t.vertex] = t.color
    return coloring


def happy_edges_of_independent_set(
    conflict_graph: ConflictGraph,
    independent_set: Iterable[ConflictVertex],
) -> Set:
    """Return the hyperedges made happy by ``f_I`` — Lemma 2.1(b) guarantees ≥ ``|I|``.

    The proof of the lemma shows a stronger, constructive fact: for every
    triple ``(e, v, c)`` in the independent set the edge ``e`` itself is
    happy.  This function returns the happy-edge set of the induced
    coloring, which therefore always contains ``{t.edge for t in I}``.
    """
    from repro.coloring.conflict_free import happy_edges as cf_happy_edges

    coloring = independent_set_to_coloring(conflict_graph, independent_set)
    return cf_happy_edges(conflict_graph.hypergraph, coloring)


def verify_lemma_21a(
    conflict_graph: ConflictGraph, coloring: Dict[Vertex, Color]
) -> Set[ConflictVertex]:
    """Check Lemma 2.1(a) on a concrete instance and return the witness ``I_f``.

    Asserts that ``I_f`` is independent (checked during construction) and
    has size exactly ``m = |E(H)|``.
    """
    witness = coloring_to_independent_set(conflict_graph, coloring, require_conflict_free=True)
    m = conflict_graph.hypergraph.num_edges()
    if len(witness) != m:
        raise ReductionError(
            f"Lemma 2.1(a) violated: |I_f| = {len(witness)} but m = {m}"
        )
    return witness


def verify_lemma_21b(
    conflict_graph: ConflictGraph, independent_set: Iterable[ConflictVertex]
) -> Set:
    """Check Lemma 2.1(b) on a concrete instance and return the happy-edge set.

    Asserts that the induced coloring is well defined and that the number of
    happy edges is at least ``|I|``.
    """
    triples = set(independent_set)
    happy = happy_edges_of_independent_set(conflict_graph, triples)
    if len(happy) < len(triples):
        raise ReductionError(
            f"Lemma 2.1(b) violated: |I| = {len(triples)} but only "
            f"{len(happy)} edges are happy"
        )
    missing = {t.edge for t in triples} - happy
    if missing:
        raise ReductionError(
            f"Lemma 2.1(b) witness property violated: edges {sorted(missing, key=repr)!r} "
            "selected by the independent set are not happy"
        )
    return happy


def maximum_independent_set_size_bound(conflict_graph: ConflictGraph) -> int:
    """Return the upper bound ``α(G_k) ≤ m`` from the proof of Lemma 2.1(a).

    The ``E_edge`` relation turns the triples of each hyperedge into a
    clique, so an independent set contains at most one triple per edge.
    """
    return conflict_graph.hypergraph.num_edges()
