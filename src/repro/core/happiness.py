"""Incidence-driven happy-edge tracking for the reduction's phase loop.

The rebuild path of the Theorem 1.1 reduction re-scans every surviving
hyperedge per phase to find the happy ones, although only edges incident
to a vertex recolored in that phase can possibly become happy (a phase
coloring draws from a phase-private palette, so an edge without recolored
members has no colored member at all under it).  :class:`HappinessTracker`
makes that observation operational: it maintains its own vertex →
incident-edge index plus a per-edge happiness state across the phases, so
committing an independent set ``I_i`` costs ``O(Σ_{v ∈ I_i} deg(v))`` —
proportional to the phase's own work — instead of ``O(Σ_e |e|)``.

The tracker mirrors the lifecycle of the incremental
:class:`~repro.core.conflict_graph.ConflictGraph`: built once per run,
then maintained through :meth:`remove_edges` in time proportional to the
deleted part.  ``run_rebuild`` keeps computing happiness from scratch
(:func:`repro.coloring.conflict_free.happy_edges`), which is the equality
oracle the differential tests in ``tests/fuzz`` assert against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set

from repro.coloring.conflict_free import happy_from_incidence
from repro.exceptions import ReductionError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
EdgeId = Hashable
Color = Hashable


class HappinessTracker:
    """Per-edge happiness state driven by a maintained incidence index.

    Parameters
    ----------
    hypergraph:
        The working hypergraph at the start of the run.  The tracker takes
        a structural snapshot (member sets and the vertex → incident-edge
        index) and from then on is independent of it: callers that remove
        edges from the hypergraph mirror the removal through
        :meth:`remove_edges`, exactly like
        :meth:`~repro.core.conflict_graph.ConflictGraph.remove_hyperedges`.

    Attributes
    ----------
    happy:
        The edges marked happy by the last :meth:`commit` calls and not
        yet removed — the per-edge happiness state.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._members: Dict[EdgeId, FrozenSet[Vertex]] = {
            e: members for e, members in hypergraph.edges()
        }
        self._incident: Dict[Vertex, Set[EdgeId]] = {}
        for e, members in self._members.items():
            for v in members:
                self._incident.setdefault(v, set()).add(e)
        self._happy: Set[EdgeId] = set()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def happy(self) -> Set[EdgeId]:
        """The currently marked happy edges (a copy)."""
        return set(self._happy)

    def num_edges(self) -> int:
        """Number of edges the tracker still maintains."""
        return len(self._members)

    def edges_containing(self, v: Vertex) -> Set[EdgeId]:
        """The maintained incident-edge index entry for ``v`` (a copy)."""
        return set(self._incident.get(v, ()))

    # ------------------------------------------------------------------
    # phase protocol
    # ------------------------------------------------------------------
    def commit(self, coloring: Dict[Vertex, Color]) -> Set[EdgeId]:
        """Re-check only the edges incident to the vertices of ``coloring``.

        Returns the edges that are happy under ``coloring`` (treated as a
        phase-private partial coloring: an edge is happy iff some color
        appears on exactly one of its members) and records them in
        :attr:`happy`.  Cost is ``O(Σ_{v colored} deg(v))``; edges not
        incident to a colored vertex are never visited — they cannot be
        happy under a coloring that does not touch them.
        """
        incident = self._incident
        newly = happy_from_incidence(coloring, lambda v: incident.get(v, ()))
        self._happy |= newly
        return newly

    def remove_edges(self, edge_ids: Iterable[EdgeId]) -> None:
        """Forget the given edges, in time proportional to the deleted part.

        Duplicate ids in the batch are deduplicated (mirroring the
        ``ConflictGraph.remove_hyperedges`` contract), unknown ids raise
        :class:`ReductionError` before any state is modified, and removed
        edges leave both the incidence index and the happiness state.
        """
        ids = list(dict.fromkeys(edge_ids))
        unknown = [e for e in ids if e not in self._members]
        if unknown:
            raise ReductionError(
                f"edges not tracked: {sorted(unknown, key=repr)!r}"
            )
        for e in ids:
            for v in self._members.pop(e):
                bucket = self._incident[v]
                bucket.discard(e)
                if not bucket:
                    del self._incident[v]
            self._happy.discard(e)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HappinessTracker(edges={len(self._members)}, "
            f"happy={len(self._happy)})"
        )
