"""The phase-based reduction of Theorem 1.1.

The reduction solves conflict-free multicoloring of a hypergraph ``H``
using any λ-approximation algorithm for the maximum independent set
problem:

1. Set ``ρ = λ·ln(m) + 1`` and ``H_1 = H``.
2. In phase ``i`` build the conflict graph ``G^i_k`` of ``H_i``, compute a
   λ-approximate maximum independent set ``I_i`` of it, and let every
   hypergraph vertex ``v`` with some ``(·, v, c) ∈ I_i`` color itself with
   the phase-private color ``(i, c)``.
3. Remove the edges that became happy; stop when no edge remains.

If ``H`` admits a conflict-free ``k``-coloring (the premise of
Theorem 1.2's hard instances) then Lemma 2.1(a) guarantees
``α(G^i_k) = |E_i|`` in every phase, so the λ-approximation removes at
least a ``1/λ`` fraction of the edges per phase and the reduction stops
within ``ρ`` phases, using at most ``k·ρ`` colors in total.

Even without that premise the reduction still terminates: the oracle is
required to return a non-empty independent set on a non-empty conflict
graph, each selected triple makes its edge happy (Lemma 2.1(b)), so every
phase removes at least one edge.

Incremental phase engine
------------------------
Since a phase only ever *removes* happy edges — and removing hyperedges
never makes two surviving conflict triples adjacent — the pipeline is
phase-incremental: :meth:`ConflictFreeMulticoloringViaMaxIS.run` builds
the conflict graph once, freezes it once (in the oracle's ``repr`` order),
and per phase hands the oracle an alive-mask subgraph view, then deletes
the happy edges in place from both the hypergraph and the conflict graph.
Total work is proportional to what is deleted, not phases × full rebuild.
The from-scratch path is retained as
:meth:`ConflictFreeMulticoloringViaMaxIS.run_rebuild`; it produces
bit-for-bit identical results and serves as the test oracle and the
benchmark baseline (``repro bench reduction``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro import obs
from repro.coloring.conflict_free import happy_edges as single_happy_edges
from repro.coloring.multicoloring import Multicoloring
from repro.core.bounds import color_budget, expected_remaining_edges, phase_budget
from repro.core.conflict_graph import ConflictGraph, ConflictVertex
from repro.core.correspondence import independent_set_to_coloring
from repro.core.happiness import HappinessTracker
from repro.exceptions import ReductionError
from repro.graphs.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.operations import remove_happy_edges
from repro.maxis.approximators import MaxISApproximator

Vertex = Hashable
PhaseColor = Tuple[int, int]
Oracle = Callable[[Graph], Set[ConflictVertex]]

# Engine metrics: process-wide totals across every reduction this process
# runs (campaign workers, bench repeats, direct library use).  Cheap
# relative to a phase — one observe/inc/set per phase — and purely
# observational: nothing here feeds back into the reduction.
_M_PHASES = obs.counter(
    "repro_reduction_phases_total", "Reduction phases executed by this process."
)
_M_PHASE_DURATION = obs.histogram(
    "repro_phase_duration_seconds",
    "Wall-clock duration of reduction phases (oracle solve + happy removal).",
)
_M_ALIVE_VERTICES = obs.gauge(
    "repro_reduction_alive_vertices",
    "Conflict-graph vertices still alive after the most recent phase.",
)
_M_HAPPY_CHECKS = obs.counter(
    "repro_happy_checks_total", "Happy-edge computations performed (one per phase)."
)
_M_HAPPY_CHECK_SECONDS = obs.counter(
    "repro_happy_check_seconds_total",
    "Wall seconds spent computing per-phase happy-edge sets.",
)


@dataclass
class PhaseRecord:
    """Everything measured about one phase of the reduction.

    Attributes
    ----------
    phase:
        1-based phase index.
    edges_before / edges_after:
        ``|E_i|`` and ``|E_{i+1}|``.
    independent_set_size:
        ``|I_i|`` returned by the oracle.
    happy_edges:
        The hyperedges removed in this phase.
    conflict_graph_vertices / conflict_graph_edges:
        Size of ``G^i_k``.
    guaranteed_edges_after:
        The bound ``(1 - 1/λ)·|E_i|`` the analysis promises (only
        meaningful when the premise of the analysis holds).
    """

    phase: int
    edges_before: int
    edges_after: int
    independent_set_size: int
    happy_edges: Set = field(default_factory=set)
    conflict_graph_vertices: int = 0
    conflict_graph_edges: int = 0
    guaranteed_edges_after: float = 0.0

    @property
    def removed(self) -> int:
        """Number of edges removed in this phase."""
        return self.edges_before - self.edges_after

    @property
    def removal_fraction(self) -> float:
        """Fraction of surviving edges removed in this phase."""
        if self.edges_before == 0:
            return 0.0
        return self.removed / self.edges_before


@dataclass
class ReductionResult:
    """The outcome of a full run of the reduction.

    Attributes
    ----------
    multicoloring:
        The conflict-free multicoloring of the input hypergraph.  Colors
        are pairs ``(phase, palette_color)``, which realizes the paper's
        "distinct palette of size k for each phase".
    phases:
        One :class:`PhaseRecord` per executed phase.
    k:
        The per-phase palette size.
    lam:
        The approximation factor assumed for the analysis.
    phase_bound:
        ``ρ = λ·ln(m) + 1`` computed for the original edge count.
    color_bound:
        ``k·ρ``.
    """

    multicoloring: Multicoloring
    phases: List[PhaseRecord]
    k: int
    lam: float
    phase_bound: int
    color_bound: int

    @property
    def num_phases(self) -> int:
        """Number of phases that were actually executed."""
        return len(self.phases)

    @property
    def total_colors(self) -> int:
        """Number of distinct colors used by the produced multicoloring."""
        return self.multicoloring.num_colors()

    def within_phase_bound(self) -> bool:
        """Whether the run finished within the theoretical phase budget ρ."""
        return self.num_phases <= self.phase_bound

    def within_color_bound(self) -> bool:
        """Whether the run used at most ``k·ρ`` colors."""
        return self.total_colors <= self.color_bound

    def remaining_edges_series(self) -> List[int]:
        """Return ``[|E_1|, |E_2|, …]`` including the final (zero or residual) count."""
        if not self.phases:
            return []
        series = [self.phases[0].edges_before]
        series.extend(p.edges_after for p in self.phases)
        return series


def _default_oracle(approximator) -> Oracle:
    """Wrap a :class:`repro.maxis.MaxISApproximator`-style callable into an oracle."""

    def oracle(graph: Graph) -> Set[ConflictVertex]:
        return set(approximator(graph))

    return oracle


class ConflictFreeMulticoloringViaMaxIS:
    """The reduction of Theorem 1.1, packaged as a reusable object.

    Parameters
    ----------
    k:
        Per-phase palette size (the ``k`` of the conflict-free coloring the
        hard instances admit).
    approximator:
        Any callable mapping a :class:`repro.graphs.Graph` to an independent
        set of it.  :class:`repro.maxis.MaxISApproximator` instances and the
        outputs of :func:`repro.maxis.get_approximator` work directly.
    lam:
        The approximation factor λ assumed when computing the phase budget
        ``ρ``.  If the oracle actually achieves a better factor the
        reduction simply finishes earlier.
    max_phases:
        Hard safety cap on the number of phases (defaults to
        ``max(ρ, m)``, which always suffices because every phase removes at
        least one edge).
    strict:
        When ``True``, exceeding the theoretical phase budget ``ρ`` raises
        :class:`ReductionError` instead of silently continuing.  Use this
        when the premise (the hypergraph admits a CF ``k``-coloring and the
        oracle honours λ) is supposed to hold and a violation indicates a
        bug.
    """

    def __init__(
        self,
        k: int,
        approximator,
        lam: float,
        max_phases: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        if k <= 0:
            raise ReductionError(f"palette size k must be positive, got {k}")
        if lam < 1:
            raise ReductionError(f"approximation factor must be ≥ 1, got {lam}")
        self.k = k
        self.lam = lam
        self.oracle = _default_oracle(approximator)
        self.max_phases = max_phases
        self.strict = strict
        # MaxISApproximator instances that opt in via accepts_frozen (every
        # built-in does) can consume a frozen IndexedGraph, which lets the
        # incremental engine freeze once per run and pass alive-mask views.
        # Plain callables and Graph-only approximators keep receiving the
        # mutable Graph.
        self._oracle_accepts_frozen = (
            isinstance(approximator, MaxISApproximator) and approximator.accepts_frozen
        )
        #: Wall seconds the most recent run/run_rebuild spent computing the
        #: per-phase happy-edge sets (the ``happy_check_wall_time_s`` key of
        #: ``repro bench reduction``).
        self.last_happy_check_wall_time_s: float = 0.0

    # ------------------------------------------------------------------
    def run(self, hypergraph: Hypergraph) -> ReductionResult:
        """Execute the reduction on ``hypergraph`` and return a :class:`ReductionResult`.

        This is the incremental phase engine: the conflict graph of the
        input is built (and frozen for the oracle) exactly once; each
        phase solves on an alive-mask subgraph view and then removes the
        happy edges *in place* from both the working hypergraph and the
        maintained conflict graph, so the per-phase cost is the oracle
        solve plus work proportional to the deleted part.  The result is
        bit-for-bit identical to :meth:`run_rebuild`.
        """
        return self._execute(hypergraph, rebuild=False)

    def run_rebuild(self, hypergraph: Hypergraph) -> ReductionResult:
        """Execute the reduction rebuilding ``H_i`` and ``G^i_k`` from scratch each phase.

        This is the pre-incremental reference path: every phase restricts a
        fresh hypergraph copy and constructs a new :class:`ConflictGraph`.
        It is retained as the oracle for equality tests and as the baseline
        the ``repro bench reduction`` benchmark measures the incremental
        engine against; its output is identical to :meth:`run`.
        """
        return self._execute(hypergraph, rebuild=True)

    # ------------------------------------------------------------------
    def _execute(self, hypergraph: Hypergraph, rebuild: bool) -> ReductionResult:
        """Shared phase loop; ``rebuild`` selects how ``G^i_k`` is derived.

        Incremental mode keeps one :class:`ConflictGraph` and removes the
        happy edges in place; rebuild mode reconstructs hypergraph and
        conflict graph every phase (the seed behavior).  Everything else —
        budgets, caps, strictness, record keeping — is identical by
        construction.
        """
        m = hypergraph.num_edges()
        rho = phase_budget(self.lam, m)
        budget = color_budget(self.k, self.lam, m)
        cap = self.max_phases if self.max_phases is not None else max(rho, m, 1)

        multicoloring = Multicoloring()
        phases: List[PhaseRecord] = []
        current = hypergraph.copy()
        conflict_graph: Optional[ConflictGraph] = None
        tracker: Optional[HappinessTracker] = None
        self.last_happy_check_wall_time_s = 0.0

        phase = 0
        while current.num_edges() > 0:
            phase += 1
            if phase > cap:
                raise ReductionError(
                    f"reduction did not finish within {cap} phases; "
                    f"{current.num_edges()} edges remain unhappy"
                )
            if self.strict and phase > rho:
                raise ReductionError(
                    f"strict mode: phase {phase} exceeds the theoretical budget ρ = {rho}"
                )
            phase_start = time.perf_counter()
            with obs.span("phase", phase=phase, edges=current.num_edges()):
                if rebuild or conflict_graph is None:
                    conflict_graph = ConflictGraph(current, self.k)
                    if not rebuild:
                        tracker = HappinessTracker(current)
                record = self._run_phase(
                    current, conflict_graph, phase, multicoloring, rebuild=rebuild,
                    tracker=tracker,
                )
                phases.append(record)
                if rebuild:
                    current = current.restrict_to_edges(
                        [e for e in current.edge_ids if e not in record.happy_edges]
                    )
                else:
                    current.remove_edges(record.happy_edges)
                    conflict_graph.remove_hyperedges(record.happy_edges)
                    tracker.remove_edges(record.happy_edges)
            _M_PHASES.inc()
            _M_PHASE_DURATION.observe(time.perf_counter() - phase_start)
            _M_ALIVE_VERTICES.set(conflict_graph.num_vertices())

        # Edgeless input: no phase runs and the empty multicoloring is
        # vacuously conflict-free (remaining_edges_series() is then empty).
        return ReductionResult(
            multicoloring=multicoloring,
            phases=phases,
            k=self.k,
            lam=self.lam,
            phase_bound=rho,
            color_bound=budget,
        )

    # ------------------------------------------------------------------
    def _run_phase(
        self,
        current: Hypergraph,
        conflict_graph: ConflictGraph,
        phase: int,
        multicoloring: Multicoloring,
        rebuild: bool = False,
        tracker: Optional[HappinessTracker] = None,
    ) -> PhaseRecord:
        """Run one phase on the surviving hypergraph and merge its colors.

        ``conflict_graph`` must be the conflict graph of ``current`` —
        freshly built in the rebuild path, incrementally maintained in the
        engine (together with ``tracker``, its happy-state twin).  The
        rebuild path hands the oracle the mutable graph (the seed
        behavior) and computes happiness from scratch — the equality
        oracle for the tracker's incidence-driven check; the engine hands
        registered approximators the ``repr``-sorted frozen view, which
        yields the same independent set.
        """
        if rebuild or not self._oracle_accepts_frozen:
            oracle_input = conflict_graph.graph
        else:
            oracle_input = conflict_graph.frozen_sorted()
        independent_set = self.oracle(oracle_input)
        if current.num_edges() > 0 and not independent_set:
            raise ReductionError(
                f"the MaxIS oracle returned an empty set in phase {phase} although "
                f"{current.num_edges()} edges remain; the reduction cannot progress"
            )

        # f_{I_i}: the phase's partial single-coloring over palette 1..k.
        phase_coloring = independent_set_to_coloring(conflict_graph, independent_set)
        happy_start = time.perf_counter()
        if tracker is None:
            happy = single_happy_edges(current, phase_coloring)
        else:
            happy = tracker.commit(phase_coloring)
        happy_elapsed = time.perf_counter() - happy_start
        self.last_happy_check_wall_time_s += happy_elapsed
        _M_HAPPY_CHECKS.inc()
        _M_HAPPY_CHECK_SECONDS.inc(happy_elapsed)
        if independent_set and len(happy) < len(independent_set):
            raise ReductionError(
                f"phase {phase}: only {len(happy)} happy edges for an independent "
                f"set of size {len(independent_set)}; Lemma 2.1(b) is violated"
            )

        # Commit the phase colors under the phase-private palette (i, c).
        for v, c in phase_coloring.items():
            multicoloring.add_color(v, (phase, c))

        edges_before = current.num_edges()
        edges_after = edges_before - len(happy)
        return PhaseRecord(
            phase=phase,
            edges_before=edges_before,
            edges_after=edges_after,
            independent_set_size=len(independent_set),
            happy_edges=set(happy),
            conflict_graph_vertices=conflict_graph.num_vertices(),
            conflict_graph_edges=conflict_graph.num_edges(),
            guaranteed_edges_after=expected_remaining_edges(edges_before, self.lam, 1),
        )


def solve_conflict_free_multicoloring(
    hypergraph: Hypergraph,
    k: int,
    approximator,
    lam: float,
    strict: bool = False,
) -> ReductionResult:
    """One-call convenience wrapper around :class:`ConflictFreeMulticoloringViaMaxIS`."""
    reduction = ConflictFreeMulticoloringViaMaxIS(
        k=k, approximator=approximator, lam=lam, strict=strict
    )
    return reduction.run(hypergraph)
