"""Covering problems from the P-SLOCAL completeness landscape: dominating set, set cover."""

from repro.covering.dominating_set import (
    closed_neighborhood,
    domination_number,
    exact_minimum_dominating_set,
    greedy_dominating_set,
    is_dominating_set,
    slocal_dominating_set,
    verify_dominating_set,
)
from repro.covering.set_cover import (
    SetCoverInstance,
    dominating_set_as_set_cover,
    exact_minimum_set_cover,
    greedy_set_cover,
    harmonic_number,
    hypergraph_vertex_cover_as_set_cover,
    is_set_cover,
    logarithmic_reference,
    set_cover_optimum,
    verify_set_cover,
)

__all__ = [
    "closed_neighborhood",
    "domination_number",
    "exact_minimum_dominating_set",
    "greedy_dominating_set",
    "is_dominating_set",
    "slocal_dominating_set",
    "verify_dominating_set",
    "SetCoverInstance",
    "dominating_set_as_set_cover",
    "exact_minimum_set_cover",
    "greedy_set_cover",
    "harmonic_number",
    "hypergraph_vertex_cover_as_set_cover",
    "is_set_cover",
    "logarithmic_reference",
    "set_cover_optimum",
    "verify_set_cover",
]
