"""Dominating sets: verification, greedy approximation, and an SLOCAL algorithm.

O(log Δ)-approximate minimum dominating set is one of the problems [GHK18]
proved P-SLOCAL-complete, and the paper lists it alongside conflict-free
multicoloring in the completeness landscape its result joins.  This module
provides the centralized machinery (verifier, greedy ln(Δ)+1
approximation, exact solver for ground truth) and the locality-1 SLOCAL
algorithm, mirroring how the MIS problem is treated elsewhere in the
library.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Set

from repro.exceptions import GraphError, VerificationError
from repro.graphs.graph import Graph

Vertex = Hashable


def closed_neighborhood(graph: Graph, vertex: Vertex) -> Set[Vertex]:
    """Return ``N[v] = N(v) ∪ {v}``."""
    return graph.neighbors(vertex) | {vertex}


def verify_dominating_set(graph: Graph, candidate: Iterable[Vertex]) -> None:
    """Raise :class:`VerificationError` unless ``candidate`` dominates every vertex.

    A set ``D`` dominates the graph if every vertex is in ``D`` or has a
    neighbor in ``D``.  Membership of every candidate vertex in the graph is
    also checked.
    """
    dominators = set(candidate)
    for v in dominators:
        if v not in graph:
            raise VerificationError(f"dominator {v!r} is not a vertex of the graph")
    for v in graph.vertices:
        if v not in dominators and not (graph.neighbors(v) & dominators):
            raise VerificationError(f"vertex {v!r} is not dominated")


def is_dominating_set(graph: Graph, candidate: Iterable[Vertex]) -> bool:
    """Boolean wrapper around :func:`verify_dominating_set`."""
    try:
        verify_dominating_set(graph, candidate)
    except VerificationError:
        return False
    return True


def greedy_dominating_set(graph: Graph) -> Set[Vertex]:
    """Greedy minimum-dominating-set approximation (factor ``ln Δ + 2``).

    Repeatedly adds the vertex whose closed neighborhood covers the most
    still-undominated vertices — the classical set-cover greedy specialised
    to domination.
    """
    undominated = graph.vertices
    chosen: Set[Vertex] = set()
    while undominated:
        best = max(
            graph.vertices,
            key=lambda v: (len(closed_neighborhood(graph, v) & undominated), repr(v)),
        )
        gain = closed_neighborhood(graph, best) & undominated
        if not gain:
            # Isolated undominated vertices must dominate themselves.
            best = next(iter(undominated))
            gain = {best}
        chosen.add(best)
        undominated = undominated - closed_neighborhood(graph, best)
    verify_dominating_set(graph, chosen)
    return chosen


def exact_minimum_dominating_set(graph: Graph, size_limit: int = 24) -> Set[Vertex]:
    """Exact minimum dominating set by branch and bound (small instances only).

    Parameters
    ----------
    size_limit:
        Refuse graphs with more vertices than this; the search is
        exponential and exists purely as ground truth for tests/benches.
    """
    n = graph.num_vertices()
    if n > size_limit:
        raise GraphError(
            f"exact dominating set refused an instance with {n} vertices (limit {size_limit})"
        )
    if n == 0:
        return set()

    vertices = sorted(graph.vertices, key=repr)
    best: Set[Vertex] = set(vertices)  # the whole vertex set always dominates

    def search(chosen: Set[Vertex], undominated: FrozenSet[Vertex]) -> None:
        nonlocal best
        if len(chosen) >= len(best):
            return
        if not undominated:
            best = set(chosen)
            return
        # Branch on covering one fixed undominated vertex: some vertex of its
        # closed neighborhood must be chosen.
        target = min(undominated, key=repr)
        for candidate in sorted(closed_neighborhood(graph, target), key=repr):
            search(
                chosen | {candidate},
                undominated - frozenset(closed_neighborhood(graph, candidate)),
            )

    search(set(), frozenset(vertices))
    verify_dominating_set(graph, best)
    return best


def domination_number(graph: Graph, size_limit: int = 24) -> int:
    """Return ``γ(G)``, the size of a minimum dominating set."""
    return len(exact_minimum_dominating_set(graph, size_limit=size_limit))


def slocal_dominating_set(graph: Graph, order: Optional[Sequence[Vertex]] = None) -> Set[Vertex]:
    """Locality-1 SLOCAL dominating set.

    A node joins the dominating set iff, at its processing time, neither it
    nor any already-processed neighbor that joined dominates it.  Every
    vertex is dominated from its own processing step onwards, so the output
    is a dominating set for every processing order — the SLOCAL analogue of
    the MIS example in the paper's introduction (here without any
    approximation guarantee; the greedy above provides the ln Δ factor).
    """
    from repro.slocal.engine import SLOCALAlgorithm, SLOCALEngine

    class _Rule(SLOCALAlgorithm):
        locality = 1
        name = "slocal-dominating-set"

        def process(self, view, state):
            for u in view.neighbors(view.center):
                if view.is_processed(u) and view.output_of(u) is True:
                    return False
            return True

    result = SLOCALEngine(graph).run(_Rule(), order=order)
    chosen = {v for v, joined in result.outputs.items() if joined}
    verify_dominating_set(graph, chosen)
    return chosen
