"""Distributed set cover: instance model, verification, greedy approximation.

Set cover is the second covering problem [GHK18] placed in the P-SLOCAL
completeness landscape the paper's result joins.  The instance model here
is deliberately simple (a universe plus identified subsets); it doubles as
a bridge between the library's graph and hypergraph substrates —
domination is set cover with closed neighborhoods, and hypergraph vertex
cover is set cover by incidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set

from repro.exceptions import VerificationError
from repro.graphs.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph

Element = Hashable
SetId = Hashable


@dataclass
class SetCoverInstance:
    """A set-cover instance: a universe and a family of identified subsets.

    Attributes
    ----------
    universe:
        The elements that must be covered.
    sets:
        Mapping from set id to the subset of the universe it covers.
    """

    universe: Set[Element] = field(default_factory=set)
    sets: Dict[SetId, FrozenSet[Element]] = field(default_factory=dict)

    def add_set(self, set_id: SetId, elements: Iterable[Element]) -> None:
        """Register (or extend the universe with) a named subset."""
        members = frozenset(elements)
        if set_id in self.sets:
            raise VerificationError(f"set id {set_id!r} already in use")
        self.sets[set_id] = members
        self.universe |= members

    def coverable(self) -> bool:
        """Whether the union of all sets covers the whole universe."""
        covered: Set[Element] = set()
        for members in self.sets.values():
            covered |= members
        return self.universe <= covered

    def max_set_size(self) -> int:
        """Return the largest set size (0 for empty families)."""
        return max((len(s) for s in self.sets.values()), default=0)

    def greedy_guarantee(self) -> float:
        """The classical harmonic approximation factor ``H(max set size)``."""
        d = self.max_set_size()
        return sum(1.0 / i for i in range(1, d + 1)) if d else 1.0


def verify_set_cover(instance: SetCoverInstance, chosen: Iterable[SetId]) -> None:
    """Raise :class:`VerificationError` unless ``chosen`` covers the universe."""
    chosen_ids = list(chosen)
    covered: Set[Element] = set()
    for set_id in chosen_ids:
        if set_id not in instance.sets:
            raise VerificationError(f"unknown set id {set_id!r}")
        covered |= instance.sets[set_id]
    missing = instance.universe - covered
    if missing:
        raise VerificationError(
            f"{len(missing)} elements uncovered, e.g. {next(iter(missing))!r}"
        )


def is_set_cover(instance: SetCoverInstance, chosen: Iterable[SetId]) -> bool:
    """Boolean wrapper around :func:`verify_set_cover`."""
    try:
        verify_set_cover(instance, chosen)
    except VerificationError:
        return False
    return True


def greedy_set_cover(instance: SetCoverInstance) -> List[SetId]:
    """Greedy set cover: pick the set covering the most uncovered elements.

    Achieves the ``H(d)`` approximation factor where ``d`` is the largest
    set size.  Raises :class:`VerificationError` if the instance is not
    coverable at all.
    """
    if not instance.coverable():
        raise VerificationError("the union of all sets does not cover the universe")
    uncovered = set(instance.universe)
    chosen: List[SetId] = []
    while uncovered:
        best = max(
            instance.sets,
            key=lambda sid: (len(instance.sets[sid] & uncovered), repr(sid)),
        )
        gain = instance.sets[best] & uncovered
        if not gain:
            raise VerificationError("no set makes progress although elements remain uncovered")
        chosen.append(best)
        uncovered -= gain
    verify_set_cover(instance, chosen)
    return chosen


def exact_minimum_set_cover(instance: SetCoverInstance, limit: int = 20) -> List[SetId]:
    """Exact minimum set cover by branch and bound (ground truth for tests).

    Parameters
    ----------
    limit:
        Refuse instances with more than this many sets.
    """
    if len(instance.sets) > limit:
        raise VerificationError(
            f"exact set cover refused an instance with {len(instance.sets)} sets (limit {limit})"
        )
    if not instance.coverable():
        raise VerificationError("the union of all sets does not cover the universe")

    set_ids = sorted(instance.sets, key=repr)
    best: List[SetId] = list(set_ids)

    def search(chosen: List[SetId], uncovered: FrozenSet[Element]) -> None:
        nonlocal best
        if len(chosen) >= len(best):
            return
        if not uncovered:
            best = list(chosen)
            return
        target = min(uncovered, key=repr)
        for set_id in set_ids:
            if target in instance.sets[set_id]:
                search(chosen + [set_id], uncovered - instance.sets[set_id])

    search([], frozenset(instance.universe))
    verify_set_cover(instance, best)
    return best


def set_cover_optimum(instance: SetCoverInstance, limit: int = 20) -> int:
    """Return the optimum cover size."""
    return len(exact_minimum_set_cover(instance, limit=limit))


# ----------------------------------------------------------------------
# Bridges to the other substrates
# ----------------------------------------------------------------------
def dominating_set_as_set_cover(graph: Graph) -> SetCoverInstance:
    """Encode minimum dominating set as set cover (sets = closed neighborhoods)."""
    instance = SetCoverInstance(universe=set(graph.vertices))
    for v in sorted(graph.vertices, key=repr):
        instance.add_set(v, graph.neighbors(v) | {v})
    return instance


def hypergraph_vertex_cover_as_set_cover(hypergraph: Hypergraph) -> SetCoverInstance:
    """Encode hypergraph vertex cover as set cover (sets = incidences of each vertex)."""
    instance = SetCoverInstance(universe=set(hypergraph.edge_ids))
    for v in sorted(hypergraph.vertices, key=repr):
        incident = hypergraph.edges_containing(v)
        if incident:
            instance.add_set(v, incident)
    return instance


def harmonic_number(d: int) -> float:
    """Return ``H(d) = 1 + 1/2 + … + 1/d`` (0 for ``d ≤ 0``)."""
    if d <= 0:
        return 0.0
    return sum(1.0 / i for i in range(1, d + 1))


def logarithmic_reference(d: int) -> float:
    """Return ``ln(d) + 1``, the textbook form of the greedy guarantee."""
    if d <= 0:
        return 1.0
    return math.log(d) + 1.0
