"""Network-decomposition substrate: clusters, ball carving, verification."""

from repro.decomposition.clusters import Clustering, cluster_graph, weak_diameter
from repro.decomposition.network_decomposition import (
    NetworkDecomposition,
    ball_carving_decomposition,
    decomposition_quality,
    polylog_decomposition,
    verify_network_decomposition,
)

__all__ = [
    "Clustering",
    "cluster_graph",
    "weak_diameter",
    "NetworkDecomposition",
    "ball_carving_decomposition",
    "decomposition_quality",
    "polylog_decomposition",
    "verify_network_decomposition",
]
