"""Cluster data structures shared by the network-decomposition substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from repro.exceptions import ModelError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Vertex = Hashable
ClusterId = Hashable


@dataclass
class Clustering:
    """A partition of the vertex set into identified clusters.

    Attributes
    ----------
    cluster_of:
        Mapping ``vertex -> cluster id``.
    """

    cluster_of: Dict[Vertex, ClusterId] = field(default_factory=dict)

    def clusters(self) -> Dict[ClusterId, Set[Vertex]]:
        """Group vertices by cluster id."""
        groups: Dict[ClusterId, Set[Vertex]] = {}
        for v, c in self.cluster_of.items():
            groups.setdefault(c, set()).add(v)
        return groups

    def cluster_ids(self) -> List[ClusterId]:
        """Return the cluster ids in deterministic order."""
        return sorted({c for c in self.cluster_of.values()}, key=repr)

    def num_clusters(self) -> int:
        """Return the number of clusters."""
        return len(set(self.cluster_of.values()))

    def verify_partition(self, graph: Graph) -> None:
        """Check that every vertex of ``graph`` belongs to exactly one cluster."""
        missing = graph.vertices - set(self.cluster_of)
        if missing:
            raise ModelError(
                f"{len(missing)} vertices unassigned, e.g. {next(iter(missing))!r}"
            )
        foreign = set(self.cluster_of) - graph.vertices
        if foreign:
            raise ModelError(
                f"clustering mentions non-vertices, e.g. {next(iter(foreign))!r}"
            )


def weak_diameter(graph: Graph, cluster: Set[Vertex]) -> int:
    """Return the weak diameter of ``cluster``: max distance *in the host graph*.

    The weak diameter allows shortest paths to leave the cluster, which is
    the notion used by the standard network-decomposition definitions.
    Raises :class:`ModelError` if two cluster vertices are disconnected in
    the host graph.
    """
    worst = 0
    cluster_list = sorted(cluster, key=repr)
    for v in cluster_list:
        dist = bfs_distances(graph, v)
        for u in cluster_list:
            if u not in dist:
                raise ModelError(
                    f"cluster vertices {v!r} and {u!r} are disconnected in the host graph"
                )
            worst = max(worst, dist[u])
    return worst


def cluster_graph(graph: Graph, clustering: Clustering) -> Graph:
    """Return the quotient graph: clusters adjacent iff some edge joins them."""
    quotient = Graph(vertices=clustering.cluster_ids())
    for u, v in graph.edges():
        cu, cv = clustering.cluster_of[u], clustering.cluster_of[v]
        if cu != cv and not quotient.has_edge(cu, cv):
            quotient.add_edge(cu, cv)
    return quotient
