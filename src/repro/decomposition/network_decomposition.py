"""(C, D)-network decompositions.

A (C, D)-network decomposition partitions the vertices into clusters of
weak diameter at most ``D`` and colors the clusters with ``C`` colors so
that adjacent clusters receive different colors.  The
(polylog, polylog)-network decomposition problem is the canonical
P-SLOCAL-complete problem from [GKM17] that the whole completeness
landscape (and therefore the paper's result) is anchored to; this module
provides a simple ball-carving construction plus the verifier used by the
problem definition in :mod:`repro.reductions.problems`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.decomposition.clusters import Clustering, cluster_graph, weak_diameter
from repro.exceptions import ModelError, VerificationError
from repro.graphs.coloring import greedy_coloring
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Vertex = Hashable
ClusterId = Hashable


@dataclass
class NetworkDecomposition:
    """A cluster partition together with a proper cluster coloring.

    Attributes
    ----------
    clustering:
        The partition of the vertex set.
    cluster_colors:
        Mapping ``cluster id -> color`` (non-negative integers).
    """

    clustering: Clustering
    cluster_colors: Dict[ClusterId, int]

    def num_colors(self) -> int:
        """Number of distinct cluster colors used."""
        return len(set(self.cluster_colors.values()))

    def max_weak_diameter(self, graph: Graph) -> int:
        """Largest weak diameter over all clusters."""
        return max(
            (weak_diameter(graph, members) for members in self.clustering.clusters().values()),
            default=0,
        )


def ball_carving_decomposition(graph: Graph, radius: int) -> NetworkDecomposition:
    """Build a network decomposition by greedy ball carving.

    Repeatedly picks the smallest unassigned vertex (by ``repr``), carves
    the ball of hop radius ``radius`` around it *restricted to unassigned
    vertices*, and makes that a cluster.  Each cluster has weak diameter at
    most ``2·radius``; the cluster graph is then colored greedily.

    Parameters
    ----------
    graph:
        The host graph.
    radius:
        Carving radius (``≥ 0``); ``radius = 0`` yields singleton clusters.
    """
    if radius < 0:
        raise ModelError(f"radius must be non-negative, got {radius}")
    unassigned = set(graph.vertices)
    clustering = Clustering()
    next_cluster = 0
    while unassigned:
        seed = min(unassigned, key=repr)
        dist = bfs_distances(graph, seed, radius=radius)
        members = {v for v in dist if v in unassigned}
        for v in members:
            clustering.cluster_of[v] = next_cluster
        unassigned -= members
        next_cluster += 1

    quotient = cluster_graph(graph, clustering)
    colors = greedy_coloring(quotient)
    return NetworkDecomposition(clustering=clustering, cluster_colors=colors)


def polylog_decomposition(graph: Graph) -> NetworkDecomposition:
    """Network decomposition with radius ``⌈log2 n⌉`` — the (polylog, polylog) regime.

    For the instance sizes the library targets this produces clusters of
    weak diameter ``O(log n)``; the number of cluster colors is bounded by
    the quotient graph's degree + 1 and reported by the benchmark harness.
    """
    n = graph.num_vertices()
    radius = max(1, math.ceil(math.log2(n))) if n >= 2 else 0
    return ball_carving_decomposition(graph, radius)


def verify_network_decomposition(
    graph: Graph,
    decomposition: NetworkDecomposition,
    max_colors: Optional[int] = None,
    max_diameter: Optional[int] = None,
) -> None:
    """Raise :class:`VerificationError` unless ``decomposition`` is a valid (C, D)-decomposition.

    Parameters
    ----------
    max_colors:
        Required bound ``C`` on the number of cluster colors (``None`` skips
        the check).
    max_diameter:
        Required bound ``D`` on the weak diameter of every cluster
        (``None`` skips the check).
    """
    clustering = decomposition.clustering
    try:
        clustering.verify_partition(graph)
    except ModelError as exc:
        raise VerificationError(str(exc)) from exc

    missing_colors = set(clustering.cluster_ids()) - set(decomposition.cluster_colors)
    if missing_colors:
        raise VerificationError(
            f"{len(missing_colors)} clusters have no color, e.g. {next(iter(missing_colors))!r}"
        )

    quotient = cluster_graph(graph, clustering)
    for cu, cv in quotient.edges():
        if decomposition.cluster_colors[cu] == decomposition.cluster_colors[cv]:
            raise VerificationError(
                f"adjacent clusters {cu!r} and {cv!r} share color "
                f"{decomposition.cluster_colors[cu]!r}"
            )

    if max_colors is not None and decomposition.num_colors() > max_colors:
        raise VerificationError(
            f"{decomposition.num_colors()} cluster colors used, exceeding C = {max_colors}"
        )

    if max_diameter is not None:
        for cid, members in clustering.clusters().items():
            d = weak_diameter(graph, members)
            if d > max_diameter:
                raise VerificationError(
                    f"cluster {cid!r} has weak diameter {d}, exceeding D = {max_diameter}"
                )


def decomposition_quality(graph: Graph, decomposition: NetworkDecomposition) -> Tuple[int, int]:
    """Return the realized ``(C, D)`` pair of a decomposition."""
    return decomposition.num_colors(), decomposition.max_weak_diameter(graph)
