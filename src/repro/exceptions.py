"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish the individual categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class HypergraphError(ReproError):
    """Raised for malformed hypergraphs or invalid hypergraph operations."""


class ColoringError(ReproError):
    """Raised when a (conflict-free) coloring is invalid or inconsistent."""


class IndependenceError(ReproError):
    """Raised when a vertex set violates an independence requirement."""


class ApproximationError(ReproError):
    """Raised when an approximation guarantee is violated or unverifiable."""


class ReductionError(ReproError):
    """Raised when a local reduction cannot be carried out as specified."""


class ModelError(ReproError):
    """Raised by the LOCAL / SLOCAL simulators for protocol violations."""


class LocalityViolation(ModelError):
    """Raised when an algorithm reads state outside its permitted radius."""


class VerificationError(ReproError):
    """Raised when a certificate or output fails verification."""


class CampaignError(ReproError):
    """Raised by the experiment-campaign runtime for malformed specs or stores."""


class TaskTimeout(ReproError):
    """Raised inside a worker when a task exceeds its watchdog deadline.

    Caught by :func:`repro.runtime.tasks.execute_task` and turned into a
    terminal ``status="timeout"`` result row (a hung oracle must not stall
    the whole campaign); it only propagates when no campaign harness is
    around to record it.
    """


class FaultInjectionError(ReproError):
    """Synthetic oracle failure raised by the chaos harness.

    A :class:`ReproError` on purpose: the campaign runtime must treat an
    injected failure exactly like a real library error (a ``failed`` row,
    retried under the bounded retry policy), which is what the chaos fuzz
    suite exercises.
    """


class ObsError(ReproError):
    """Raised by the observability layer (:mod:`repro.obs`).

    Covers metric misuse (negative counter increments, conflicting
    re-registration, label-cardinality blowups) and malformed trace
    sidecars.  Instrumented hot paths never raise it on the happy path —
    observability must not be able to take a campaign down.
    """


class SupervisionError(CampaignError):
    """Raised by the shard coordinator for unrecoverable supervision states.

    Examples: the supervision wall-clock budget is exhausted while shards
    are still running, or a final digest check against a provided
    reference fails after all shards landed.
    """
