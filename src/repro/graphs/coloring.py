"""Proper vertex colorings of simple graphs.

The paper motivates the P-SLOCAL class through the (Δ+1)-vertex-coloring
and MIS problems; this module provides the centralized building blocks
(verification and greedy colorings) on top of which the SLOCAL and LOCAL
simulators implement the distributed variants.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence, Set

from repro.exceptions import ColoringError, GraphError
from repro.graphs.graph import Graph

Vertex = Hashable
Color = int


def verify_proper_coloring(graph: Graph, coloring: Dict[Vertex, Color]) -> None:
    """Raise :class:`ColoringError` unless ``coloring`` is a proper total coloring.

    Every vertex of the graph must be assigned a color and no edge may be
    monochromatic.
    """
    missing = graph.vertices - set(coloring)
    if missing:
        raise ColoringError(f"{len(missing)} vertices are uncolored, e.g. {next(iter(missing))!r}")
    foreign = set(coloring) - graph.vertices
    if foreign:
        raise ColoringError(f"coloring mentions non-vertices, e.g. {next(iter(foreign))!r}")
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            raise ColoringError(
                f"edge ({u!r}, {v!r}) is monochromatic with color {coloring[u]!r}"
            )


def is_proper_coloring(graph: Graph, coloring: Dict[Vertex, Color]) -> bool:
    """Boolean variant of :func:`verify_proper_coloring`."""
    try:
        verify_proper_coloring(graph, coloring)
    except ColoringError:
        return False
    return True


def num_colors(coloring: Dict[Vertex, Color]) -> int:
    """Return the number of distinct colors used by ``coloring``."""
    return len(set(coloring.values()))


def greedy_coloring(
    graph: Graph, order: Optional[Sequence[Vertex]] = None
) -> Dict[Vertex, Color]:
    """Greedy first-fit coloring along ``order`` (uses at most Δ+1 colors).

    This is the SLOCAL-with-locality-1 algorithm for (Δ+1)-vertex coloring:
    each vertex inspects the colors of its already processed neighbors and
    picks the smallest free color.
    """
    if order is None:
        order = sorted(graph.vertices, key=repr)
    else:
        order = list(order)
        if set(order) != graph.vertices:
            raise GraphError("order must be a permutation of the vertex set")
    coloring: Dict[Vertex, Color] = {}
    for v in order:
        used: Set[Color] = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[v] = color
    return coloring


def color_classes(coloring: Dict[Vertex, Color]) -> Dict[Color, Set[Vertex]]:
    """Group vertices by color."""
    classes: Dict[Color, Set[Vertex]] = {}
    for v, c in coloring.items():
        classes.setdefault(c, set()).add(v)
    return classes


def coloring_from_classes(classes: Dict[Color, Iterable[Vertex]]) -> Dict[Vertex, Color]:
    """Inverse of :func:`color_classes`.

    Raises
    ------
    ColoringError
        If a vertex appears in more than one class.
    """
    coloring: Dict[Vertex, Color] = {}
    for c, vs in classes.items():
        for v in vs:
            if v in coloring:
                raise ColoringError(f"vertex {v!r} appears in classes {coloring[v]!r} and {c!r}")
            coloring[v] = c
    return coloring


def defective_edges(graph: Graph, coloring: Dict[Vertex, Color]) -> Set[frozenset]:
    """Return the set of monochromatic edges under a (possibly partial) coloring.

    Uncolored vertices never contribute defective edges.
    """
    bad: Set[frozenset] = set()
    for u, v in graph.edges():
        if u in coloring and v in coloring and coloring[u] == coloring[v]:
            bad.add(frozenset((u, v)))
    return bad
