"""Deterministic and random graph generators used by examples, tests and benches.

All random generators take an explicit :class:`random.Random` instance or a
seed so that every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    """Normalize a seed-or-Random argument into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def empty_graph(n: int) -> Graph:
    """Return a graph with ``n`` isolated vertices labelled ``0..n-1``."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    return Graph(vertices=range(n))


def complete_graph(n: int) -> Graph:
    """Return the complete graph K_n on vertices ``0..n-1``."""
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def path_graph(n: int) -> Graph:
    """Return the path P_n on vertices ``0..n-1``."""
    g = empty_graph(n)
    for u in range(n - 1):
        g.add_edge(u, u + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """Return the cycle C_n on vertices ``0..n-1`` (requires ``n ≥ 3``)."""
    if n < 3:
        raise GraphError(f"a cycle needs at least 3 vertices, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n_leaves: int) -> Graph:
    """Return a star with center ``0`` and leaves ``1..n_leaves``."""
    if n_leaves < 0:
        raise GraphError(f"n_leaves must be non-negative, got {n_leaves}")
    g = empty_graph(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        g.add_edge(0, leaf)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Return K_{a,b} with left part ``('L', i)`` and right part ``('R', j)``."""
    if a < 0 or b < 0:
        raise GraphError("part sizes must be non-negative")
    g = Graph(vertices=[("L", i) for i in range(a)] + [("R", j) for j in range(b)])
    for i in range(a):
        for j in range(b):
            g.add_edge(("L", i), ("R", j))
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows × cols`` grid graph with vertices ``(r, c)``."""
    if rows < 0 or cols < 0:
        raise GraphError("grid dimensions must be non-negative")
    g = Graph(vertices=[(r, c) for r in range(rows) for c in range(cols)])
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def erdos_renyi_graph(
    n: int, p: float, seed: Optional[Union[int, random.Random]] = None
) -> Graph:
    """Return a G(n, p) random graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    p:
        Edge probability in ``[0, 1]``.
    seed:
        Seed or :class:`random.Random` instance for reproducibility.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = _rng(seed)
    g = empty_graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_regular_graph(
    n: int, d: int, seed: Optional[Union[int, random.Random]] = None, max_tries: int = 200
) -> Graph:
    """Return a random (approximately uniform) ``d``-regular graph.

    Uses the configuration model with restarts; requires ``n*d`` even and
    ``d < n``.
    """
    if d < 0 or n < 0:
        raise GraphError("n and d must be non-negative")
    if d >= n and not (n == 0 and d == 0):
        raise GraphError(f"degree d={d} must be smaller than n={n}")
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even for a d-regular graph to exist")
    rng = _rng(seed)
    for _ in range(max_tries):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        g = empty_graph(n)
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or g.has_edge(u, v):
                ok = False
                break
            g.add_edge(u, v)
        if ok:
            return g
    raise GraphError(
        f"failed to sample a simple {d}-regular graph on {n} vertices "
        f"after {max_tries} attempts"
    )


def random_tree(n: int, seed: Optional[Union[int, random.Random]] = None) -> Graph:
    """Return a uniformly random labelled tree on ``0..n-1`` (Prüfer sequence)."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if n <= 1:
        return empty_graph(n)
    if n == 2:
        g = empty_graph(2)
        g.add_edge(0, 1)
        return g
    rng = _rng(seed)
    pruefer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in pruefer:
        degree[v] += 1
    g = empty_graph(n)
    for v in pruefer:
        for leaf in range(n):
            if degree[leaf] == 1:
                g.add_edge(leaf, v)
                degree[leaf] -= 1
                degree[v] -= 1
                break
    last = [v for v in range(n) if degree[v] == 1]
    g.add_edge(last[0], last[1])
    return g


def disjoint_union(*graphs: Graph) -> Graph:
    """Return the disjoint union; vertices are relabelled ``(index, vertex)``."""
    result = Graph()
    for idx, g in enumerate(graphs):
        for v in g.vertices:
            result.add_vertex((idx, v))
        for u, v in g.edges():
            result.add_edge((idx, u), (idx, v))
    return result
