"""A simple undirected graph implemented on adjacency sets.

The library deliberately ships its own light-weight :class:`Graph` class
instead of building everything directly on :mod:`networkx`:

* the LOCAL / SLOCAL simulators need cheap, predictable neighborhood
  queries and stable vertex identity semantics (vertices may be arbitrary
  hashable objects such as the ``(edge, vertex, color)`` triples of the
  conflict graph);
* conversion helpers (:meth:`Graph.to_networkx`,
  :meth:`Graph.from_networkx`) are provided so users can move freely
  between the two representations.

Vertices may be any hashable object.  Self-loops are rejected because none
of the problems studied in the paper are defined on graphs with loops, and
a silent self-loop would corrupt independent-set semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graphs.indexed import IndexedGraph

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of 2-tuples of vertices.  Endpoints that are not
        yet present are added automatically.

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3)])
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.degree(2)
    2
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges: int = 0
        # degree -> number of vertices with that degree (zero counts removed);
        # together with _max_degree this makes num_edges()/max_degree() O(1).
        self._degree_hist: Dict[int, int] = {}
        self._max_degree: int = 0
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # incremental bookkeeping
    # ------------------------------------------------------------------
    def _degree_changed(self, old: int, new: int) -> None:
        """Move one vertex from degree bucket ``old`` to ``new``."""
        hist = self._degree_hist
        count = hist[old] - 1
        if count:
            hist[old] = count
        else:
            del hist[old]
        hist[new] = hist.get(new, 0) + 1
        if new > self._max_degree:
            self._max_degree = new
        elif old == self._max_degree and old not in hist:
            d = old
            while d > 0 and d not in hist:
                d -= 1
            self._max_degree = d

    def _degree_dropped(self, old: int) -> None:
        """Forget one vertex that had degree ``old`` (vertex removal)."""
        hist = self._degree_hist
        count = hist[old] - 1
        if count:
            hist[old] = count
        else:
            del hist[old]
        if old == self._max_degree and old not in hist:
            d = old
            while d > 0 and d not in hist:
                d -= 1
            self._max_degree = d

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._adj:
            self._adj[v] = set()
            self._degree_hist[0] = self._degree_hist.get(0, 0) + 1

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex in ``vertices``."""
        for v in vertices:
            self.add_vertex(v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``; endpoints are auto-added.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops are not supported).
        """
        if u == v:
            raise GraphError(f"self-loops are not supported (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        nbrs_u = self._adj[u]
        if v in nbrs_u:
            return
        nbrs_v = self._adj[v]
        nbrs_u.add(v)
        nbrs_v.add(u)
        self._num_edges += 1
        self._degree_changed(len(nbrs_u) - 1, len(nbrs_u))
        self._degree_changed(len(nbrs_v) - 1, len(nbrs_v))

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._degree_changed(len(self._adj[u]) + 1, len(self._adj[u]))
        self._degree_changed(len(self._adj[v]) + 1, len(self._adj[v]))

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident edges.

        Raises
        ------
        GraphError
            If the vertex is not present.
        """
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        for u in self._adj[v]:
            self._adj[u].discard(v)
            self._degree_changed(len(self._adj[u]) + 1, len(self._adj[u]))
        self._num_edges -= len(self._adj[v])
        self._degree_dropped(len(self._adj[v]))
        del self._adj[v]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_vertex(self, v: Vertex) -> bool:
        """Return ``True`` if ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the edge ``{u, v}`` is present."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return a copy of the neighbor set of ``v``.

        Raises
        ------
        GraphError
            If the vertex is not present.
        """
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        return set(self._adj[v])

    def adjacent(self, v: Vertex) -> Set[Vertex]:
        """Return the *internal* neighbor set of ``v`` without copying.

        The returned set is a live view: callers must treat it as read-only
        (mutating it would corrupt the graph's bookkeeping).  Use
        :meth:`neighbors` when a defensive copy is needed.

        Raises
        ------
        GraphError
            If the vertex is not present.
        """
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        return self._adj[v]

    def neighbors_iter(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbors of ``v`` without copying the set.

        Raises
        ------
        GraphError
            If the vertex is not present.
        """
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        return iter(self._adj[v])

    def degree(self, v: Vertex) -> int:
        """Return the degree of ``v``."""
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Return the maximum degree Δ of the graph (0 for empty graphs).

        Maintained incrementally via a degree histogram, so this is O(1).
        """
        return self._max_degree

    @property
    def vertices(self) -> Set[Vertex]:
        """The vertex set (a copy)."""
        return set(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once.

        Each edge ``{u, v}`` is reported from the endpoint that was inserted
        first, so the iteration is deterministic for deterministic
        construction orders and needs no per-pair ``frozenset`` dedup.
        """
        position = {v: i for i, v in enumerate(self._adj)}
        for u, nbrs in self._adj.items():
            pu = position[u]
            for v in nbrs:
                if position[v] > pu:
                    yield (u, v)

    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._adj)

    def num_edges(self) -> int:
        """Return ``|E|`` (maintained incrementally, O(1))."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_vertices()}, m={self.num_edges()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    @classmethod
    def _from_adjacency_unchecked(cls, adj: Dict[Vertex, Set[Vertex]]) -> "Graph":
        """Adopt a prebuilt adjacency dict without re-validating it.

        ``adj`` must be symmetric and loop-free; the caller transfers
        ownership of the dict and its sets.  Used by :meth:`copy`, the
        conflict-graph builder, and :class:`IndexedGraph` round-trips to
        skip per-edge checks.
        """
        g = cls.__new__(cls)
        g._adj = adj
        total = 0
        hist: Dict[int, int] = {}
        max_degree = 0
        for nbrs in adj.values():
            d = len(nbrs)
            total += d
            hist[d] = hist.get(d, 0) + 1
            if d > max_degree:
                max_degree = d
        g._num_edges = total // 2
        g._degree_hist = hist
        g._max_degree = max_degree
        return g

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        g = Graph.__new__(Graph)
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        g._degree_hist = dict(self._degree_hist)
        g._max_degree = self._max_degree
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced on ``vertices``.

        Vertices not present in the graph are silently ignored so that the
        method can be used with over-approximated vertex sets (e.g. the
        union of several neighborhoods).
        """
        keep = {v for v in vertices if v in self._adj}
        return Graph._from_adjacency_unchecked(
            {v: self._adj[v] & keep for v in keep}
        )

    def complement(self) -> "Graph":
        """Return the complement graph on the same vertex set."""
        verts = list(self._adj)
        g = Graph(vertices=verts)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if v not in self._adj[u]:
                    g.add_edge(u, v)
        return g

    def is_independent_set(self, vertices: Iterable[Vertex]) -> bool:
        """Return ``True`` if ``vertices`` is an independent set.

        Every vertex must be present in the graph; otherwise a
        :class:`GraphError` is raised, because silently accepting foreign
        vertices would make the check meaningless.
        """
        vs = list(vertices)
        for v in vs:
            if v not in self._adj:
                raise GraphError(f"vertex {v!r} not in graph")
        vset = set(vs)
        for v in vset:
            if self._adj[v] & vset:
                return False
        return True

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Return ``True`` if ``vertices`` induces a complete subgraph."""
        vs = [v for v in vertices]
        for v in vs:
            if v not in self._adj:
                raise GraphError(f"vertex {v!r} not in graph")
        vset = set(vs)
        for v in vset:
            if (vset - {v}) - self._adj[v]:
                return False
        return True

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def freeze(self, order: Optional[Iterable[Vertex]] = None) -> "IndexedGraph":
        """Return an immutable :class:`~repro.graphs.indexed.IndexedGraph` view.

        Parameters
        ----------
        order:
            Optional interning order (a permutation of the vertex set).
            Defaults to insertion order, which is deterministic whenever the
            graph was built deterministically.
        """
        from repro.graphs.indexed import IndexedGraph

        return IndexedGraph.from_graph(self, order=order)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (vertices kept verbatim)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a :class:`networkx.Graph`."""
        g = cls(vertices=nx_graph.nodes())
        for u, v in nx_graph.edges():
            if u != v:
                g.add_edge(u, v)
        return g

    def to_dict(self) -> Dict[str, list]:
        """Serialize to a JSON-friendly ``{"vertices": [...], "edges": [...]}``."""
        return {
            "vertices": sorted(self._adj, key=repr),
            "edges": sorted(([u, v] for u, v in self.edges()), key=repr),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, list]) -> "Graph":
        """Inverse of :meth:`to_dict`."""
        g = cls(vertices=data.get("vertices", ()))
        for u, v in data.get("edges", ()):
            g.add_edge(u, v)
        return g
