"""Independent-set machinery on plain graphs.

This module provides the *exact* maximum-independent-set solver used as
ground truth in tests and benchmarks, verification helpers, and the basic
greedy procedures.  The λ-approximation algorithms consumed by the paper's
reduction live in :mod:`repro.maxis`; they build on the primitives here.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Union

from repro.exceptions import GraphError, IndependenceError
from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph

Vertex = Hashable


def verify_independent_set(graph, candidate: Iterable[Vertex]) -> None:
    """Raise :class:`IndependenceError` unless ``candidate`` is independent in ``graph``.

    Both membership of every vertex and pairwise non-adjacency are checked.
    ``graph`` may be a mutable :class:`Graph` or a frozen
    :class:`~repro.graphs.indexed.IndexedGraph` (including alive-mask
    subgraph views); the frozen path checks adjacency with one bitset
    intersection per candidate.
    """
    vs = list(candidate)
    if isinstance(graph, IndexedGraph):
        ids = []
        mask = 0
        for v in vs:
            try:
                i = graph.index_of(v)
            except GraphError:
                raise IndependenceError(
                    f"vertex {v!r} is not a vertex of the graph"
                ) from None
            bit = 1 << i
            if mask & bit:
                raise IndependenceError("candidate contains duplicate vertices")
            mask |= bit
            ids.append(i)
        for i in ids:
            conflict = graph.neighbor_bitset(i) & mask
            if conflict:
                j = (conflict & -conflict).bit_length() - 1
                raise IndependenceError(
                    f"vertices {graph.label(i)!r} and {graph.label(j)!r} are adjacent"
                )
        return
    for v in vs:
        if v not in graph:
            raise IndependenceError(f"vertex {v!r} is not a vertex of the graph")
    vset = set(vs)
    if len(vset) != len(vs):
        raise IndependenceError("candidate contains duplicate vertices")
    for v in vset:
        conflict = vset.intersection(graph.adjacent(v))
        if conflict:
            raise IndependenceError(
                f"vertices {v!r} and {next(iter(conflict))!r} are adjacent"
            )


def is_maximal_independent_set(graph: Graph, candidate: Iterable[Vertex]) -> bool:
    """Return ``True`` iff ``candidate`` is an *inclusion-maximal* independent set."""
    vset = set(candidate)
    verify_independent_set(graph, vset)
    for v in graph:
        if v not in vset and vset.isdisjoint(graph.adjacent(v)):
            return False
    return True


def greedy_maximal_independent_set(
    graph: Graph, order: Optional[Sequence[Vertex]] = None
) -> Set[Vertex]:
    """Compute a maximal independent set greedily along ``order``.

    This is exactly the SLOCAL algorithm with locality 1 described in the
    paper's introduction: process nodes in an arbitrary order and join the
    independent set if no already-processed neighbor has joined.

    Parameters
    ----------
    graph:
        The input graph.
    order:
        Processing order; defaults to a deterministic sorted order by
        ``repr`` so that the result is reproducible.
    """
    if order is None:
        order = sorted(graph.vertices, key=repr)
    else:
        order = list(order)
        if set(order) != graph.vertices:
            raise GraphError("order must be a permutation of the vertex set")
    selected: Set[Vertex] = set()
    for v in order:
        if selected.isdisjoint(graph.adjacent(v)):
            selected.add(v)
    return selected


def greedy_min_degree_independent_set(graph: Graph) -> Set[Vertex]:
    """Greedy independent set repeatedly taking a minimum-degree vertex.

    This classical heuristic achieves the Turán-type guarantee
    ``|I| ≥ n / (Δ + 1)`` and tends to perform much better in practice.

    This is the *reference* implementation (kept simple on purpose; it is
    the oracle the property tests compare against).  The production port,
    a bucket-queue over a frozen :class:`IndexedGraph` with identical
    output, is :func:`repro.maxis.greedy.min_degree_greedy`.
    """
    work = graph.copy()
    selected: Set[Vertex] = set()
    while work.num_vertices() > 0:
        v = min(work.vertices, key=lambda u: (work.degree(u), repr(u)))
        selected.add(v)
        to_remove = work.neighbors(v) | {v}
        for u in to_remove:
            work.remove_vertex(u)
    verify_independent_set(graph, selected)
    return selected


def luby_mis(
    graph: Graph, seed: Optional[Union[int, random.Random]] = None
) -> Set[Vertex]:
    """One maximal IS via Luby-style coin-flip rounds (reference implementation).

    Each round draws one fair coin per alive vertex (a single
    ``getrandbits(#alive)`` per round; bit ``j`` belongs to the ``j``-th
    alive vertex in ascending ``repr`` order), thins the marked vertices to
    an independent set first-fit along the same order, commits the winners
    and deletes their closed neighborhoods.  Rounds repeat until no vertex
    is alive, so the result is a maximal independent set; with a seeded rng
    the whole run is deterministic.

    This is the *reference* path of the bit-parallel batched kernel
    :func:`repro.maxis.luby_based.luby_batch_mis`, which packs the coin
    flips of many trials into machine-word lanes: trial ``t`` of the batch
    must reproduce ``luby_mis(graph, seed=trial_seed_t)`` bit for bit (the
    differential tests under ``tests/fuzz`` assert exactly that), so the
    two implementations must consume randomness identically — rounds
    outermost, alive vertices ascending within a round.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    order = sorted(graph.vertices, key=repr)
    alive: Set[Vertex] = set(order)
    selected: Set[Vertex] = set()
    while alive:
        alive_order = [v for v in order if v in alive]
        bits = rng.getrandbits(len(alive_order))
        round_sel: Set[Vertex] = set()
        for j, v in enumerate(alive_order):
            if (bits >> j) & 1 and round_sel.isdisjoint(graph.adjacent(v)):
                round_sel.add(v)
        for v in round_sel:
            alive.discard(v)
            alive -= graph.adjacent(v)
        selected |= round_sel
    verify_independent_set(graph, selected)
    return selected


def maximum_independent_set(graph: Graph) -> Set[Vertex]:
    """Return a maximum independent set, computed exactly.

    The solver is a branch-and-bound over the standard recurrence
    ``α(G) = max(α(G − N[v] ) + 1, α(G − v))`` branching on a maximum-degree
    vertex, with memoization on the remaining vertex set.  The search runs
    on a frozen :class:`~repro.graphs.indexed.IndexedGraph` (vertices
    interned in ``repr`` order) so the active set, memo keys and all
    neighborhood algebra are machine-word-parallel bitset operations.
    Exponential in the worst case — intended for the ground-truth
    comparisons on small and medium instances used by the test-suite and
    the benchmark harness.
    """
    from repro.graphs.indexed import maximum_independent_set_mask

    if graph.num_vertices() == 0:
        return set()
    frozen = graph.freeze(order=sorted(graph.vertices, key=repr))
    best = frozen.labels_for_mask(maximum_independent_set_mask(frozen))
    verify_independent_set(graph, best)
    return best


def independence_number(graph: Graph) -> int:
    """Return ``α(G)``, the size of a maximum independent set."""
    return len(maximum_independent_set(graph))


def approximation_ratio(graph: Graph, candidate: Iterable[Vertex]) -> float:
    """Return ``α(G) / |candidate|`` (the λ for which ``candidate`` is a λ-approx).

    Raises
    ------
    IndependenceError
        If ``candidate`` is not an independent set, or is empty while
        ``α(G) > 0`` (in which case no finite ratio exists).
    """
    vset = set(candidate)
    verify_independent_set(graph, vset)
    alpha = independence_number(graph)
    if alpha == 0:
        return 1.0
    if not vset:
        raise IndependenceError("empty candidate cannot approximate a non-empty optimum")
    return alpha / len(vset)


def all_maximal_independent_sets(graph: Graph, limit: Optional[int] = None) -> List[Set[Vertex]]:
    """Enumerate maximal independent sets (Bron–Kerbosch on the complement).

    Parameters
    ----------
    graph:
        Input graph.
    limit:
        Optional cap on the number of sets returned; enumeration stops once
        the cap is reached.  Useful to keep tests bounded on dense graphs.
    """
    comp = graph.complement()
    results: List[Set[Vertex]] = []

    def bron_kerbosch(r: Set[Vertex], p: Set[Vertex], x: Set[Vertex]) -> bool:
        """Return False to signal that the limit has been reached."""
        if limit is not None and len(results) >= limit:
            return False
        if not p and not x:
            results.append(set(r))
            return True
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(comp.neighbors(u) & p))
        for v in list(p - comp.neighbors(pivot)):
            if not bron_kerbosch(r | {v}, p & comp.neighbors(v), x & comp.neighbors(v)):
                return False
            p = p - {v}
            x = x | {v}
        return True

    if graph.num_vertices() > 0:
        bron_kerbosch(set(), graph.vertices, set())
    return results
