"""Immutable indexed graph: interned vertices, CSR adjacency, bitset rows.

:class:`IndexedGraph` is the performance substrate of the library.  It
interns arbitrary hashable vertex labels to dense integer ids and stores
the adjacency structure twice:

* as CSR-style arrays (``indptr`` / ``indices``) for cache-friendly
  neighbor iteration, and
* as one Python arbitrary-precision integer per vertex (bit ``j`` of row
  ``i`` is set iff ``{i, j}`` is an edge) so that set algebra on whole
  neighborhoods — the inner loop of every independent-set algorithm —
  becomes single ``&``/``|`` machine-word-parallel operations.

Interning / determinism contract
--------------------------------
The interning table is fixed at construction time and never changes: id
``i`` maps to ``labels()[i]`` forever.  When built via :meth:`from_graph`
(or :meth:`Graph.freeze`) the default order is the *insertion order* of the
mutable :class:`~repro.graphs.graph.Graph`, so any deterministically
constructed graph freezes to a deterministic ``IndexedGraph``; callers that
need a canonical order independent of construction history pass an explicit
``order`` (the MIS ports use ``sorted(vertices, key=repr)`` to reproduce
the tie-breaking of the reference implementations bit-for-bit).  CSR rows
are sorted ascending by id, so neighbor iteration order, bitset contents
and :meth:`to_graph` round-trips are all functions of the interning table
alone.

The structure is immutable by design: algorithms that need to "remove"
vertices track an ``alive`` bitmask instead of mutating the graph, which is
both faster and side-effect free.

Alive-mask subgraph views
-------------------------
:meth:`IndexedGraph.subgraph_view` lifts that idiom to whole-pipeline
scope: it returns an :class:`IndexedSubgraph` — an induced-subgraph view
that shares the parent's interning table, CSR arrays and bitset rows and
only carries an ``alive`` bitmask.  Construction is O(1) (no re-interning,
no row copying); all size/degree/adjacency queries answer for the induced
subgraph.  Views keep the *parent's* integer ids (the id space stays
sparse), which is exactly what the bitset kernels below want: the kernels
accept views directly and restrict themselves to the alive ids, so a phase
of the paper's reduction can shrink the conflict graph without rebuilding
anything.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError

Vertex = Hashable

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def popcount(x: int) -> int:
    """Return the number of set bits of ``x``."""
    return _popcount(x)


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class IndexedGraph:
    """An immutable graph over interned integer ids (see module docstring)."""

    __slots__ = ("_labels", "_index", "_indptr", "_indices", "_bitsets", "_num_edges")

    def __init__(self, labels: Sequence[Vertex], rows: Sequence[Iterable[int]]) -> None:
        """Build from interned ``labels`` and per-vertex neighbor-id ``rows``.

        ``rows[i]`` lists the neighbor ids of vertex ``i``; rows must be
        symmetric and loop-free.  Loops, out-of-range ids and degree-sum
        parity are checked; full symmetry is the caller's contract (every
        in-library constructor builds symmetric rows).
        """
        if len(labels) != len(rows):
            raise GraphError(
                f"labels/rows length mismatch ({len(labels)} != {len(rows)})"
            )
        self._labels: Tuple[Vertex, ...] = tuple(labels)
        self._index: Dict[Vertex, int] = {v: i for i, v in enumerate(self._labels)}
        if len(self._index) != len(self._labels):
            raise GraphError("duplicate vertex labels")
        indptr = array("l", [0])
        indices = array("l")
        bitsets: List[int] = []
        total = 0
        n = len(self._labels)
        for i, row in enumerate(rows):
            ids = sorted(set(row))
            if ids and (ids[0] < 0 or ids[-1] >= n):
                raise GraphError(f"neighbor id out of range in row {i}")
            bits = 0
            for j in ids:
                if j == i:
                    raise GraphError(f"self-loop on id {i}")
                bits |= 1 << j
            indices.extend(ids)
            bitsets.append(bits)
            total += len(ids)
            indptr.append(len(indices))
        if total % 2:
            raise GraphError("adjacency rows are not symmetric (odd degree sum)")
        self._indptr = indptr
        self._indices = indices
        self._bitsets = bitsets
        self._num_edges = total // 2

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_bitsets(
        cls,
        labels: Sequence[Vertex],
        bitsets: List[int],
        num_edges: Optional[int] = None,
    ) -> "IndexedGraph":
        """Adopt prebuilt bitset rows without re-validating them (internal).

        The caller guarantees symmetry and loop-freeness.  The CSR arrays
        are materialized lazily on first :meth:`neighbors` access, so
        constructing a graph this way is O(n) on top of the rows — the
        fast path used by the conflict-graph builder and :meth:`_permuted`.
        """
        g = cls.__new__(cls)
        g._labels = tuple(labels)
        g._index = {v: i for i, v in enumerate(g._labels)}
        g._indptr = None
        g._indices = None
        g._bitsets = bitsets
        if num_edges is None:
            num_edges = sum(_popcount(b) for b in bitsets) // 2
        g._num_edges = num_edges
        return g

    def _ensure_csr(self) -> None:
        """Materialize the CSR arrays from the bitset rows (lazy, internal)."""
        if self._indptr is not None:
            return
        indptr = array("l", [0])
        indices = array("l")
        for bits in self._bitsets:
            row = []
            m = bits
            while m:
                low = m & -m
                row.append(low.bit_length() - 1)
                m ^= low
            indices.extend(row)
            indptr.append(len(indices))
        self._indptr = indptr
        self._indices = indices

    def _permuted(self, order: Sequence[int]) -> "IndexedGraph":
        """Return the same graph re-interned so new id ``p`` is old id ``order[p]``.

        ``order`` must be a permutation of ``range(n)``.  Adjacency is
        remapped in O(n + m); used to derive a ``repr``-sorted snapshot
        from an already-frozen graph without a :class:`Graph` round-trip.
        """
        n = len(self._labels)
        perm = [0] * n  # old id -> new id
        for p, old in enumerate(order):
            perm[old] = p
        labels = tuple(self._labels[old] for old in order)
        old_bits = self._bitsets
        bitsets: List[int] = []
        for old in order:
            m = old_bits[old]
            bits = 0
            while m:
                low = m & -m
                bits |= 1 << perm[low.bit_length() - 1]
                m ^= low
            bitsets.append(bits)
        return IndexedGraph._from_bitsets(labels, bitsets, self._num_edges)

    @classmethod
    def from_graph(cls, graph, order: Optional[Iterable[Vertex]] = None) -> "IndexedGraph":
        """Intern ``graph`` (a mutable :class:`Graph`); see :meth:`Graph.freeze`."""
        if order is None:
            labels = list(graph)
        else:
            labels = list(order)
            if set(labels) != set(graph) or len(labels) != graph.num_vertices():
                raise GraphError("order must be a permutation of the vertex set")
        index = {v: i for i, v in enumerate(labels)}
        rows = [
            [index[u] for u in graph.adjacent(v)]
            for v in labels
        ]
        return cls(labels, rows)

    def _materialize_graph(self, ids: Iterable[int], mask: Optional[int]):
        """Build a mutable :class:`Graph` from the rows of ``ids`` (internal).

        ``mask`` restricts each row (``None`` keeps it whole).  The inlined
        low-bit loop is deliberate: this conversion is what the rebuild
        benchmark baseline pays per phase, and the generator form measured
        ~40% slower.
        """
        from repro.graphs.graph import Graph

        labels = self._labels
        bitsets = self._bitsets
        adj = {}
        for i in ids:
            nbrs = set()
            m = bitsets[i] if mask is None else bitsets[i] & mask
            while m:
                low = m & -m
                nbrs.add(labels[low.bit_length() - 1])
                m ^= low
            adj[labels[i]] = nbrs
        return Graph._from_adjacency_unchecked(adj)

    def to_graph(self):
        """Materialize a mutable :class:`Graph` with the original labels."""
        return self._materialize_graph(range(len(self._labels)), None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._labels)

    def num_edges(self) -> int:
        """Return ``|E|``."""
        return self._num_edges

    def labels(self) -> Tuple[Vertex, ...]:
        """The interning table: ``labels()[i]`` is the label of id ``i``."""
        return self._labels

    def label(self, i: int) -> Vertex:
        """Return the original label of id ``i``."""
        return self._labels[i]

    def index_of(self, label: Vertex) -> int:
        """Return the dense id of ``label``.

        Raises
        ------
        GraphError
            If the label is unknown.
        """
        try:
            return self._index[label]
        except KeyError:
            raise GraphError(f"vertex {label!r} not in graph") from None

    def degree(self, i: int) -> int:
        """Return the degree of id ``i``."""
        if self._indptr is None:
            return _popcount(self._bitsets[i])
        return self._indptr[i + 1] - self._indptr[i]

    def degrees(self) -> List[int]:
        """Return the degree of every vertex, indexed by id."""
        indptr = self._indptr
        if indptr is None:
            return [_popcount(b) for b in self._bitsets]
        return [indptr[i + 1] - indptr[i] for i in range(len(self._labels))]

    def max_degree(self) -> int:
        """Return Δ (0 for the empty graph)."""
        return max(self.degrees(), default=0)

    def neighbors(self, i: int) -> Sequence[int]:
        """Return the neighbor ids of ``i`` (sorted ascending, no copy of labels)."""
        self._ensure_csr()
        return self._indices[self._indptr[i]:self._indptr[i + 1]]

    def neighbor_bitset(self, i: int) -> int:
        """Return the adjacency row of ``i`` as a Python-int bitset."""
        return self._bitsets[i]

    def bitsets(self) -> List[int]:
        """Return the list of all adjacency bitsets, indexed by id."""
        return self._bitsets

    def has_edge(self, i: int, j: int) -> bool:
        """Return ``True`` iff ids ``i`` and ``j`` are adjacent."""
        return bool((self._bitsets[i] >> j) & 1)

    def vertex_ids(self) -> Sequence[int]:
        """Return the live vertex ids in ascending order.

        For a full graph this is simply ``range(n)``; for an
        :class:`IndexedSubgraph` view it is the ascending list of alive
        ids.  Kernels and wrappers iterate this instead of ``range(n)`` so
        they work on both without branching.
        """
        return range(len(self._labels))

    def alive_mask(self) -> int:
        """Return the bitmask of live ids (all-ones for a full graph)."""
        return (1 << len(self._labels)) - 1

    def subgraph_view(self, alive: int) -> "IndexedGraph":
        """Return the induced subgraph on the id-bitset ``alive`` as a view.

        The view shares this graph's interning table and adjacency arrays
        (construction is O(1)); ids are *parent* ids, so masks computed
        against the parent remain meaningful.  When ``alive`` covers every
        vertex, ``self`` is returned unchanged.

        Raises
        ------
        GraphError
            If ``alive`` has bits outside ``range(n)``.
        """
        full = (1 << len(self._labels)) - 1
        if alive & ~full:
            raise GraphError("alive mask has bits outside the vertex-id range")
        if alive == full:
            return self
        return IndexedSubgraph(self, alive)

    def labels_for_mask(self, mask: int) -> Set[Vertex]:
        """Translate a bitset over ids back into a set of vertex labels."""
        labels = self._labels
        return {labels[i] for i in iter_bits(mask)}

    def mask_of(self, vertices: Iterable[Vertex]) -> int:
        """Translate an iterable of labels into a bitset over ids."""
        mask = 0
        for v in vertices:
            mask |= 1 << self.index_of(v)
        return mask

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def __contains__(self, label: Vertex) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexedGraph(n={self.num_vertices()}, m={self.num_edges()})"


class IndexedSubgraph(IndexedGraph):
    """An induced-subgraph *view* of an :class:`IndexedGraph` (alive bitmask).

    The view keeps a reference to the parent's interning table and raw
    adjacency arrays and adds only an ``alive`` id-bitmask, so creating one
    is O(1).  Ids are **parent ids**: ``label(i)`` / ``labels()`` answer for
    the full interning table, while the size, degree, membership and
    adjacency queries answer for the induced subgraph (dead ids are
    rejected like unknown vertices).  The relative order of alive ids is
    the parent's interning order, so a view of a ``repr``-sorted graph is
    itself ``repr``-sorted — the property the MIS wrappers rely on for
    bit-for-bit reproducibility.

    Use :meth:`IndexedGraph.subgraph_view` to construct one.
    """

    __slots__ = ("_parent", "_alive", "_alive_ids", "_alive_edges")

    def __init__(self, parent: IndexedGraph, alive: int) -> None:
        if isinstance(parent, IndexedSubgraph):  # views compose on the base graph
            alive &= parent._alive
            parent = parent._parent
        self._parent = parent
        self._alive = alive
        # Shared, *raw* internals: kernels that pre-filter by id (first-fit
        # along an alive order, branch-and-bound on an active mask) read
        # these directly and never see a dead contribution.
        self._labels = parent._labels
        self._index = parent._index
        self._indptr = parent._indptr
        self._indices = parent._indices
        self._bitsets = parent._bitsets
        self._num_edges = parent._num_edges
        self._alive_ids: Optional[List[int]] = None
        self._alive_edges: Optional[int] = None

    # -- structure shared with the parent ------------------------------
    @property
    def parent(self) -> IndexedGraph:
        """The full graph this view restricts."""
        return self._parent

    def alive_mask(self) -> int:
        """The bitmask of alive ids."""
        return self._alive

    def vertex_ids(self) -> Sequence[int]:
        """The alive ids in ascending (parent interning) order."""
        if self._alive_ids is None:
            self._alive_ids = list(iter_bits(self._alive))
        return self._alive_ids

    def subgraph_view(self, alive: int) -> "IndexedGraph":
        full = (1 << len(self._labels)) - 1
        if alive & ~full:
            raise GraphError("alive mask has bits outside the vertex-id range")
        alive &= self._alive
        if alive == self._alive:
            return self
        return IndexedSubgraph(self._parent, alive)

    # -- induced-subgraph queries --------------------------------------
    def num_vertices(self) -> int:
        return _popcount(self._alive)

    def num_edges(self) -> int:
        if self._alive_edges is None:
            alive = self._alive
            bitsets = self._bitsets
            self._alive_edges = (
                sum(_popcount(bitsets[i] & alive) for i in self.vertex_ids()) // 2
            )
        return self._alive_edges

    def _check_alive(self, i: int) -> None:
        if not (self._alive >> i) & 1:
            raise GraphError(f"vertex id {i} is not alive in this view")

    def degree(self, i: int) -> int:
        self._check_alive(i)
        return _popcount(self._bitsets[i] & self._alive)

    def degrees(self) -> List[int]:
        """Masked degree for every parent id (dead ids report 0).

        Keeps the base-class "indexed by id" contract so ``degrees()[i]``
        is meaningful for any alive id regardless of which representation
        the caller holds; like :meth:`bitsets`, dead ids read as empty.
        """
        alive = self._alive
        bitsets = self._bitsets
        return [
            _popcount(row & alive) if (alive >> i) & 1 else 0
            for i, row in enumerate(bitsets)
        ]

    def max_degree(self) -> int:
        alive = self._alive
        bitsets = self._bitsets
        return max(
            (_popcount(bitsets[i] & alive) for i in self.vertex_ids()), default=0
        )

    def neighbors(self, i: int) -> Sequence[int]:
        self._check_alive(i)
        return list(iter_bits(self._bitsets[i] & self._alive))

    def neighbor_bitset(self, i: int) -> int:
        self._check_alive(i)
        return self._bitsets[i] & self._alive

    def bitsets(self) -> List[int]:
        """Masked rows for every parent id (dead rows are 0)."""
        alive = self._alive
        return [
            row & alive if (alive >> i) & 1 else 0
            for i, row in enumerate(self._bitsets)
        ]

    def has_edge(self, i: int, j: int) -> bool:
        alive = self._alive
        if not ((alive >> i) & 1 and (alive >> j) & 1):
            return False
        return bool((self._bitsets[i] >> j) & 1)

    def index_of(self, label: Vertex) -> int:
        i = self._parent.index_of(label)
        if not (self._alive >> i) & 1:
            raise GraphError(f"vertex {label!r} not in graph")
        return i

    def to_graph(self):
        """Materialize the induced subgraph as a mutable :class:`Graph`.

        Insertion order is the alive subsequence of the parent's interning
        order, matching what freezing a from-scratch rebuild would produce.
        """
        return self._materialize_graph(self.vertex_ids(), self._alive)

    def __len__(self) -> int:
        return _popcount(self._alive)

    def __iter__(self) -> Iterator[Vertex]:
        labels = self._labels
        return (labels[i] for i in self.vertex_ids())

    def __contains__(self, label: Vertex) -> bool:
        i = self._parent._index.get(label)
        return i is not None and bool((self._alive >> i) & 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexedSubgraph(n={self.num_vertices()}/{len(self._labels)}, "
            f"m={self.num_edges()})"
        )


def _base_and_mask(graph: IndexedGraph) -> Tuple[IndexedGraph, Optional[int]]:
    """Split ``graph`` into (full base graph, alive mask or None) for kernels."""
    if isinstance(graph, IndexedSubgraph):
        return graph._parent, graph._alive
    return graph, None


def freeze_sorted(graph) -> "IndexedGraph":
    """Freeze a :class:`Graph` with vertices interned in ``repr`` order.

    This is *the* canonical order of the MIS ports: it reproduces the
    ``(degree, repr)`` tie-breaking of the reference implementations in
    :mod:`repro.graphs.independent_sets` bit-for-bit.  Inputs that are
    already indexed pass through unchanged.
    """
    if isinstance(graph, IndexedGraph):
        return graph
    return graph.freeze(order=sorted(graph.vertices, key=repr))


# ----------------------------------------------------------------------
# bitset independent-set kernels
# ----------------------------------------------------------------------
def first_fit_mis_ids(graph: IndexedGraph, order: Iterable[int]) -> List[int]:
    """Greedy maximal IS along ``order`` (ids); returns chosen ids in order.

    The bitset formulation of the locality-1 SLOCAL algorithm: a vertex
    joins iff none of its already-processed neighbors joined.

    Views work unchanged: with ``order`` drawn from the view's alive ids
    (:meth:`IndexedGraph.vertex_ids`) the raw parent rows are safe because
    the selected mask only ever contains processed — hence alive — ids.
    """
    bitsets = graph._bitsets
    selected_mask = 0
    chosen: List[int] = []
    for i in order:
        if not (bitsets[i] & selected_mask):
            selected_mask |= 1 << i
            chosen.append(i)
    return chosen


def min_degree_greedy_ids(graph: IndexedGraph) -> List[int]:
    """Minimum-degree greedy IS via a bucket queue; ties break to smallest id.

    Repeatedly takes an alive vertex of minimum residual degree and deletes
    its closed neighborhood.  Buckets are keyed by residual degree and the
    minimum pointer only moves down when a decrement creates a lower
    bucket, so the queue maintenance is O(m) overall instead of the
    O(n) min-scan per selection of the reference implementation.  With
    labels interned in ``sorted(..., key=repr)`` order this reproduces the
    reference tie-breaking ``(degree, repr)`` exactly.

    The kernel never *materializes* the lazy CSR arrays: on a fresh frozen
    snapshot (``_from_bitsets`` / ``_permuted``) it runs bitset-only —
    residual degrees are popcounts of alive-masked rows and neighborhoods
    are walked with low-bit extraction — so the one-time CSR build that
    used to dominate the reduction's oracle cost is gone.  When the CSR
    arrays already exist (e.g. the graph was frozen from a mutable
    :class:`Graph`) the walk uses them instead, which is faster per
    neighbor; both paths select identically.

    Accepts an :class:`IndexedSubgraph` view: the selection then runs on
    the induced subgraph (masked initial degrees, dead ids never enter the
    queue) and returns parent ids, matching what a from-scratch rebuild of
    the subgraph would select.
    """
    base, mask = _base_and_mask(graph)
    if base._indptr is not None:
        return _min_degree_greedy_csr(base, mask)
    return _min_degree_greedy_bitset(base, mask)


def _min_degree_greedy_bitset(base: IndexedGraph, mask: Optional[int]) -> List[int]:
    """Bitset-only selection loop (no CSR access at all)."""
    n = base.num_vertices()
    if n == 0:
        return []
    bitsets = base._bitsets
    alive = (1 << n) - 1 if mask is None else mask
    if not alive:
        return []
    ids = list(iter_bits(alive))
    deg = [0] * n
    for i in ids:
        deg[i] = _popcount(bitsets[i] & alive)
    buckets: List[Set[int]] = [set() for _ in range(max(deg[i] for i in ids) + 1)]
    for i in ids:
        buckets[deg[i]].add(i)
    min_deg = 0
    chosen: List[int] = []
    while alive:
        while not buckets[min_deg]:
            min_deg += 1
        v = min(buckets[min_deg])
        chosen.append(v)
        # Delete N[v]: v itself plus every alive neighbor.
        buckets[min_deg].discard(v)
        dead = bitsets[v] & alive
        alive &= ~(dead | (1 << v))
        m = dead
        while m:
            low = m & -m
            buckets[deg[low.bit_length() - 1]].discard(low.bit_length() - 1)
            m ^= low
        m = dead
        while m:
            low = m & -m
            u = low.bit_length() - 1
            m ^= low
            survivors = bitsets[u] & alive
            while survivors:
                wl = survivors & -survivors
                w = wl.bit_length() - 1
                survivors ^= wl
                d = deg[w]
                buckets[d].discard(w)
                deg[w] = d - 1
                buckets[d - 1].add(w)
                if d - 1 < min_deg:
                    min_deg = d - 1
    return sorted(chosen)


def _min_degree_greedy_csr(base: IndexedGraph, mask: Optional[int]) -> List[int]:
    """CSR-walking selection loop, used when the arrays are already built."""
    n = base.num_vertices()
    if n == 0:
        return []
    if mask is None:
        deg = base.degrees()
        ids: Sequence[int] = range(n)
        alive = bytearray([1]) * n
        remaining = n
    else:
        bitsets = base._bitsets
        ids = list(iter_bits(mask))
        if not ids:
            return []
        deg = [0] * n
        alive = bytearray(n)
        for i in ids:
            deg[i] = _popcount(bitsets[i] & mask)
            alive[i] = 1
        remaining = len(ids)
    buckets: List[Set[int]] = [set() for _ in range(max(deg[i] for i in ids) + 1)]
    for i in ids:
        buckets[deg[i]].add(i)
    min_deg = 0
    chosen: List[int] = []
    neighbors = base.neighbors
    while remaining:
        while not buckets[min_deg]:
            min_deg += 1
        v = min(buckets[min_deg])
        chosen.append(v)
        # Delete N[v]: v itself plus every alive neighbor.
        buckets[min_deg].discard(v)
        alive[v] = 0
        remaining -= 1
        dead: List[int] = []
        for u in neighbors(v):
            if alive[u]:
                alive[u] = 0
                buckets[deg[u]].discard(u)
                remaining -= 1
                dead.append(u)
        for u in dead:
            for w in neighbors(u):
                if alive[w]:
                    d = deg[w]
                    buckets[d].discard(w)
                    deg[w] = d - 1
                    buckets[d - 1].add(w)
                    if d - 1 < min_deg:
                        min_deg = d - 1
    return sorted(chosen)


def maximum_independent_set_mask(graph: IndexedGraph) -> int:
    """Exact maximum IS as a bitset, by memoized branch-and-bound.

    The recurrence is ``α(G) = max(α(G − N[v]) + 1, α(G − v))`` branching on
    a maximum-residual-degree vertex (ties to the smallest id), with
    degree-0/1 vertices taken greedily — the same search tree as the
    reference solver in :mod:`repro.graphs.independent_sets`, but with the
    active set, the memo keys and all neighborhood algebra on bitsets.

    Accepts an :class:`IndexedSubgraph` view, in which case the search
    starts from the view's alive mask and the returned bitset is over
    parent ids.
    """
    base, mask = _base_and_mask(graph)
    adj = base._bitsets
    memo: Dict[int, int] = {}

    def solve(active: int) -> int:
        if not active:
            return 0
        cached = memo.get(active)
        if cached is not None:
            return cached
        best_i = -1
        best_d = -1
        m = active
        while m:
            low = m & -m
            i = low.bit_length() - 1
            nb = adj[i] & active
            d = _popcount(nb)
            if d == 0:
                result = solve(active ^ low) | low
                memo[active] = result
                return result
            if d == 1:
                result = solve(active & ~(low | nb)) | low
                memo[active] = result
                return result
            if d > best_d:
                best_d = d
                best_i = i
            m ^= low
        bit = 1 << best_i
        with_v = solve(active & ~(bit | adj[best_i])) | bit
        without_v = solve(active ^ bit)
        result = with_v if _popcount(with_v) >= _popcount(without_v) else without_v
        memo[active] = result
        return result

    full = (1 << base.num_vertices()) - 1
    return solve(full if mask is None else mask)
