"""Immutable indexed graph: interned vertices, CSR adjacency, bitset rows.

:class:`IndexedGraph` is the performance substrate of the library.  It
interns arbitrary hashable vertex labels to dense integer ids and stores
the adjacency structure twice:

* as CSR-style arrays (``indptr`` / ``indices``) for cache-friendly
  neighbor iteration, and
* as one Python arbitrary-precision integer per vertex (bit ``j`` of row
  ``i`` is set iff ``{i, j}`` is an edge) so that set algebra on whole
  neighborhoods — the inner loop of every independent-set algorithm —
  becomes single ``&``/``|`` machine-word-parallel operations.

Interning / determinism contract
--------------------------------
The interning table is fixed at construction time and never changes: id
``i`` maps to ``labels()[i]`` forever.  When built via :meth:`from_graph`
(or :meth:`Graph.freeze`) the default order is the *insertion order* of the
mutable :class:`~repro.graphs.graph.Graph`, so any deterministically
constructed graph freezes to a deterministic ``IndexedGraph``; callers that
need a canonical order independent of construction history pass an explicit
``order`` (the MIS ports use ``sorted(vertices, key=repr)`` to reproduce
the tie-breaking of the reference implementations bit-for-bit).  CSR rows
are sorted ascending by id, so neighbor iteration order, bitset contents
and :meth:`to_graph` round-trips are all functions of the interning table
alone.

The structure is immutable by design: algorithms that need to "remove"
vertices track an ``alive`` bitmask instead of mutating the graph, which is
both faster and side-effect free.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError

Vertex = Hashable

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def popcount(x: int) -> int:
    """Return the number of set bits of ``x``."""
    return _popcount(x)


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class IndexedGraph:
    """An immutable graph over interned integer ids (see module docstring)."""

    __slots__ = ("_labels", "_index", "_indptr", "_indices", "_bitsets", "_num_edges")

    def __init__(self, labels: Sequence[Vertex], rows: Sequence[Iterable[int]]) -> None:
        """Build from interned ``labels`` and per-vertex neighbor-id ``rows``.

        ``rows[i]`` lists the neighbor ids of vertex ``i``; rows must be
        symmetric and loop-free.  Loops, out-of-range ids and degree-sum
        parity are checked; full symmetry is the caller's contract (every
        in-library constructor builds symmetric rows).
        """
        if len(labels) != len(rows):
            raise GraphError(
                f"labels/rows length mismatch ({len(labels)} != {len(rows)})"
            )
        self._labels: Tuple[Vertex, ...] = tuple(labels)
        self._index: Dict[Vertex, int] = {v: i for i, v in enumerate(self._labels)}
        if len(self._index) != len(self._labels):
            raise GraphError("duplicate vertex labels")
        indptr = array("l", [0])
        indices = array("l")
        bitsets: List[int] = []
        total = 0
        n = len(self._labels)
        for i, row in enumerate(rows):
            ids = sorted(set(row))
            if ids and (ids[0] < 0 or ids[-1] >= n):
                raise GraphError(f"neighbor id out of range in row {i}")
            bits = 0
            for j in ids:
                if j == i:
                    raise GraphError(f"self-loop on id {i}")
                bits |= 1 << j
            indices.extend(ids)
            bitsets.append(bits)
            total += len(ids)
            indptr.append(len(indices))
        if total % 2:
            raise GraphError("adjacency rows are not symmetric (odd degree sum)")
        self._indptr = indptr
        self._indices = indices
        self._bitsets = bitsets
        self._num_edges = total // 2

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph, order: Optional[Iterable[Vertex]] = None) -> "IndexedGraph":
        """Intern ``graph`` (a mutable :class:`Graph`); see :meth:`Graph.freeze`."""
        if order is None:
            labels = list(graph)
        else:
            labels = list(order)
            if set(labels) != set(graph) or len(labels) != graph.num_vertices():
                raise GraphError("order must be a permutation of the vertex set")
        index = {v: i for i, v in enumerate(labels)}
        rows = [
            [index[u] for u in graph.adjacent(v)]
            for v in labels
        ]
        return cls(labels, rows)

    def to_graph(self):
        """Materialize a mutable :class:`Graph` with the original labels."""
        from repro.graphs.graph import Graph

        labels = self._labels
        adj = {
            labels[i]: {labels[j] for j in self.neighbors(i)}
            for i in range(len(labels))
        }
        return Graph._from_adjacency_unchecked(adj)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._labels)

    def num_edges(self) -> int:
        """Return ``|E|``."""
        return self._num_edges

    def labels(self) -> Tuple[Vertex, ...]:
        """The interning table: ``labels()[i]`` is the label of id ``i``."""
        return self._labels

    def label(self, i: int) -> Vertex:
        """Return the original label of id ``i``."""
        return self._labels[i]

    def index_of(self, label: Vertex) -> int:
        """Return the dense id of ``label``.

        Raises
        ------
        GraphError
            If the label is unknown.
        """
        try:
            return self._index[label]
        except KeyError:
            raise GraphError(f"vertex {label!r} not in graph") from None

    def degree(self, i: int) -> int:
        """Return the degree of id ``i``."""
        return self._indptr[i + 1] - self._indptr[i]

    def degrees(self) -> List[int]:
        """Return the degree of every vertex, indexed by id."""
        indptr = self._indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self._labels))]

    def max_degree(self) -> int:
        """Return Δ (0 for the empty graph)."""
        return max(self.degrees(), default=0)

    def neighbors(self, i: int) -> Sequence[int]:
        """Return the neighbor ids of ``i`` (sorted ascending, no copy of labels)."""
        return self._indices[self._indptr[i]:self._indptr[i + 1]]

    def neighbor_bitset(self, i: int) -> int:
        """Return the adjacency row of ``i`` as a Python-int bitset."""
        return self._bitsets[i]

    def bitsets(self) -> List[int]:
        """Return the list of all adjacency bitsets, indexed by id."""
        return self._bitsets

    def has_edge(self, i: int, j: int) -> bool:
        """Return ``True`` iff ids ``i`` and ``j`` are adjacent."""
        return bool((self._bitsets[i] >> j) & 1)

    def labels_for_mask(self, mask: int) -> Set[Vertex]:
        """Translate a bitset over ids back into a set of vertex labels."""
        labels = self._labels
        return {labels[i] for i in iter_bits(mask)}

    def mask_of(self, vertices: Iterable[Vertex]) -> int:
        """Translate an iterable of labels into a bitset over ids."""
        mask = 0
        for v in vertices:
            mask |= 1 << self.index_of(v)
        return mask

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def __contains__(self, label: Vertex) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexedGraph(n={self.num_vertices()}, m={self.num_edges()})"


def freeze_sorted(graph) -> "IndexedGraph":
    """Freeze a :class:`Graph` with vertices interned in ``repr`` order.

    This is *the* canonical order of the MIS ports: it reproduces the
    ``(degree, repr)`` tie-breaking of the reference implementations in
    :mod:`repro.graphs.independent_sets` bit-for-bit.  Inputs that are
    already indexed pass through unchanged.
    """
    if isinstance(graph, IndexedGraph):
        return graph
    return graph.freeze(order=sorted(graph.vertices, key=repr))


# ----------------------------------------------------------------------
# bitset independent-set kernels
# ----------------------------------------------------------------------
def first_fit_mis_ids(graph: IndexedGraph, order: Iterable[int]) -> List[int]:
    """Greedy maximal IS along ``order`` (ids); returns chosen ids in order.

    The bitset formulation of the locality-1 SLOCAL algorithm: a vertex
    joins iff none of its already-processed neighbors joined.
    """
    bitsets = graph._bitsets
    selected_mask = 0
    chosen: List[int] = []
    for i in order:
        if not (bitsets[i] & selected_mask):
            selected_mask |= 1 << i
            chosen.append(i)
    return chosen


def min_degree_greedy_ids(graph: IndexedGraph) -> List[int]:
    """Minimum-degree greedy IS via a bucket queue; ties break to smallest id.

    Repeatedly takes an alive vertex of minimum residual degree and deletes
    its closed neighborhood.  Buckets are keyed by residual degree and the
    minimum pointer only moves down when a decrement creates a lower
    bucket, so the queue maintenance is O(m) overall instead of the
    O(n) min-scan per selection of the reference implementation.  With
    labels interned in ``sorted(..., key=repr)`` order this reproduces the
    reference tie-breaking ``(degree, repr)`` exactly.
    """
    n = graph.num_vertices()
    if n == 0:
        return []
    deg = graph.degrees()
    buckets: List[Set[int]] = [set() for _ in range(max(deg) + 1)]
    for i, d in enumerate(deg):
        buckets[d].add(i)
    alive = bytearray([1]) * n
    remaining = n
    min_deg = 0
    chosen: List[int] = []
    neighbors = graph.neighbors
    while remaining:
        while not buckets[min_deg]:
            min_deg += 1
        v = min(buckets[min_deg])
        chosen.append(v)
        # Delete N[v]: v itself plus every alive neighbor.
        buckets[min_deg].discard(v)
        alive[v] = 0
        remaining -= 1
        dead: List[int] = []
        for u in neighbors(v):
            if alive[u]:
                alive[u] = 0
                buckets[deg[u]].discard(u)
                remaining -= 1
                dead.append(u)
        for u in dead:
            for w in neighbors(u):
                if alive[w]:
                    d = deg[w]
                    buckets[d].discard(w)
                    deg[w] = d - 1
                    buckets[d - 1].add(w)
                    if d - 1 < min_deg:
                        min_deg = d - 1
    return sorted(chosen)


def maximum_independent_set_mask(graph: IndexedGraph) -> int:
    """Exact maximum IS as a bitset, by memoized branch-and-bound.

    The recurrence is ``α(G) = max(α(G − N[v]) + 1, α(G − v))`` branching on
    a maximum-residual-degree vertex (ties to the smallest id), with
    degree-0/1 vertices taken greedily — the same search tree as the
    reference solver in :mod:`repro.graphs.independent_sets`, but with the
    active set, the memo keys and all neighborhood algebra on bitsets.
    """
    adj = graph._bitsets
    memo: Dict[int, int] = {}

    def solve(active: int) -> int:
        if not active:
            return 0
        cached = memo.get(active)
        if cached is not None:
            return cached
        best_i = -1
        best_d = -1
        m = active
        while m:
            low = m & -m
            i = low.bit_length() - 1
            nb = adj[i] & active
            d = _popcount(nb)
            if d == 0:
                result = solve(active ^ low) | low
                memo[active] = result
                return result
            if d == 1:
                result = solve(active & ~(low | nb)) | low
                memo[active] = result
                return result
            if d > best_d:
                best_d = d
                best_i = i
            m ^= low
        bit = 1 << best_i
        with_v = solve(active & ~(bit | adj[best_i])) | bit
        without_v = solve(active ^ bit)
        result = with_v if _popcount(with_v) >= _popcount(without_v) else without_v
        memo[active] = result
        return result

    return solve((1 << graph.num_vertices()) - 1)
