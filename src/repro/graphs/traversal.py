"""Breadth-first traversal utilities: distances, balls and components.

The SLOCAL model is defined in terms of *r-hop neighborhoods* ("balls"),
so these helpers are the geometric backbone of the simulator in
:mod:`repro.slocal`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

Vertex = Hashable


def bfs_distances(graph: Graph, source: Vertex, radius: Optional[int] = None) -> Dict[Vertex, int]:
    """Return hop distances from ``source`` to every reachable vertex.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Starting vertex; must be present in ``graph``.
    radius:
        If given, the traversal stops after ``radius`` hops and only
        vertices within that distance are reported.

    Returns
    -------
    dict
        Mapping ``vertex -> distance`` with ``distances[source] == 0``.
    """
    if source not in graph:
        raise GraphError(f"source vertex {source!r} not in graph")
    distances: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d = distances[u]
        if radius is not None and d >= radius:
            continue
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = d + 1
                queue.append(v)
    return distances


def ball(graph: Graph, center: Vertex, radius: int) -> Set[Vertex]:
    """Return the set of vertices at hop distance ≤ ``radius`` from ``center``.

    ``radius = 0`` returns ``{center}``.
    """
    if radius < 0:
        raise GraphError(f"radius must be non-negative, got {radius}")
    return set(bfs_distances(graph, center, radius=radius))


def ball_subgraph(graph: Graph, center: Vertex, radius: int) -> Graph:
    """Return the subgraph induced on the ``radius``-ball around ``center``.

    This is exactly the topological information an SLOCAL algorithm with
    locality ``radius`` may inspect when processing ``center``.
    """
    return graph.subgraph(ball(graph, center, radius))


def eccentricity(graph: Graph, vertex: Vertex) -> int:
    """Return the maximum distance from ``vertex`` to any reachable vertex."""
    return max(bfs_distances(graph, vertex).values())


def diameter(graph: Graph) -> int:
    """Return the diameter of a connected graph.

    Raises
    ------
    GraphError
        If the graph is empty or disconnected.
    """
    verts = graph.vertices
    if not verts:
        raise GraphError("diameter of an empty graph is undefined")
    best = 0
    for v in verts:
        dist = bfs_distances(graph, v)
        if len(dist) != len(verts):
            raise GraphError("diameter of a disconnected graph is undefined")
        best = max(best, max(dist.values()))
    return best


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """Return the connected components as a list of vertex sets."""
    remaining = graph.vertices
    components: List[Set[Vertex]] = []
    while remaining:
        start = next(iter(remaining))
        comp = set(bfs_distances(graph, start))
        components.append(comp)
        remaining -= comp
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if the graph is connected (empty graphs count as connected)."""
    if graph.num_vertices() == 0:
        return True
    return len(connected_components(graph)) == 1


def shortest_path(graph: Graph, source: Vertex, target: Vertex) -> Optional[List[Vertex]]:
    """Return one shortest path from ``source`` to ``target`` or ``None``.

    The path is returned as a list of vertices including both endpoints.
    """
    if source not in graph:
        raise GraphError(f"source vertex {source!r} not in graph")
    if target not in graph:
        raise GraphError(f"target vertex {target!r} not in graph")
    if source == target:
        return [source]
    parents: Dict[Vertex, Vertex] = {}
    queue = deque([source])
    seen = {source}
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in seen:
                continue
            parents[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            seen.add(v)
            queue.append(v)
    return None


def vertices_within_distance(
    graph: Graph, centers: Iterable[Vertex], radius: int
) -> Set[Vertex]:
    """Return the union of ``radius``-balls around every vertex in ``centers``."""
    result: Set[Vertex] = set()
    for c in centers:
        result |= ball(graph, c, radius)
    return result
