"""Hypergraph substrate: data structure, generators, operations, validation, IO."""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    almost_uniform_hypergraph,
    colorable_almost_uniform_hypergraph,
    graph_as_hypergraph,
    interval_hypergraph,
    random_interval_hypergraph,
    sunflower_hypergraph,
    uniform_random_hypergraph,
)
from repro.hypergraph.operations import (
    disjoint_union,
    dual_hypergraph,
    edge_intersection_graph,
    induced_subhypergraph,
    remove_happy_edges,
)
from repro.hypergraph.validation import (
    almost_uniformity_parameters,
    has_polynomially_many_edges,
    is_almost_uniform,
    is_uniform,
    validate_hypergraph,
)
from repro.hypergraph.io import (
    hypergraph_from_dict,
    hypergraph_from_edge_lines,
    hypergraph_from_json,
    hypergraph_to_dict,
    hypergraph_to_edge_lines,
    hypergraph_to_json,
    reduction_result_from_dict,
    reduction_result_to_dict,
)

__all__ = [
    "Hypergraph",
    "almost_uniform_hypergraph",
    "colorable_almost_uniform_hypergraph",
    "graph_as_hypergraph",
    "interval_hypergraph",
    "random_interval_hypergraph",
    "sunflower_hypergraph",
    "uniform_random_hypergraph",
    "disjoint_union",
    "dual_hypergraph",
    "edge_intersection_graph",
    "induced_subhypergraph",
    "remove_happy_edges",
    "almost_uniformity_parameters",
    "has_polynomially_many_edges",
    "is_almost_uniform",
    "is_uniform",
    "validate_hypergraph",
    "hypergraph_from_dict",
    "hypergraph_from_edge_lines",
    "hypergraph_from_json",
    "hypergraph_to_dict",
    "hypergraph_to_edge_lines",
    "hypergraph_to_json",
    "reduction_result_from_dict",
    "reduction_result_to_dict",
]
