"""Hypergraph generators for the workloads of the benchmark harness.

The hardness reduction of the paper (Theorem 1.2) is stated for
*almost-uniform* hypergraphs: there exists a ``k`` with
``k ≤ |e| ≤ (1 + ε)·k`` for every hyperedge ``e``, the number of
hyperedges is polynomial in ``n``, and the hypergraph admits a
conflict-free ``k``-coloring with ``k = polylog(n)`` in which every vertex
receives a single color.  The generators in this module produce such
instances (with a planted conflict-free coloring so that the premise of
Theorem 1.1's analysis is guaranteed to hold), plus the interval
hypergraphs of [DN18] and generic random hypergraphs for stress testing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    """Normalize a seed-or-Random argument into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def uniform_random_hypergraph(
    n: int,
    m: int,
    edge_size: int,
    seed: Optional[Union[int, random.Random]] = None,
) -> Hypergraph:
    """Return a hypergraph with ``m`` random hyperedges of exactly ``edge_size`` vertices.

    Vertices are ``0..n-1``.  Hyperedges are sampled uniformly without
    replacement within each edge; distinct edges may coincide as vertex sets
    (they keep distinct ids).
    """
    if edge_size <= 0:
        raise HypergraphError(f"edge_size must be positive, got {edge_size}")
    if edge_size > n:
        raise HypergraphError(f"edge_size {edge_size} exceeds number of vertices {n}")
    rng = _rng(seed)
    h = Hypergraph(vertices=range(n))
    universe = list(range(n))
    for i in range(m):
        h.add_edge(rng.sample(universe, edge_size), edge_id=i)
    return h


def almost_uniform_hypergraph(
    n: int,
    m: int,
    k: int,
    epsilon: float = 0.5,
    seed: Optional[Union[int, random.Random]] = None,
) -> Hypergraph:
    """Return an almost-uniform hypergraph: each edge has size in ``[k, (1+ε)k]``.

    Parameters
    ----------
    n:
        Number of vertices (labelled ``0..n-1``).
    m:
        Number of hyperedges.
    k:
        Lower bound on the edge sizes (the uniformity parameter of the paper).
    epsilon:
        Almost-uniformity slack, ``0 < ε ≤ 1``.
    seed:
        Seed or :class:`random.Random` for reproducibility.
    """
    if not 0 < epsilon <= 1:
        raise HypergraphError(f"epsilon must lie in (0, 1], got {epsilon}")
    if k <= 0:
        raise HypergraphError(f"k must be positive, got {k}")
    max_size = int((1 + epsilon) * k)
    if max_size > n:
        raise HypergraphError(
            f"(1+epsilon)*k = {max_size} exceeds the number of vertices {n}"
        )
    rng = _rng(seed)
    h = Hypergraph(vertices=range(n))
    universe = list(range(n))
    for i in range(m):
        size = rng.randint(k, max_size)
        h.add_edge(rng.sample(universe, size), edge_id=i)
    return h


def colorable_almost_uniform_hypergraph(
    n: int,
    m: int,
    k: int,
    epsilon: float = 0.5,
    seed: Optional[Union[int, random.Random]] = None,
) -> Tuple[Hypergraph, Dict[int, int]]:
    """Return an almost-uniform hypergraph *together with* a planted CF k-coloring.

    The hardness statement of Theorem 1.2 only concerns hypergraphs that
    admit a conflict-free ``k``-coloring in which each vertex has a single
    color; the reduction's phase analysis relies on this premise.  This
    generator therefore plants such a coloring: vertices are colored
    uniformly at random with ``{1, …, k}`` and each hyperedge is built so
    that it contains exactly one vertex of some color.

    Returns
    -------
    (hypergraph, planted_coloring)
        ``planted_coloring`` maps every vertex to a color in ``1..k`` and is
        a conflict-free coloring of the returned hypergraph.
    """
    if not 0 < epsilon <= 1:
        raise HypergraphError(f"epsilon must lie in (0, 1], got {epsilon}")
    if k <= 0:
        raise HypergraphError(f"k must be positive, got {k}")
    max_size = int((1 + epsilon) * k)
    if max_size > n:
        raise HypergraphError(
            f"(1+epsilon)*k = {max_size} exceeds the number of vertices {n}"
        )
    if n < k:
        raise HypergraphError(f"need at least k={k} vertices, got {n}")
    rng = _rng(seed)
    # Plant the coloring: make sure every color class is non-empty so that
    # any color can serve as the unique color of an edge.
    colors = list(range(1, k + 1))
    planted: Dict[int, int] = {}
    for v in range(n):
        planted[v] = colors[v % k] if v < k else rng.choice(colors)
    by_color: Dict[int, List[int]] = {c: [] for c in colors}
    for v, c in planted.items():
        by_color[c].append(v)

    h = Hypergraph(vertices=range(n))
    pool_size = {c: n - len(by_color[c]) for c in colors}
    for i in range(m):
        size = rng.randint(k, max_size)
        # The edge needs `size - 1` members outside the unique color class,
        # so only colors with a large enough complement are feasible.  If the
        # drawn size is infeasible for every color, shrink it towards k.
        feasible = [c for c in colors if pool_size[c] >= size - 1]
        if not feasible:
            size = max(k, 1 + max(pool_size.values()))
            feasible = [c for c in colors if pool_size[c] >= size - 1]
            if not feasible:
                raise HypergraphError(
                    "not enough vertices outside every color class to build edges of "
                    f"size {k}; increase n or decrease k"
                )
        unique_color = rng.choice(feasible)
        unique_vertex = rng.choice(by_color[unique_color])
        # The remaining members must avoid color `unique_color` so that
        # `unique_vertex` stays the unique vertex of that color in the edge.
        pool = [v for v in range(n) if planted[v] != unique_color and v != unique_vertex]
        members = rng.sample(pool, size - 1) + [unique_vertex]
        h.add_edge(members, edge_id=i)
    return h, planted


def interval_hypergraph(
    points: Sequence[float],
    intervals: Sequence[Tuple[float, float]],
) -> Hypergraph:
    """Return the interval hypergraph of ``points`` with respect to ``intervals``.

    Vertices are the indices of ``points``; hyperedge ``i`` contains every
    point index lying inside the closed interval ``intervals[i]``.  Empty
    intervals (containing no point) are skipped, because hyperedges must be
    non-empty.  This is the setting of [DN18], which the paper's reduction
    technique is adapted from.
    """
    h = Hypergraph(vertices=range(len(points)))
    next_id = 0
    for lo, hi in intervals:
        if lo > hi:
            raise HypergraphError(f"interval ({lo}, {hi}) has lo > hi")
        members = [i for i, p in enumerate(points) if lo <= p <= hi]
        if members:
            h.add_edge(members, edge_id=next_id)
            next_id += 1
    return h


def random_interval_hypergraph(
    n_points: int,
    n_intervals: int,
    seed: Optional[Union[int, random.Random]] = None,
) -> Hypergraph:
    """Return an interval hypergraph over random points and random intervals in [0, 1]."""
    rng = _rng(seed)
    points = sorted(rng.random() for _ in range(n_points))
    intervals = []
    for _ in range(n_intervals):
        a, b = rng.random(), rng.random()
        intervals.append((min(a, b), max(a, b)))
    return interval_hypergraph(points, intervals)


def graph_as_hypergraph(graph) -> Hypergraph:
    """View a simple graph as a 2-uniform hypergraph (edges become hyperedges)."""
    h = Hypergraph(vertices=graph.vertices)
    for i, (u, v) in enumerate(sorted(graph.edges(), key=repr)):
        h.add_edge([u, v], edge_id=i)
    return h


def sunflower_hypergraph(n_petals: int, petal_size: int, core_size: int = 1) -> Hypergraph:
    """Return a sunflower: every pair of hyperedges intersects exactly in the core.

    The core vertices are ``("core", i)``; petal ``p`` additionally contains
    ``("petal", p, j)`` for ``j < petal_size``.  Useful as a structured
    adversarial instance: every edge shares the core, so a conflict-free
    coloring must make a core vertex or a private petal vertex unique.
    """
    if n_petals <= 0 or petal_size < 0 or core_size < 0:
        raise HypergraphError("sunflower parameters must be positive / non-negative")
    if petal_size == 0 and core_size == 0:
        raise HypergraphError("hyperedges would be empty")
    core = [("core", i) for i in range(core_size)]
    h = Hypergraph(vertices=core)
    for p in range(n_petals):
        petal = [("petal", p, j) for j in range(petal_size)]
        h.add_edge(core + petal, edge_id=p)
    return h
