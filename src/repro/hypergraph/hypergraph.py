"""Hypergraph data structure.

A hypergraph ``H = (V, E)`` consists of a vertex set and a family of
hyperedges, each of which is a non-empty subset of ``V``.  Hyperedges carry
stable identifiers so that the conflict-graph construction of the paper can
refer to "edge ``e``" unambiguously even when two hyperedges contain the
same vertex set (multi-hypergraphs are allowed, as the paper never forbids
them and the reduction treats each edge individually).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import HypergraphError

Vertex = Hashable
EdgeId = Hashable


class Hypergraph:
    """A hypergraph with identified hyperedges.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of hyperedges.  Each element is either a bare
        iterable of vertices (an edge id is assigned automatically) or a
        pair ``(edge_id, iterable_of_vertices)``.

    Examples
    --------
    >>> h = Hypergraph(edges=[(0, [1, 2, 3]), (1, [3, 4])])
    >>> h.edge_size(0)
    3
    >>> sorted(h.edges_containing(3))
    [0, 1]
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable = (),
    ) -> None:
        self._vertices: Set[Vertex] = set()
        self._edges: Dict[EdgeId, FrozenSet[Vertex]] = {}
        self._incidence: Dict[Vertex, Set[EdgeId]] = {}
        self._next_auto_id = 0
        # Incremental bookkeeping: the sorted edge-id list is cached until the
        # edge *family* changes (shrinking an edge in place keeps it valid),
        # Σ|e| is a running counter, and the edge-size histogram serves
        # rank()/min_edge_size() without scanning the edge family.
        self._edge_ids_cache: Optional[List[EdgeId]] = None
        self._total_edge_size: int = 0
        self._size_hist: Dict[int, int] = {}
        for v in vertices:
            self.add_vertex(v)
        for item in edges:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and not isinstance(item[0], (set, frozenset, list))
                and isinstance(item[1], (set, frozenset, list, tuple, range))
            ):
                edge_id, members = item
                self.add_edge(members, edge_id=edge_id)
            else:
                self.add_edge(item)

    # ------------------------------------------------------------------
    # incremental bookkeeping
    # ------------------------------------------------------------------
    def _size_added(self, size: int) -> None:
        """Record a new (or regrown) edge of ``size`` members."""
        self._total_edge_size += size
        self._size_hist[size] = self._size_hist.get(size, 0) + 1

    def _size_dropped(self, size: int) -> None:
        """Forget one edge that had ``size`` members."""
        self._total_edge_size -= size
        count = self._size_hist[size] - 1
        if count:
            self._size_hist[size] = count
        else:
            del self._size_hist[size]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._vertices:
            self._vertices.add(v)
            self._incidence[v] = set()

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex in ``vertices``."""
        for v in vertices:
            self.add_vertex(v)

    def add_edge(self, members: Iterable[Vertex], edge_id: Optional[EdgeId] = None) -> EdgeId:
        """Add a hyperedge with vertex set ``members`` and return its id.

        Member vertices that are not yet present are added automatically.

        Raises
        ------
        HypergraphError
            If ``members`` is empty or ``edge_id`` is already in use.
        """
        member_set = frozenset(members)
        if not member_set:
            raise HypergraphError("hyperedges must be non-empty")
        if edge_id is None:
            while self._next_auto_id in self._edges:
                self._next_auto_id += 1
            edge_id = self._next_auto_id
            self._next_auto_id += 1
        if edge_id in self._edges:
            raise HypergraphError(f"edge id {edge_id!r} already in use")
        for v in member_set:
            self.add_vertex(v)
        self._edges[edge_id] = member_set
        for v in member_set:
            self._incidence[v].add(edge_id)
        self._size_added(len(member_set))
        self._edge_ids_cache = None
        return edge_id

    def remove_edge(self, edge_id: EdgeId) -> None:
        """Remove the hyperedge ``edge_id`` (its vertices are kept).

        Raises
        ------
        HypergraphError
            If no edge with this id exists.
        """
        if edge_id not in self._edges:
            raise HypergraphError(f"edge id {edge_id!r} not in hypergraph")
        for v in self._edges[edge_id]:
            self._incidence[v].discard(edge_id)
        self._size_dropped(len(self._edges[edge_id]))
        del self._edges[edge_id]
        self._edge_ids_cache = None

    def remove_edges(self, edge_ids: Iterable[EdgeId]) -> None:
        """Remove every hyperedge in ``edge_ids``."""
        for e in list(edge_ids):
            self.remove_edge(e)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` from the vertex set and from every edge.

        Incident edges are shrunk in place (their ids, and the incidence
        sets of their other members, are untouched); edges that would
        become empty are removed entirely.

        Raises
        ------
        HypergraphError
            If the vertex is not present.
        """
        if v not in self._vertices:
            raise HypergraphError(f"vertex {v!r} not in hypergraph")
        for e in list(self._incidence[v]):
            shrunk = self._edges[e] - {v}
            if shrunk:
                self._edges[e] = shrunk
                self._size_dropped(len(shrunk) + 1)
                self._size_added(len(shrunk))
            else:
                self.remove_edge(e)
        self._vertices.discard(v)
        del self._incidence[v]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Set[Vertex]:
        """The vertex set (a copy)."""
        return set(self._vertices)

    @property
    def edge_ids(self) -> List[EdgeId]:
        """The list of hyperedge identifiers (sorted by ``repr`` for determinism).

        The sorted order is computed once and cached until an edge is added
        or removed, so the per-phase scans of the reduction pay O(m) per
        access instead of O(m log m).  A fresh list is returned each time;
        callers may mutate it freely.
        """
        if self._edge_ids_cache is None:
            self._edge_ids_cache = sorted(self._edges, key=repr)
        return list(self._edge_ids_cache)

    def edge(self, edge_id: EdgeId) -> FrozenSet[Vertex]:
        """Return the member set of hyperedge ``edge_id``."""
        if edge_id not in self._edges:
            raise HypergraphError(f"edge id {edge_id!r} not in hypergraph")
        return self._edges[edge_id]

    def edges(self) -> Iterator[Tuple[EdgeId, FrozenSet[Vertex]]]:
        """Iterate ``(edge_id, member_set)`` pairs in deterministic order."""
        for e in self.edge_ids:
            yield e, self._edges[e]

    def has_edge(self, edge_id: EdgeId) -> bool:
        """Return ``True`` if an edge with this id exists."""
        return edge_id in self._edges

    def has_vertex(self, v: Vertex) -> bool:
        """Return ``True`` if ``v`` is a vertex of the hypergraph."""
        return v in self._vertices

    def edge_size(self, edge_id: EdgeId) -> int:
        """Return ``|e|`` for hyperedge ``edge_id``."""
        return len(self.edge(edge_id))

    def edges_containing(self, v: Vertex) -> Set[EdgeId]:
        """Return the ids of every hyperedge containing ``v``."""
        if v not in self._vertices:
            raise HypergraphError(f"vertex {v!r} not in hypergraph")
        return set(self._incidence[v])

    def vertex_degree(self, v: Vertex) -> int:
        """Return the number of hyperedges containing ``v``."""
        return len(self.edges_containing(v))

    def num_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._vertices)

    def num_edges(self) -> int:
        """Return ``m = |E|``."""
        return len(self._edges)

    def rank(self) -> int:
        """Return the maximum hyperedge size (0 for edgeless hypergraphs).

        Served from the incrementally maintained size histogram: O(number
        of distinct edge sizes), not O(m).
        """
        if not self._size_hist:
            return 0
        return max(self._size_hist)

    def min_edge_size(self) -> int:
        """Return the minimum hyperedge size (0 for edgeless hypergraphs).

        Served from the incrementally maintained size histogram, like
        :meth:`rank`.
        """
        if not self._size_hist:
            return 0
        return min(self._size_hist)

    def total_edge_size(self) -> int:
        """Return ``Σ_e |e|`` — the number of incidences (O(1), counter-maintained)."""
        return self._total_edge_size

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return all vertices that co-occur with ``v`` in some hyperedge."""
        result: Set[Vertex] = set()
        for e in self.edges_containing(v):
            result |= self._edges[e]
        result.discard(v)
        return result

    def __contains__(self, v: Vertex) -> bool:
        return v in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypergraph(n={self.num_vertices()}, m={self.num_edges()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def copy(self) -> "Hypergraph":
        """Return a deep copy (edge ids are preserved)."""
        h = Hypergraph(vertices=self._vertices)
        for e, members in self._edges.items():
            h.add_edge(members, edge_id=e)
        return h

    def restrict_to_edges(self, edge_ids: Iterable[EdgeId]) -> "Hypergraph":
        """Return the hypergraph on the same vertex set keeping only ``edge_ids``.

        This is the ``H_i = (V, E_i)`` operation of the reduction: the
        vertex set is kept intact while the edge family shrinks.
        """
        keep = set(edge_ids)
        unknown = keep - set(self._edges)
        if unknown:
            raise HypergraphError(f"unknown edge ids: {sorted(unknown, key=repr)!r}")
        h = Hypergraph(vertices=self._vertices)
        for e in keep:
            h.add_edge(self._edges[e], edge_id=e)
        return h

    def primal_graph(self):
        """Return the primal (2-section) graph: vertices adjacent iff they share an edge."""
        from repro.graphs.graph import Graph

        g = Graph(vertices=self._vertices)
        for members in self._edges.values():
            members_list = sorted(members, key=repr)
            for i, u in enumerate(members_list):
                for v in members_list[i + 1:]:
                    if not g.has_edge(u, v):
                        g.add_edge(u, v)
        return g

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-friendly dictionary."""
        return {
            "vertices": sorted(self._vertices, key=repr),
            "edges": {repr(e): sorted(members, key=repr) for e, members in self._edges.items()},
            "edge_ids": [e for e in self.edge_ids],
        }

    @classmethod
    def from_edge_list(cls, edge_list: Iterable[Iterable[Vertex]]) -> "Hypergraph":
        """Build a hypergraph from a bare list of member iterables (ids are 0,1,2,…)."""
        h = cls()
        for i, members in enumerate(edge_list):
            h.add_edge(members, edge_id=i)
        return h
