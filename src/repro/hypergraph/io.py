"""(De)serialization of hypergraphs (and reduction results) to JSON-friendly data.

Besides the hypergraph exchange format, this module round-trips
:class:`~repro.core.reduction.ReductionResult` — the campaign runtime's
artifact store (:mod:`repro.runtime.store`) persists one such summary per
task, so the helpers live here next to the other (de)serializers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.exceptions import HypergraphError, ReproError
from repro.hypergraph.hypergraph import Hypergraph


def hypergraph_to_dict(hypergraph: Hypergraph) -> Dict[str, object]:
    """Serialize a hypergraph whose vertices and edge ids are JSON-representable.

    The format is ``{"vertices": [...], "edges": [[edge_id, [members...]], ...]}``.
    Vertices and edge ids must round-trip through JSON (ints, strings, …);
    tuples are not supported by this exchange format.
    """
    return {
        "vertices": sorted(hypergraph.vertices, key=repr),
        "edges": [[e, sorted(members, key=repr)] for e, members in hypergraph.edges()],
    }


def hypergraph_from_dict(data: Dict[str, object]) -> Hypergraph:
    """Inverse of :func:`hypergraph_to_dict`."""
    if "edges" not in data:
        raise HypergraphError("missing 'edges' key")
    h = Hypergraph(vertices=data.get("vertices", ()))
    for item in data["edges"]:
        if len(item) != 2:
            raise HypergraphError(f"edge entry must be [edge_id, members], got {item!r}")
        edge_id, members = item
        h.add_edge(members, edge_id=edge_id)
    return h


def hypergraph_to_json(hypergraph: Hypergraph) -> str:
    """Serialize to a JSON string."""
    return json.dumps(hypergraph_to_dict(hypergraph), sort_keys=True)


def hypergraph_from_json(text: str) -> Hypergraph:
    """Inverse of :func:`hypergraph_to_json`."""
    return hypergraph_from_dict(json.loads(text))


def hypergraph_to_edge_lines(hypergraph: Hypergraph) -> List[str]:
    """Render one whitespace-separated line per hyperedge (vertices as ``str``).

    Edge ids are not preserved; the line index becomes the edge id on parse.
    """
    return [" ".join(str(v) for v in sorted(members, key=repr)) for _, members in hypergraph.edges()]


def _encode_atom(value):
    """JSON-encode a vertex or edge id, keeping tuples distinguishable from lists.

    Plain JSON scalars pass through; tuples (e.g. the sunflower generator's
    ``("core", 0)`` vertices) become ``{"__tuple__": [...]}`` so that
    :func:`_decode_atom` can reconstruct them exactly.
    """
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_atom(item) for item in value]}
    return value


def _decode_atom(value):
    """Inverse of :func:`_encode_atom`."""
    if isinstance(value, dict):
        if set(value) != {"__tuple__"}:
            raise ReproError(f"malformed encoded atom {value!r}")
        return tuple(_decode_atom(item) for item in value["__tuple__"])
    return value


def reduction_result_to_dict(result) -> Dict[str, Any]:
    """Serialize a :class:`~repro.core.reduction.ReductionResult` to JSON-friendly data.

    Vertices and edge ids must be JSON-representable (ints, strings, …) or
    tuples thereof (encoded via a ``{"__tuple__": [...]}`` marker); colors
    are the reduction's phase-private ``(phase, palette_color)`` pairs and
    are stored as two-element lists.  The multicoloring is stored as a
    sorted list of ``[vertex, [[phase, color], ...]]`` pairs rather than a
    JSON object so that integer vertices survive the round trip unchanged.
    """
    return {
        "k": result.k,
        "lam": result.lam,
        "phase_bound": result.phase_bound,
        "color_bound": result.color_bound,
        "multicoloring": [
            [_encode_atom(v), sorted([phase, c] for phase, c in colors)]
            for v, colors in sorted(
                result.multicoloring.as_dict().items(), key=lambda item: repr(item[0])
            )
        ],
        "phases": [
            {
                "phase": p.phase,
                "edges_before": p.edges_before,
                "edges_after": p.edges_after,
                "independent_set_size": p.independent_set_size,
                "happy_edges": [
                    _encode_atom(e) for e in sorted(p.happy_edges, key=repr)
                ],
                "conflict_graph_vertices": p.conflict_graph_vertices,
                "conflict_graph_edges": p.conflict_graph_edges,
                "guaranteed_edges_after": p.guaranteed_edges_after,
            }
            for p in result.phases
        ],
    }


def reduction_result_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`reduction_result_to_dict`.

    Returns a :class:`~repro.core.reduction.ReductionResult` that compares
    equal to the serialized one (multicoloring, phase records and bounds).
    """
    from repro.coloring.multicoloring import Multicoloring
    from repro.core.reduction import PhaseRecord, ReductionResult

    for key in ("k", "lam", "phase_bound", "color_bound", "multicoloring", "phases"):
        if key not in data:
            raise ReproError(f"reduction result is missing the {key!r} field")
    multicoloring = Multicoloring()
    for item in data["multicoloring"]:
        if len(item) != 2:
            raise ReproError(
                f"multicoloring entry must be [vertex, colors], got {item!r}"
            )
        vertex, colors = item
        for color in colors:
            if len(color) != 2:
                raise ReproError(
                    f"color must be a [phase, palette_color] pair, got {color!r}"
                )
            multicoloring.add_color(_decode_atom(vertex), (color[0], color[1]))
    phases = [
        PhaseRecord(
            phase=p["phase"],
            edges_before=p["edges_before"],
            edges_after=p["edges_after"],
            independent_set_size=p["independent_set_size"],
            happy_edges={_decode_atom(e) for e in p["happy_edges"]},
            conflict_graph_vertices=p["conflict_graph_vertices"],
            conflict_graph_edges=p["conflict_graph_edges"],
            guaranteed_edges_after=p["guaranteed_edges_after"],
        )
        for p in data["phases"]
    ]
    return ReductionResult(
        multicoloring=multicoloring,
        phases=phases,
        k=data["k"],
        lam=data["lam"],
        phase_bound=data["phase_bound"],
        color_bound=data["color_bound"],
    )


def hypergraph_from_edge_lines(lines) -> Hypergraph:
    """Parse the format produced by :func:`hypergraph_to_edge_lines`.

    Vertex tokens are parsed as ints when possible and kept as strings
    otherwise.  Blank lines are skipped.
    """
    def parse_token(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    h = Hypergraph()
    next_id = 0
    for line in lines:
        tokens = line.split()
        if not tokens:
            continue
        h.add_edge([parse_token(t) for t in tokens], edge_id=next_id)
        next_id += 1
    return h
