"""(De)serialization of hypergraphs to JSON-friendly dictionaries and text."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph


def hypergraph_to_dict(hypergraph: Hypergraph) -> Dict[str, object]:
    """Serialize a hypergraph whose vertices and edge ids are JSON-representable.

    The format is ``{"vertices": [...], "edges": [[edge_id, [members...]], ...]}``.
    Vertices and edge ids must round-trip through JSON (ints, strings, …);
    tuples are not supported by this exchange format.
    """
    return {
        "vertices": sorted(hypergraph.vertices, key=repr),
        "edges": [[e, sorted(members, key=repr)] for e, members in hypergraph.edges()],
    }


def hypergraph_from_dict(data: Dict[str, object]) -> Hypergraph:
    """Inverse of :func:`hypergraph_to_dict`."""
    if "edges" not in data:
        raise HypergraphError("missing 'edges' key")
    h = Hypergraph(vertices=data.get("vertices", ()))
    for item in data["edges"]:
        if len(item) != 2:
            raise HypergraphError(f"edge entry must be [edge_id, members], got {item!r}")
        edge_id, members = item
        h.add_edge(members, edge_id=edge_id)
    return h


def hypergraph_to_json(hypergraph: Hypergraph) -> str:
    """Serialize to a JSON string."""
    return json.dumps(hypergraph_to_dict(hypergraph), sort_keys=True)


def hypergraph_from_json(text: str) -> Hypergraph:
    """Inverse of :func:`hypergraph_to_json`."""
    return hypergraph_from_dict(json.loads(text))


def hypergraph_to_edge_lines(hypergraph: Hypergraph) -> List[str]:
    """Render one whitespace-separated line per hyperedge (vertices as ``str``).

    Edge ids are not preserved; the line index becomes the edge id on parse.
    """
    return [" ".join(str(v) for v in sorted(members, key=repr)) for _, members in hypergraph.edges()]


def hypergraph_from_edge_lines(lines) -> Hypergraph:
    """Parse the format produced by :func:`hypergraph_to_edge_lines`.

    Vertex tokens are parsed as ints when possible and kept as strings
    otherwise.  Blank lines are skipped.
    """
    def parse_token(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    h = Hypergraph()
    next_id = 0
    for line in lines:
        tokens = line.split()
        if not tokens:
            continue
        h.add_edge([parse_token(t) for t in tokens], edge_id=next_id)
        next_id += 1
    return h
