"""Structural operations on hypergraphs (restriction, traces, duals, unions)."""

from __future__ import annotations

from typing import Hashable, Iterable, Set

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph

Vertex = Hashable
EdgeId = Hashable


def remove_happy_edges(hypergraph: Hypergraph, happy_edges: Iterable[EdgeId]) -> Hypergraph:
    """Return ``H`` with the edges in ``happy_edges`` removed (vertex set unchanged).

    This is the per-phase step ``E_{i+1} = E_i \\ {happy edges}`` of the
    reduction in Theorem 1.1.
    """
    happy = set(happy_edges)
    unknown = happy - set(hypergraph.edge_ids)
    if unknown:
        raise HypergraphError(f"unknown edge ids: {sorted(unknown, key=repr)!r}")
    keep = [e for e in hypergraph.edge_ids if e not in happy]
    return hypergraph.restrict_to_edges(keep)


def induced_subhypergraph(hypergraph: Hypergraph, vertices: Iterable[Vertex]) -> Hypergraph:
    """Return the trace of ``H`` on ``vertices``: edges are intersected with the set.

    Edges whose intersection is empty disappear; edge ids are preserved.
    """
    keep: Set[Vertex] = {v for v in vertices if hypergraph.has_vertex(v)}
    h = Hypergraph(vertices=keep)
    for e, members in hypergraph.edges():
        trace = members & keep
        if trace:
            h.add_edge(trace, edge_id=e)
    return h


def dual_hypergraph(hypergraph: Hypergraph) -> Hypergraph:
    """Return the dual hypergraph: vertices become edges and vice versa.

    The dual's vertices are the original edge ids; for every original vertex
    ``v`` with non-zero degree the dual has a hyperedge (with id ``v``)
    consisting of the edges containing ``v``.
    """
    dual = Hypergraph(vertices=hypergraph.edge_ids)
    for v in sorted(hypergraph.vertices, key=repr):
        incident = hypergraph.edges_containing(v)
        if incident:
            dual.add_edge(incident, edge_id=v)
    return dual


def disjoint_union(*hypergraphs: Hypergraph) -> Hypergraph:
    """Return the disjoint union; vertices and edge ids are prefixed with the index."""
    result = Hypergraph()
    for idx, h in enumerate(hypergraphs):
        for v in sorted(h.vertices, key=repr):
            result.add_vertex((idx, v))
        for e, members in h.edges():
            result.add_edge({(idx, v) for v in members}, edge_id=(idx, e))
    return result


def edge_intersection_graph(hypergraph: Hypergraph):
    """Return the line (intersection) graph of the hypergraph.

    Vertices are edge ids; two edge ids are adjacent iff the hyperedges
    share at least one vertex.
    """
    from repro.graphs.graph import Graph

    g = Graph(vertices=hypergraph.edge_ids)
    edge_ids = hypergraph.edge_ids
    for i, e in enumerate(edge_ids):
        for f in edge_ids[i + 1:]:
            if hypergraph.edge(e) & hypergraph.edge(f):
                g.add_edge(e, f)
    return g
