"""Validation predicates on hypergraphs (uniformity, almost-uniformity, sanity)."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.exceptions import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph


def is_uniform(hypergraph: Hypergraph) -> bool:
    """Return ``True`` if every hyperedge has the same size (edgeless counts as uniform)."""
    sizes = {hypergraph.edge_size(e) for e in hypergraph.edge_ids}
    return len(sizes) <= 1


def is_almost_uniform(hypergraph: Hypergraph, epsilon: float) -> bool:
    """Return ``True`` if there is a ``k`` with ``k ≤ |e| ≤ (1+ε)k`` for all edges.

    This is exactly the paper's definition of an almost-uniform hypergraph:
    taking ``k`` to be the minimum edge size, the condition holds iff the
    maximum edge size is at most ``(1+ε)·k``.  Edgeless hypergraphs are
    vacuously almost-uniform.
    """
    if not 0 < epsilon <= 1:
        raise HypergraphError(f"epsilon must lie in (0, 1], got {epsilon}")
    if hypergraph.num_edges() == 0:
        return True
    k = hypergraph.min_edge_size()
    return hypergraph.rank() <= (1 + epsilon) * k


def almost_uniformity_parameters(hypergraph: Hypergraph) -> Optional[Tuple[int, float]]:
    """Return ``(k, ε)`` witnessing almost-uniformity with the smallest possible ε.

    ``k`` is the minimum edge size and ``ε = rank/k - 1``.  Returns ``None``
    for edgeless hypergraphs, and raises if the best ε exceeds 1 (in which
    case the hypergraph is not almost-uniform for any admissible ε).
    """
    if hypergraph.num_edges() == 0:
        return None
    k = hypergraph.min_edge_size()
    epsilon = hypergraph.rank() / k - 1
    if epsilon > 1:
        raise HypergraphError(
            f"hypergraph is not almost-uniform: rank {hypergraph.rank()} "
            f"> 2 * min edge size {k}"
        )
    return k, epsilon


def validate_hypergraph(hypergraph: Hypergraph) -> None:
    """Check internal consistency of a hypergraph; raise :class:`HypergraphError` otherwise.

    Verifies that every edge member is a declared vertex, that no edge is
    empty, and that the incidence index agrees with the edge family.
    """
    vertices = hypergraph.vertices
    for e, members in hypergraph.edges():
        if not members:
            raise HypergraphError(f"edge {e!r} is empty")
        stray = members - vertices
        if stray:
            raise HypergraphError(
                f"edge {e!r} contains undeclared vertices {sorted(stray, key=repr)!r}"
            )
    for v in vertices:
        for e in hypergraph.edges_containing(v):
            if v not in hypergraph.edge(e):
                raise HypergraphError(
                    f"incidence index claims {v!r} ∈ edge {e!r}, but the edge disagrees"
                )


def has_polynomially_many_edges(hypergraph: Hypergraph, degree: int = 3) -> bool:
    """Return ``True`` if ``m ≤ n^degree`` (the "poly n hyperedges" premise of Thm 1.2).

    ``degree`` defaults to 3, which is ample for all workloads shipped with
    the benchmark harness; callers studying denser families can raise it.
    """
    n = max(hypergraph.num_vertices(), 2)
    return hypergraph.num_edges() <= n ** degree
