"""LOCAL model simulator: synchronous message passing, classic algorithms, virtual graphs."""

from repro.local_model.message import Inbox, Message
from repro.local_model.node import LocalNode, LocalNodeAlgorithm
from repro.local_model.network import LocalNetwork, LocalRunResult
from repro.local_model.algorithms import (
    LubyMIS,
    RandomizedColoring,
    luby_mis,
    randomized_coloring,
)
from repro.local_model.deterministic import (
    ColeVishkinRingColoring,
    ColorReductionColoring,
    cole_vishkin_ring,
    cole_vishkin_rounds_needed,
    color_reduction,
)
from repro.local_model.virtual_graphs import (
    EmbeddingStats,
    VirtualGraphEmbedding,
    run_simulated,
)

__all__ = [
    "Inbox",
    "Message",
    "LocalNode",
    "LocalNodeAlgorithm",
    "LocalNetwork",
    "LocalRunResult",
    "LubyMIS",
    "RandomizedColoring",
    "luby_mis",
    "randomized_coloring",
    "ColeVishkinRingColoring",
    "ColorReductionColoring",
    "cole_vishkin_ring",
    "cole_vishkin_rounds_needed",
    "color_reduction",
    "EmbeddingStats",
    "VirtualGraphEmbedding",
    "run_simulated",
]
