"""Distributed algorithms in the LOCAL model.

* :class:`LubyMIS` — Luby's classical randomized maximal-independent-set
  algorithm [Lub86], which terminates in O(log n) rounds with high
  probability; the paper's introduction contrasts it with the
  exponentially slower deterministic algorithms.
* :class:`RandomizedColoring` — a simple randomized (Δ+1)-vertex-coloring:
  every uncolored node proposes a random available color and keeps it if
  no conflicting neighbor proposed the same color.
* :func:`luby_mis`, :func:`randomized_coloring` — convenience wrappers.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.exceptions import ModelError
from repro.graphs.graph import Graph
from repro.local_model.message import Inbox
from repro.local_model.network import LocalNetwork, LocalRunResult
from repro.local_model.node import LocalNode, LocalNodeAlgorithm

Vertex = Hashable


class LubyMIS(LocalNodeAlgorithm):
    """Luby's randomized MIS algorithm.

    Each iteration of the classical algorithm is implemented with two
    communication rounds:

    * **proposal round** — every undecided node draws a random priority and
      sends it to its undecided neighbors;
    * **resolution round** — a node whose priority was a strict local
      minimum (ties broken by the vertex identifier) joins the MIS and
      announces this; neighbors of joining nodes leave the computation.

    Output per node: ``True`` if the node is in the MIS, ``False`` otherwise.
    """

    name = "luby-mis"

    def init(self, node: LocalNode) -> Dict[Vertex, Any]:
        node.memory["rng"] = random.Random(node.random_seed)
        node.memory["undecided_neighbors"] = set(node.neighbors)
        node.memory["phase"] = "propose"
        if not node.neighbors:
            # Isolated nodes join immediately.
            node.terminate(True)
            return {}
        return {}

    def _propose(self, node: LocalNode) -> Dict[Vertex, Any]:
        priority = node.memory["rng"].random()
        node.memory["priority"] = priority
        node.memory["phase"] = "resolve"
        return {
            u: ("priority", priority, repr(node.vertex))
            for u in node.memory["undecided_neighbors"]
        }

    def _resolve(self, node: LocalNode, inbox: Inbox) -> Dict[Vertex, Any]:
        my_key = (node.memory["priority"], repr(node.vertex))
        wins = True
        for u in node.memory["undecided_neighbors"]:
            msg = inbox.from_neighbor(u)
            if msg is None:
                continue
            _, priority, ident = msg
            if (priority, ident) < my_key:
                wins = False
                break
        node.memory["phase"] = "propose"
        if wins:
            outgoing = {u: ("joined",) for u in node.memory["undecided_neighbors"]}
            node.terminate(True)
            return outgoing
        return {u: ("still-here",) for u in node.memory["undecided_neighbors"]}

    def round(self, node: LocalNode, round_number: int, inbox: Inbox) -> Dict[Vertex, Any]:
        # First handle notifications from neighbors that joined or left.
        decided_neighbors = set()
        for u in list(node.memory["undecided_neighbors"]):
            msg = inbox.from_neighbor(u)
            if msg is not None and msg[0] == "joined":
                node.terminate(False)
                return {}
            if msg is None and node.memory["phase"] == "propose" and round_number > 1:
                # A neighbor that stays silent in a proposal round has terminated
                # without joining (it was eliminated); drop it.
                decided_neighbors.add(u)
        node.memory["undecided_neighbors"] -= decided_neighbors

        if node.memory["phase"] == "propose":
            if not node.memory["undecided_neighbors"]:
                node.terminate(True)
                return {}
            return self._propose(node)
        return self._resolve(node, inbox)


class RandomizedColoring(LocalNodeAlgorithm):
    """Randomized (Δ+1)-vertex-coloring by repeated random proposals.

    Every phase uses two rounds: uncolored nodes propose a uniformly random
    color from their current palette (``{0, …, deg}`` minus colors taken by
    already-colored neighbors) and keep it if no uncolored neighbor proposed
    the same color; kept colors are then announced.

    Output per node: the final color (an ``int``).
    """

    name = "randomized-coloring"

    def init(self, node: LocalNode) -> Dict[Vertex, Any]:
        node.memory["rng"] = random.Random(node.random_seed)
        node.memory["taken"] = set()
        node.memory["active_neighbors"] = set(node.neighbors)
        node.memory["phase"] = "propose"
        if not node.neighbors:
            node.terminate(0)
            return {}
        return {}

    def _palette(self, node: LocalNode) -> list:
        size = len(node.neighbors) + 1
        return [c for c in range(size) if c not in node.memory["taken"]]

    def round(self, node: LocalNode, round_number: int, inbox: Inbox) -> Dict[Vertex, Any]:
        # Record colors fixed by neighbors in the previous round.
        for u in list(node.memory["active_neighbors"]):
            msg = inbox.from_neighbor(u)
            if msg is not None and msg[0] == "final":
                node.memory["taken"].add(msg[1])
                node.memory["active_neighbors"].discard(u)

        if node.memory["phase"] == "propose":
            palette = self._palette(node)
            if not palette:
                raise ModelError(
                    f"palette of node {node.vertex!r} is empty; "
                    "this contradicts the (deg+1) palette invariant"
                )
            proposal = node.memory["rng"].choice(palette)
            node.memory["proposal"] = proposal
            node.memory["phase"] = "decide"
            return {u: ("proposal", proposal) for u in node.memory["active_neighbors"]}

        # Decide phase: keep the proposal if no active neighbor proposed it too.
        proposal = node.memory["proposal"]
        conflict = False
        for u in node.memory["active_neighbors"]:
            msg = inbox.from_neighbor(u)
            if msg is not None and msg[0] == "proposal" and msg[1] == proposal:
                conflict = True
                break
        node.memory["phase"] = "propose"
        if not conflict and proposal not in node.memory["taken"]:
            outgoing = {u: ("final", proposal) for u in node.memory["active_neighbors"]}
            node.terminate(proposal)
            return outgoing
        return {}


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def luby_mis(
    graph: Graph, seed: Optional[int] = None, max_rounds: int = 10_000
) -> Tuple[Set[Vertex], LocalRunResult]:
    """Run :class:`LubyMIS` on ``graph`` and return ``(mis, run_result)``."""
    result = LocalNetwork(graph, seed=seed).run(LubyMIS(), max_rounds=max_rounds)
    mis = {v for v, out in result.outputs.items() if out is True}
    return mis, result


def randomized_coloring(
    graph: Graph, seed: Optional[int] = None, max_rounds: int = 10_000
) -> Tuple[Dict[Vertex, int], LocalRunResult]:
    """Run :class:`RandomizedColoring` and return ``(coloring, run_result)``."""
    result = LocalNetwork(graph, seed=seed).run(RandomizedColoring(), max_rounds=max_rounds)
    coloring = {v: out for v, out in result.outputs.items() if out is not None}
    return coloring, result
