"""Deterministic algorithms in the LOCAL model.

The paper's introduction contrasts the fast randomized LOCAL algorithms
for MIS and (Δ+1)-coloring [Lub86] with the much slower deterministic ones
[AGLP89]; the question of fast deterministic LOCAL algorithms is exactly
what the P-SLOCAL completeness programme is about.  This module makes that
contrast executable with two classical deterministic procedures:

* :class:`ColeVishkinRingColoring` — the O(log* n) Cole–Vishkin colour
  reduction on canonically labelled rings: starting from the unique
  identifiers, each round replaces a node's colour by (index of the first
  bit where it differs from its successor's colour, value of that bit),
  shrinking the colour space from ``b`` bits to ``O(log b)`` bits, down to
  six colours; three clean-up rounds then reach a proper 3-coloring.
* :class:`ColorReductionColoring` — the slow-but-general deterministic
  (Δ+1)-colouring: starting from the unique-identifier colouring, colour
  classes are eliminated one per round from the top (each class is an
  independent set, so its nodes can recolour simultaneously).  Its round
  complexity is linear in the identifier space — the "much slower than
  randomized" behaviour the introduction refers to.

Both run on the same :class:`~repro.local_model.network.LocalNetwork`
simulator as Luby's algorithm, so their round counts can be reported side
by side with the randomized baselines.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.exceptions import ModelError
from repro.graphs.graph import Graph
from repro.local_model.message import Inbox
from repro.local_model.network import LocalNetwork, LocalRunResult
from repro.local_model.node import LocalNode, LocalNodeAlgorithm

Vertex = Hashable


def cole_vishkin_rounds_needed(n: int) -> int:
    """Number of Cole–Vishkin reduction rounds to go from ``n`` ids to < 6 colours.

    One round maps a palette of size ``c`` (colours are ``b``-bit numbers,
    ``b = ⌈log₂ c⌉``) to one of size ``2b``; the function iterates that map —
    its value grows like ``log* n``.
    """
    if n < 0:
        raise ModelError(f"n must be non-negative, got {n}")
    palette = max(n, 1)
    rounds = 0
    while palette > 6:
        bits = max((palette - 1).bit_length(), 1)
        palette = 2 * bits
        rounds += 1
    return rounds


class ColeVishkinRingColoring(LocalNodeAlgorithm):
    """Cole–Vishkin 3-coloring of a canonically labelled ring.

    Requirements: the network graph is a cycle whose vertices carry the
    integer identifiers ``0 … n−1`` *in ring order* (as produced by
    :func:`repro.graphs.generators.cycle_graph`), so that every node can
    identify its successor ``(id + 1) mod n`` among its two neighbors.
    All nodes run the same, locally computable number of reduction rounds
    (``cole_vishkin_rounds_needed(n)``), which keeps the synchronous
    invariant "adjacent colours differ" intact, and then three clean-up
    rounds eliminate colours 5, 4 and 3.

    Output per node: a colour in ``{0, 1, 2}``.
    """

    name = "cole-vishkin-ring"

    @staticmethod
    def _reduce(own: int, successor: int) -> int:
        """One Cole–Vishkin step: encode the lowest differing bit index and its value."""
        differing = own ^ successor
        index = (differing & -differing).bit_length() - 1 if differing else 0
        bit = (own >> index) & 1
        return 2 * index + bit

    def init(self, node: LocalNode) -> Dict[Vertex, Any]:
        if len(node.neighbors) != 2:
            raise ModelError(
                f"Cole–Vishkin ring coloring requires a cycle; vertex {node.vertex!r} "
                f"has degree {len(node.neighbors)}"
            )
        if not isinstance(node.vertex, int):
            raise ModelError("ring vertices must be the integers 0..n-1 in ring order")
        n = node.n_known
        successor_id = (node.vertex + 1) % n
        if successor_id not in node.neighbors:
            raise ModelError(
                f"vertex {node.vertex!r} is not adjacent to {successor_id!r}; "
                "the ring must be canonically labelled"
            )
        node.memory["color"] = node.vertex
        node.memory["successor"] = successor_id
        node.memory["reduce_rounds"] = cole_vishkin_rounds_needed(n)
        return {u: ("color", node.memory["color"]) for u in node.neighbors}

    def round(self, node: LocalNode, round_number: int, inbox: Inbox) -> Dict[Vertex, Any]:
        # Track the latest colour of both neighbors (needed by the clean-up).
        seen = node.memory.setdefault("neighbor_colors", {})
        for u in node.neighbors:
            msg = inbox.from_neighbor(u)
            if msg is not None:
                seen[u] = msg[1]

        reduce_rounds = node.memory["reduce_rounds"]
        if round_number <= reduce_rounds:
            successor_color = seen[node.memory["successor"]]
            node.memory["color"] = self._reduce(node.memory["color"], successor_color)
            return {u: ("color", node.memory["color"]) for u in node.neighbors}

        # Clean-up rounds: remove colour 5, then 4, then 3.
        removing = 5 - (round_number - reduce_rounds - 1)
        if node.memory["color"] == removing:
            free = min(c for c in (0, 1, 2) if c not in set(seen.values()))
            node.memory["color"] = free
        if removing <= 3:
            node.terminate(node.memory["color"])
        return {u: ("color", node.memory["color"]) for u in node.neighbors}


def cole_vishkin_ring(graph: Graph, max_rounds: int = 10_000) -> Tuple[Dict[Vertex, int], LocalRunResult]:
    """Run Cole–Vishkin on a canonically labelled ring; return ``(coloring, run_result)``."""
    result = LocalNetwork(graph).run(ColeVishkinRingColoring(), max_rounds=max_rounds)
    coloring = {v: out for v, out in result.outputs.items() if out is not None}
    return coloring, result


class ColorReductionColoring(LocalNodeAlgorithm):
    """Deterministic (deg+1)-coloring by one-colour-class-per-round reduction.

    Round ``r`` eliminates colour ``id_space − r``: every node currently
    holding that colour (always an independent set, because the colouring
    stays proper throughout) recolours itself with the smallest colour in
    ``{0, …, deg}`` not used by any neighbor.  A node terminates once the
    colour being eliminated drops to its own palette size.  The round count
    is linear in the identifier space — deliberately so; this is the slow
    deterministic baseline.
    """

    name = "deterministic-color-reduction"

    def __init__(self, id_space: int) -> None:
        if id_space <= 0:
            raise ModelError("identifier space must be positive")
        self.id_space = id_space

    def init(self, node: LocalNode) -> Dict[Vertex, Any]:
        if "id" not in node.memory:
            if not isinstance(node.vertex, int):
                raise ModelError("non-integer vertex names require the color_reduction() wrapper")
            node.memory["id"] = node.vertex
        node.memory["color"] = node.memory["id"]
        node.memory["last_seen"] = {}
        return {u: ("color", node.memory["color"]) for u in node.neighbors}

    def round(self, node: LocalNode, round_number: int, inbox: Inbox) -> Dict[Vertex, Any]:
        last_seen = node.memory["last_seen"]
        for u in node.neighbors:
            msg = inbox.from_neighbor(u)
            if msg is not None:
                last_seen[u] = msg[1]

        removing = self.id_space - round_number
        palette_limit = len(node.neighbors) + 1
        if node.memory["color"] == removing and removing >= palette_limit:
            node.memory["color"] = min(
                c for c in range(palette_limit) if c not in set(last_seen.values())
            )

        if removing <= palette_limit:
            node.terminate(node.memory["color"])
        return {u: ("color", node.memory["color"]) for u in node.neighbors}


def color_reduction(graph: Graph, max_rounds: Optional[int] = None) -> Tuple[Dict[Vertex, int], LocalRunResult]:
    """Run the deterministic colour reduction and return ``(coloring, run_result)``.

    Vertices are assigned the identifiers ``0 … n−1`` by their deterministic
    ``repr`` rank, so the wrapper works for arbitrary hashable vertex names.
    """
    n = graph.num_vertices()
    ranks = {v: i for i, v in enumerate(sorted(graph.vertices, key=repr))}

    class _Seeded(ColorReductionColoring):
        def init(self, node: LocalNode) -> Dict[Vertex, Any]:
            node.memory["id"] = ranks[node.vertex]
            return super().init(node)

    algorithm = _Seeded(id_space=max(n, 1))
    rounds_cap = max_rounds if max_rounds is not None else max(4 * n, 16)
    result = LocalNetwork(graph).run(algorithm, max_rounds=rounds_cap)
    coloring = {v: out for v, out in result.outputs.items() if out is not None}
    return coloring, result
