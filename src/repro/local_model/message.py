"""Messages exchanged in the synchronous LOCAL model simulator.

The LOCAL model allows messages of unbounded size, so the payload may be
any Python object.  Messages record sender, receiver and the round in
which they were sent; the network delivers them at the start of the next
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

Vertex = Hashable


@dataclass(frozen=True)
class Message:
    """A single message in a LOCAL execution.

    Attributes
    ----------
    sender:
        The vertex that sent the message.
    receiver:
        The neighbor the message is addressed to.
    round_sent:
        The (0-based) round in which the message was sent.
    payload:
        Arbitrary content; the LOCAL model places no bound on message size.
    """

    sender: Vertex
    receiver: Vertex
    round_sent: int
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message({self.sender!r} -> {self.receiver!r}, "
            f"round={self.round_sent}, payload={self.payload!r})"
        )


@dataclass
class Inbox:
    """The messages a node receives at the start of a round, grouped by sender."""

    messages: dict

    def from_neighbor(self, neighbor: Vertex, default: Any = None) -> Any:
        """Return the payload sent by ``neighbor`` last round (or ``default``)."""
        msg = self.messages.get(neighbor)
        return msg.payload if msg is not None else default

    def senders(self):
        """Return the neighbors that sent a message."""
        return set(self.messages)

    def payloads(self):
        """Return all received payloads (unordered)."""
        return [m.payload for m in self.messages.values()]

    def __len__(self) -> int:
        return len(self.messages)
