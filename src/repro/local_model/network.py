"""The synchronous LOCAL network simulator.

:class:`LocalNetwork` drives a :class:`~repro.local_model.node.LocalNodeAlgorithm`
over a network graph in synchronous rounds until every node has terminated
(or a round limit is hit).  The simulator reports the number of rounds,
which is the complexity measure of the LOCAL model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.exceptions import ModelError
from repro.graphs.graph import Graph
from repro.local_model.message import Inbox, Message
from repro.local_model.node import LocalNode, LocalNodeAlgorithm

Vertex = Hashable


@dataclass
class LocalRunResult:
    """Result of one LOCAL execution.

    Attributes
    ----------
    outputs:
        Mapping from every vertex to its output.
    rounds:
        The number of communication rounds executed (the model's
        complexity measure).  Round 0 (initialization, no communication)
        is not counted.
    messages_sent:
        Total number of messages delivered over the whole execution.
    terminated:
        Whether every node terminated before the round limit.
    """

    outputs: Dict[Vertex, Any]
    rounds: int
    messages_sent: int
    terminated: bool
    per_round_active: List[int] = field(default_factory=list)


class LocalNetwork:
    """Synchronous message-passing simulator for the LOCAL model."""

    def __init__(self, graph: Graph, seed: Optional[int] = None) -> None:
        self.graph = graph
        self.seed = seed if seed is not None else 0

    def run(self, algorithm: LocalNodeAlgorithm, max_rounds: int = 10_000) -> LocalRunResult:
        """Run ``algorithm`` until every node terminates or ``max_rounds`` is reached.

        Raises
        ------
        ModelError
            If ``max_rounds`` is not positive.
        """
        if max_rounds <= 0:
            raise ModelError(f"max_rounds must be positive, got {max_rounds}")

        n = self.graph.num_vertices()
        master = random.Random(self.seed)
        nodes: Dict[Vertex, LocalNode] = {}
        for v in sorted(self.graph.vertices, key=repr):
            nodes[v] = LocalNode(
                vertex=v,
                neighbors=self.graph.neighbors(v),
                n_known=n,
                random_seed=master.randrange(2**63),
            )

        # Round 0: initialization (counts as no communication round).
        pending: List[Message] = []
        for v, node in nodes.items():
            outgoing = algorithm.validate_outgoing(node, algorithm.init(node))
            for receiver, payload in outgoing.items():
                pending.append(Message(sender=v, receiver=receiver, round_sent=0, payload=payload))

        messages_sent = 0
        per_round_active: List[int] = []
        rounds = 0
        while rounds < max_rounds:
            active = [v for v, node in nodes.items() if not node.terminated]
            if not active and not pending:
                break
            rounds += 1
            per_round_active.append(len(active))

            # Deliver messages sent in the previous round.
            inboxes: Dict[Vertex, Dict[Vertex, Message]] = {v: {} for v in nodes}
            for msg in pending:
                inboxes[msg.receiver][msg.sender] = msg
            messages_sent += len(pending)
            pending = []

            all_terminated = True
            for v in sorted(nodes, key=repr):
                node = nodes[v]
                if node.terminated:
                    continue
                inbox = Inbox(messages=inboxes[v])
                outgoing = algorithm.validate_outgoing(
                    node, algorithm.round(node, rounds, inbox)
                )
                if not node.terminated:
                    all_terminated = False
                for receiver, payload in outgoing.items():
                    pending.append(
                        Message(sender=v, receiver=receiver, round_sent=rounds, payload=payload)
                    )
            if all_terminated:
                break

        terminated = all(node.terminated for node in nodes.values())
        outputs = {v: node.output for v, node in nodes.items()}
        return LocalRunResult(
            outputs=outputs,
            rounds=rounds,
            messages_sent=messages_sent,
            terminated=terminated,
            per_round_active=per_round_active,
        )
