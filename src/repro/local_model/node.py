"""Node-side API of the LOCAL model simulator.

A distributed algorithm in the LOCAL model is written as a subclass of
:class:`LocalNodeAlgorithm`.  The network (see
:mod:`repro.local_model.network`) instantiates one :class:`LocalNode` per
vertex and drives the synchronous rounds:

1. at the start of a round every node receives the messages sent to it in
   the previous round;
2. every node updates its state and chooses one message per neighbor to
   send (or no message);
3. a node may *terminate* by fixing an output; terminated nodes stop
   participating.

Nodes only know their own identifier, their degree / the identifiers of
their neighbors (ports), and whatever arrives in messages — exactly the
information available in the LOCAL model.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set

from repro.exceptions import ModelError
from repro.local_model.message import Inbox

Vertex = Hashable


class LocalNode:
    """Runtime container for one vertex participating in a LOCAL execution."""

    def __init__(self, vertex: Vertex, neighbors: Set[Vertex], n_known: int, random_seed: int) -> None:
        self.vertex = vertex
        self.neighbors = set(neighbors)
        #: The number of nodes n, which LOCAL algorithms may know globally.
        self.n_known = n_known
        #: Per-node deterministic seed so randomized algorithms are reproducible.
        self.random_seed = random_seed
        #: Free-form algorithm state.
        self.memory: Dict[str, Any] = {}
        self.output: Any = None
        self.terminated = False

    def terminate(self, output: Any) -> None:
        """Fix the node's output and stop participating in future rounds."""
        if self.terminated:
            raise ModelError(f"node {self.vertex!r} terminated twice")
        self.output = output
        self.terminated = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = f"output={self.output!r}" if self.terminated else "running"
        return f"LocalNode({self.vertex!r}, deg={len(self.neighbors)}, {status})"


class LocalNodeAlgorithm:
    """Base class for algorithms in the LOCAL model.

    Subclasses override :meth:`init` and :meth:`round`.  Both methods
    return the messages to send as a mapping ``neighbor -> payload``
    (omitted neighbors receive nothing).  A node finishes by calling
    ``node.terminate(output)``.
    """

    #: Human-readable name used in reports.
    name: str = "local-algorithm"

    def init(self, node: LocalNode) -> Dict[Vertex, Any]:
        """Round 0: initialize ``node`` and return the first batch of messages."""
        return {}

    def round(self, node: LocalNode, round_number: int, inbox: Inbox) -> Dict[Vertex, Any]:
        """Execute one synchronous round for ``node``.

        Parameters
        ----------
        node:
            The node being simulated (mutate ``node.memory``, call
            ``node.terminate`` to finish).
        round_number:
            1-based round counter (round 0 is :meth:`init`).
        inbox:
            The messages delivered to the node this round.
        """
        raise NotImplementedError

    def validate_outgoing(self, node: LocalNode, outgoing: Optional[Dict[Vertex, Any]]) -> Dict[Vertex, Any]:
        """Check that a node only sends messages to its neighbors."""
        if outgoing is None:
            return {}
        stray = set(outgoing) - node.neighbors
        if stray:
            raise ModelError(
                f"node {node.vertex!r} attempted to message non-neighbors "
                f"{sorted(stray, key=repr)!r}"
            )
        return dict(outgoing)
