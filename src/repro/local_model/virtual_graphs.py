"""Local simulation of virtual graphs on top of a host network.

The hardness proof of the paper relies on the observation that the
conflict graph ``G_k`` of a hypergraph ``H`` "has polynomially many nodes
and edges and can be simulated locally": every virtual node ``(e, v, c)``
is hosted by the physical node ``v`` of ``H``, and every virtual edge
connects virtual nodes whose hosts are at hop distance at most 2 in the
primal graph of ``H`` (they lie in a common hyperedge, or in two
hyperedges sharing a vertex).  Consequently an ``r``-round LOCAL algorithm
on ``G_k`` can be executed by the hosts with only a constant-factor
blow-up in the radius.

:class:`VirtualGraphEmbedding` makes this argument executable: it records
the host assignment, verifies the dilation bound, and computes the
congestion (number of virtual nodes per host) so benchmarks can report the
simulation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.exceptions import ModelError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Vertex = Hashable
VirtualVertex = Hashable


@dataclass
class EmbeddingStats:
    """Summary statistics of a virtual-graph embedding.

    Attributes
    ----------
    num_virtual_vertices / num_virtual_edges:
        Size of the virtual graph.
    max_congestion:
        Largest number of virtual vertices hosted by one physical node.
    dilation:
        Maximum host-graph distance between the endpoints of a virtual edge
        (the simulation radius blow-up factor).
    """

    num_virtual_vertices: int
    num_virtual_edges: int
    max_congestion: int
    dilation: int


class VirtualGraphEmbedding:
    """An embedding of a virtual graph into a host graph.

    Parameters
    ----------
    host_graph:
        The physical network.
    virtual_graph:
        The simulated graph (e.g. the conflict graph ``G_k``).
    host_of:
        Mapping from every virtual vertex to its hosting physical vertex.
    """

    def __init__(
        self,
        host_graph: Graph,
        virtual_graph: Graph,
        host_of: Dict[VirtualVertex, Vertex],
    ) -> None:
        missing = virtual_graph.vertices - set(host_of)
        if missing:
            raise ModelError(
                f"{len(missing)} virtual vertices have no host, e.g. {next(iter(missing))!r}"
            )
        for virtual_vertex, host in host_of.items():
            if host not in host_graph:
                raise ModelError(
                    f"virtual vertex {virtual_vertex!r} is hosted on {host!r}, "
                    "which is not a vertex of the host graph"
                )
        self.host_graph = host_graph
        self.virtual_graph = virtual_graph
        self.host_of = dict(host_of)

    def hosted_by(self, host: Vertex) -> List[VirtualVertex]:
        """Return the virtual vertices hosted by physical node ``host``."""
        return [vv for vv, h in self.host_of.items() if h == host]

    def congestion(self) -> Dict[Vertex, int]:
        """Return, per physical node, the number of virtual vertices it hosts."""
        counts: Dict[Vertex, int] = {v: 0 for v in self.host_graph.vertices}
        for host in self.host_of.values():
            counts[host] += 1
        return counts

    def dilation(self) -> int:
        """Return the maximum host distance spanned by any virtual edge.

        A dilation of ``d`` means one round of a LOCAL algorithm on the
        virtual graph can be simulated in ``d`` rounds on the host graph.
        Virtual edges between virtual vertices sharing a host contribute 0.
        """
        worst = 0
        distance_cache: Dict[Vertex, Dict[Vertex, int]] = {}
        for u, v in self.virtual_graph.edges():
            hu, hv = self.host_of[u], self.host_of[v]
            if hu == hv:
                continue
            if hu not in distance_cache:
                distance_cache[hu] = bfs_distances(self.host_graph, hu)
            dist = distance_cache[hu].get(hv)
            if dist is None:
                raise ModelError(
                    f"virtual edge ({u!r}, {v!r}) spans disconnected hosts "
                    f"{hu!r} and {hv!r}"
                )
            worst = max(worst, dist)
        return worst

    def stats(self) -> EmbeddingStats:
        """Return the summary statistics of the embedding."""
        congestion = self.congestion()
        return EmbeddingStats(
            num_virtual_vertices=self.virtual_graph.num_vertices(),
            num_virtual_edges=self.virtual_graph.num_edges(),
            max_congestion=max(congestion.values(), default=0),
            dilation=self.dilation(),
        )

    def simulation_rounds(self, virtual_rounds: int) -> int:
        """Rounds needed on the host to simulate ``virtual_rounds`` rounds on the virtual graph.

        One virtual round costs ``max(dilation, 1)`` host rounds (hosts of
        adjacent virtual vertices must exchange the virtual messages).
        """
        if virtual_rounds < 0:
            raise ModelError(f"virtual_rounds must be non-negative, got {virtual_rounds}")
        return virtual_rounds * max(self.dilation(), 1)

    def verify_dilation_bound(self, bound: int) -> None:
        """Raise :class:`ModelError` unless every virtual edge spans host distance ≤ ``bound``."""
        actual = self.dilation()
        if actual > bound:
            raise ModelError(
                f"embedding dilation {actual} exceeds the claimed bound {bound}"
            )


def run_simulated(
    embedding: VirtualGraphEmbedding,
    algorithm_on_virtual,
    seed: Optional[int] = None,
) -> Dict[VirtualVertex, object]:
    """Execute a centralized stand-in for running ``algorithm_on_virtual`` on the virtual graph.

    The function runs ``algorithm_on_virtual(virtual_graph)`` (any callable
    returning a per-virtual-vertex output mapping) and charges the
    simulation cost implied by the embedding; it exists so benchmarks can
    report both the virtual-round complexity and the host-round cost
    without duplicating algorithm code.
    """
    outputs = algorithm_on_virtual(embedding.virtual_graph)
    missing = embedding.virtual_graph.vertices - set(outputs)
    if missing:
        raise ModelError(
            f"virtual algorithm left {len(missing)} virtual vertices without output"
        )
    return outputs
