"""Maximum-independent-set approximation suite: exact solver, greedy/randomized/clique-cover
approximators, the λ-approximation oracle interface, and guarantee verification."""

from repro.maxis.approximators import (
    MaxISApproximator,
    available_approximators,
    get_approximator,
    register_approximator,
)
from repro.maxis.exact import exact_maximum_independent_set, exact_via_networkx
from repro.maxis.greedy import (
    first_fit_greedy,
    min_degree_greedy,
    turan_guarantee,
    turan_lower_bound,
)
from repro.maxis.local_ratio import (
    clique_cover_approximation,
    clique_cover_number_upper_bound,
    clique_cover_quality,
    greedy_clique_cover,
)
from repro.maxis.luby_based import (
    best_of_random_mis,
    luby_based_approximation,
    luby_batch_mis,
    luby_batch_mis_ids,
    luby_trial_seeds,
    random_order_mis,
)
from repro.maxis.verification import (
    ApproximationReport,
    check_approximation,
    require_approximation,
)

__all__ = [
    "MaxISApproximator",
    "available_approximators",
    "get_approximator",
    "register_approximator",
    "exact_maximum_independent_set",
    "exact_via_networkx",
    "first_fit_greedy",
    "min_degree_greedy",
    "turan_guarantee",
    "turan_lower_bound",
    "clique_cover_approximation",
    "clique_cover_number_upper_bound",
    "clique_cover_quality",
    "greedy_clique_cover",
    "best_of_random_mis",
    "luby_based_approximation",
    "luby_batch_mis",
    "luby_batch_mis_ids",
    "luby_trial_seeds",
    "random_order_mis",
    "ApproximationReport",
    "check_approximation",
    "require_approximation",
]
