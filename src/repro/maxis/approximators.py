"""The λ-approximation oracle interface consumed by the paper's reduction.

The hardness proof of Theorem 1.1 is parameterized by *any* algorithm that
computes a λ-approximate maximum independent set: the reduction runs
``ρ = λ·ln(m) + 1`` phases and calls the approximator once per phase on
the conflict graph of the surviving hyperedges.  :class:`MaxISApproximator`
is the corresponding interface; the registry maps names to the concrete
algorithms implemented in this package so that benchmarks can sweep over
them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Set

from repro.exceptions import ApproximationError
from repro.graphs.graph import Graph
from repro.graphs.independent_sets import verify_independent_set

Vertex = Hashable


@dataclass(frozen=True)
class MaxISApproximator:
    """A named maximum-independent-set approximation algorithm.

    Attributes
    ----------
    name:
        Registry key / display name.
    solve:
        ``solve(graph) -> set_of_vertices``.  Receives a mutable
        :class:`Graph` by default; see ``accepts_frozen``.
    accepts_frozen:
        Whether ``solve`` also handles frozen
        :class:`~repro.graphs.indexed.IndexedGraph` inputs (including
        alive-mask subgraph views).  The reduction's phase engine freezes
        the conflict graph once per run and hands such approximators views
        instead of re-materializing the mutable graph per phase — the
        indexed fast path.  Defaults to ``False`` so custom approximators
        written against the mutable-:class:`Graph` interface keep working
        unchanged (they get the mutable conflict graph, at rebuild-path
        speed); every built-in opts in, and deterministic built-ins return
        the same set on both representations when the frozen input is
        interned in ``repr`` order.
    guarantee:
        Callable mapping a graph to the approximation factor λ the
        algorithm guarantees on that graph (``None`` when no worst-case
        guarantee is claimed — e.g. purely heuristic baselines).
    description:
        One-line description used in benchmark tables.
    """

    name: str
    solve: Callable[[Graph], Set[Vertex]]
    guarantee: Optional[Callable[[Graph], float]] = None
    description: str = ""
    accepts_frozen: bool = False

    def __call__(self, graph: Graph) -> Set[Vertex]:
        """Run the approximator and verify that its output is independent."""
        result = self.solve(graph)
        verify_independent_set(graph, result)
        if graph.num_vertices() > 0 and not result:
            raise ApproximationError(
                f"approximator {self.name!r} returned an empty set on a non-empty graph; "
                "no finite approximation factor can hold"
            )
        return set(result)

    def guaranteed_lambda(self, graph: Graph) -> Optional[float]:
        """Return the guaranteed approximation factor on ``graph`` (or ``None``)."""
        if self.guarantee is None:
            return None
        value = self.guarantee(graph)
        if value < 1:
            raise ApproximationError(
                f"approximator {self.name!r} claims an approximation factor {value} < 1"
            )
        return value


_REGISTRY: Dict[str, MaxISApproximator] = {}


def register_approximator(approximator: MaxISApproximator) -> MaxISApproximator:
    """Add ``approximator`` to the global registry (overwriting by name is an error)."""
    if approximator.name in _REGISTRY:
        raise ApproximationError(f"approximator {approximator.name!r} already registered")
    _REGISTRY[approximator.name] = approximator
    return approximator


def get_approximator(name: str) -> MaxISApproximator:
    """Look up a registered approximator by name."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ApproximationError(
            f"unknown approximator {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def available_approximators() -> Dict[str, MaxISApproximator]:
    """Return a copy of the registry (name → approximator)."""
    _ensure_builtins()
    return dict(_REGISTRY)


def _ensure_builtins() -> None:
    """Register the built-in algorithms on first use (import-cycle-free lazy init)."""
    if _REGISTRY:
        return
    from repro.maxis import builtin  # noqa: F401  (importing registers the algorithms)
