"""Registration of the built-in MaxIS approximators.

Importing this module populates the registry in
:mod:`repro.maxis.approximators`; it is imported lazily by
:func:`repro.maxis.approximators.get_approximator` so that library users who
never touch the registry pay nothing.
"""

from __future__ import annotations

from repro.maxis.approximators import MaxISApproximator, register_approximator
from repro.maxis.exact import exact_maximum_independent_set
from repro.maxis.greedy import first_fit_greedy, min_degree_greedy, turan_guarantee
from repro.maxis.local_ratio import clique_cover_approximation
from repro.maxis.luby_based import luby_based_approximation, luby_batch_mis


register_approximator(
    MaxISApproximator(
        name="exact",
        solve=lambda g: exact_maximum_independent_set(g, size_limit=None),
        guarantee=lambda g: 1.0,
        accepts_frozen=True,
        description="Exact branch-and-bound (λ = 1); exponential worst case.",
    )
)

register_approximator(
    MaxISApproximator(
        name="greedy-min-degree",
        solve=min_degree_greedy,
        guarantee=turan_guarantee,
        accepts_frozen=True,
        description="Minimum-degree greedy; Turán-type (Δ+1)-approximation.",
    )
)

register_approximator(
    MaxISApproximator(
        name="greedy-first-fit",
        solve=first_fit_greedy,
        guarantee=turan_guarantee,
        accepts_frozen=True,
        description="First-fit maximal IS along a fixed order; (Δ+1)-approximation.",
    )
)

register_approximator(
    MaxISApproximator(
        name="luby-best-of-5",
        solve=lambda g: luby_based_approximation(g, seed=0, trials=5),
        guarantee=turan_guarantee,
        accepts_frozen=True,
        description="Largest of 5 random-order maximal independent sets.",
    )
)

register_approximator(
    MaxISApproximator(
        name="luby-batch-of-8",
        solve=lambda g: luby_batch_mis(g, trials=8, seed=0),
        guarantee=turan_guarantee,
        accepts_frozen=True,
        description="Largest of 8 Luby coin-flip trials, advanced bit-parallel in lanes.",
    )
)

register_approximator(
    MaxISApproximator(
        name="clique-cover",
        solve=clique_cover_approximation,
        guarantee=turan_guarantee,
        accepts_frozen=True,
        description="One representative per greedy clique-cover class.",
    )
)
