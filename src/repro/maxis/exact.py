"""Exact maximum-independent-set solvers (ground truth for tests and benches)."""

from __future__ import annotations

from typing import Hashable, Optional, Set, Union

from repro.exceptions import ApproximationError
from repro.graphs.graph import Graph
from repro.graphs.independent_sets import maximum_independent_set, verify_independent_set
from repro.graphs.indexed import IndexedGraph, maximum_independent_set_mask

Vertex = Hashable

#: Soft cap on the instance size the exact solver accepts by default.  The
#: branch-and-bound is exponential in the worst case; the cap protects the
#: reduction pipeline from accidentally being pointed at a huge conflict
#: graph with the exact oracle selected.
DEFAULT_SIZE_LIMIT = 260


def exact_maximum_independent_set(
    graph: Union[Graph, IndexedGraph], size_limit: Optional[int] = DEFAULT_SIZE_LIMIT
) -> Set[Vertex]:
    """Return a maximum independent set of ``graph``.

    Parameters
    ----------
    graph:
        The input graph.  An already-frozen
        :class:`~repro.graphs.indexed.IndexedGraph` (or an alive-mask
        subgraph view) is solved directly with the bitset branch-and-bound,
        skipping the freeze; tie-breaking is by interned id, so a
        ``repr``-sorted frozen input reproduces the mutable-graph path
        bit for bit.
    size_limit:
        Refuse instances with more vertices than this (pass ``None`` to
        disable the guard).

    Raises
    ------
    ApproximationError
        If the instance exceeds ``size_limit``.
    """
    if size_limit is not None and graph.num_vertices() > size_limit:
        raise ApproximationError(
            f"exact solver refused an instance with {graph.num_vertices()} vertices "
            f"(limit {size_limit}); use an approximation algorithm instead"
        )
    if isinstance(graph, IndexedGraph):
        best = graph.labels_for_mask(maximum_independent_set_mask(graph))
        verify_independent_set(graph, best)
        return best
    return maximum_independent_set(graph)


def exact_via_networkx(graph: Graph) -> Set[Vertex]:
    """Exact MaxIS via networkx's clique machinery on the complement graph.

    Provided as an independent cross-check of the library's own
    branch-and-bound solver; used in tests to validate
    :func:`exact_maximum_independent_set` on random instances.
    """
    import networkx as nx

    if graph.num_vertices() == 0:
        return set()
    complement = graph.complement().to_networkx()
    # networkx >= 3 removed max_clique from the main namespace; find_cliques
    # enumerates maximal cliques, from which we take a maximum one.
    best: Set[Vertex] = set()
    for clique in nx.find_cliques(complement):
        if len(clique) > len(best):
            best = set(clique)
    return best
