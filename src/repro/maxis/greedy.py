"""Greedy maximum-independent-set approximation algorithms.

The minimum-degree greedy algorithm achieves the classical Turán-type
guarantee ``|I| ≥ n / (Δ + 1) ≥ α(G) / (Δ + 1)``, i.e. it is a
(Δ+1)-approximation.  On the conflict graphs produced by the reduction the
maximum degree is polynomially bounded, so this already suffices for the
end-to-end pipeline to terminate; the paper's theorem only needs *some*
polylogarithmic approximation, which stronger oracles (or the exact solver
on small instances) provide.

Both algorithms here are the production ports running on a frozen
:class:`~repro.graphs.indexed.IndexedGraph` (plain :class:`Graph` inputs
are auto-frozen in ``repr`` order, which reproduces the reference
implementations in :mod:`repro.graphs.independent_sets` bit-for-bit):
min-degree greedy uses a bucket queue instead of an O(n) min-scan per
selection, first-fit uses bitset neighborhood tests.  Alive-mask subgraph
views (:meth:`IndexedGraph.subgraph_view`) are accepted directly — the
reduction's phase loop passes them to avoid re-freezing per phase — and
produce exactly what a from-scratch rebuild of the subgraph would.
"""

from __future__ import annotations

from typing import Hashable, Set, Union

from repro.graphs.graph import Graph
from repro.graphs.indexed import (
    IndexedGraph,
    first_fit_mis_ids,
    freeze_sorted,
    min_degree_greedy_ids,
)

Vertex = Hashable


def min_degree_greedy(graph: Union[Graph, IndexedGraph]) -> Set[Vertex]:
    """Return the independent set found by the minimum-degree greedy algorithm."""
    frozen = freeze_sorted(graph)
    return {frozen.label(i) for i in min_degree_greedy_ids(frozen)}


def first_fit_greedy(graph: Union[Graph, IndexedGraph]) -> Set[Vertex]:
    """Return the maximal independent set found by first-fit (sorted order) greedy."""
    frozen = freeze_sorted(graph)
    return {frozen.label(i) for i in first_fit_mis_ids(frozen, frozen.vertex_ids())}


def turan_guarantee(graph: Union[Graph, IndexedGraph]) -> float:
    """Return the worst-case approximation factor ``Δ + 1`` of the greedy algorithms.

    Any maximal independent set has size at least ``n / (Δ+1)`` while
    ``α(G) ≤ n``, hence ``α(G) / |I| ≤ Δ + 1``.
    """
    return float(graph.max_degree() + 1)


def turan_lower_bound(graph: Graph) -> float:
    """Return the Turán lower bound ``Σ_v 1/(deg(v)+1)`` on ``α(G)``."""
    return sum(1.0 / (graph.degree(v) + 1) for v in graph.vertices)
