"""Greedy maximum-independent-set approximation algorithms.

The minimum-degree greedy algorithm achieves the classical Turán-type
guarantee ``|I| ≥ n / (Δ + 1) ≥ α(G) / (Δ + 1)``, i.e. it is a
(Δ+1)-approximation.  On the conflict graphs produced by the reduction the
maximum degree is polynomially bounded, so this already suffices for the
end-to-end pipeline to terminate; the paper's theorem only needs *some*
polylogarithmic approximation, which stronger oracles (or the exact solver
on small instances) provide.
"""

from __future__ import annotations

from typing import Hashable, Set

from repro.graphs.graph import Graph
from repro.graphs.independent_sets import (
    greedy_maximal_independent_set,
    greedy_min_degree_independent_set,
)

Vertex = Hashable


def min_degree_greedy(graph: Graph) -> Set[Vertex]:
    """Return the independent set found by the minimum-degree greedy algorithm."""
    return greedy_min_degree_independent_set(graph)


def first_fit_greedy(graph: Graph) -> Set[Vertex]:
    """Return the maximal independent set found by first-fit (sorted order) greedy."""
    return greedy_maximal_independent_set(graph)


def turan_guarantee(graph: Graph) -> float:
    """Return the worst-case approximation factor ``Δ + 1`` of the greedy algorithms.

    Any maximal independent set has size at least ``n / (Δ+1)`` while
    ``α(G) ≤ n``, hence ``α(G) / |I| ≤ Δ + 1``.
    """
    return float(graph.max_degree() + 1)


def turan_lower_bound(graph: Graph) -> float:
    """Return the Turán lower bound ``Σ_v 1/(deg(v)+1)`` on ``α(G)``."""
    return sum(1.0 / (graph.degree(v) + 1) for v in graph.vertices)
