"""Partition-based ("local-ratio" style) MaxIS approximation.

``clique_cover_approximation`` partitions the vertices into cliques
greedily and keeps one vertex per clique; if the graph can be covered by
``t`` cliques then any independent set contains at most one vertex per
clique, so α(G) ≤ t and taking one (independent) representative from a
maximal subfamily of the cliques gives an approximation whose factor is
bounded by the largest clique-cover class count.  On conflict graphs the
``E_edge`` relation already provides a natural clique per hyperedge, which
is why this family of baselines is interesting for the reduction: picking
one triple per hyperedge clique mirrors the structure of Lemma 2.1(a).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Union

from repro.graphs.graph import Graph
from repro.graphs.independent_sets import verify_independent_set
from repro.graphs.indexed import IndexedGraph, iter_bits

Vertex = Hashable


def _greedy_clique_cover_masks(frozen: IndexedGraph) -> List[int]:
    """Greedy clique cover over a frozen graph, as id-bitsets (internal).

    Visits ids ascending — with a ``repr``-sorted interning (or an
    alive-mask view of one) this is the same vertex order as the mutable
    :func:`greedy_clique_cover` — and tests "clique ⊆ N(v)" with a single
    ``mask & ~row`` per clique.  Raw parent rows are safe for views because
    cliques only ever contain alive ids.
    """
    bitsets = frozen._bitsets
    cliques: List[int] = []
    for v in frozen.vertex_ids():
        nb = bitsets[v]
        bit = 1 << v
        for idx, clique in enumerate(cliques):
            if not clique & ~nb:
                cliques[idx] = clique | bit
                break
        else:
            cliques.append(bit)
    return cliques


def greedy_clique_cover(graph: Union[Graph, IndexedGraph]) -> List[Set[Vertex]]:
    """Partition the vertex set into cliques greedily.

    Processes vertices in deterministic order and adds each vertex to the
    first existing clique it is fully adjacent to, opening a new clique
    otherwise.  Always returns a partition (every vertex in exactly one
    clique); the number of cliques upper-bounds α(G)'s trivial certificate.

    Frozen :class:`IndexedGraph` inputs (including alive-mask subgraph
    views) run on the bitset port; vertex order is then the interned id
    order, which coincides with the ``repr`` order used for mutable graphs
    whenever the input was frozen with :func:`~repro.graphs.indexed.freeze_sorted`.
    """
    if isinstance(graph, IndexedGraph):
        return [graph.labels_for_mask(m) for m in _greedy_clique_cover_masks(graph)]
    cliques: List[Set[Vertex]] = []
    for v in sorted(graph.vertices, key=repr):
        placed = False
        neighbors = graph.neighbors(v)
        for clique in cliques:
            if clique <= neighbors:
                clique.add(v)
                placed = True
                break
        if not placed:
            cliques.append({v})
    return cliques


def clique_cover_approximation(graph: Union[Graph, IndexedGraph]) -> Set[Vertex]:
    """Independent set built by picking mutually non-adjacent clique representatives.

    Iterates over the cliques of a greedy clique cover and selects, from
    each clique in turn, a vertex not adjacent to the representatives
    chosen so far (if one exists).  The result is a maximal-within-structure
    independent set of size at least ``(#cliques) / (Δ + 1)``.
    """
    if isinstance(graph, IndexedGraph):
        bitsets = graph._bitsets
        selected = 0
        for clique in _greedy_clique_cover_masks(graph):
            for v in iter_bits(clique):
                if not bitsets[v] & selected:
                    selected |= 1 << v
                    break
        result = graph.labels_for_mask(selected)
        verify_independent_set(graph, result)
        return result
    representatives: Set[Vertex] = set()
    for clique in greedy_clique_cover(graph):
        for v in sorted(clique, key=repr):
            if not (graph.neighbors(v) & representatives):
                representatives.add(v)
                break
    verify_independent_set(graph, representatives)
    return representatives


def clique_cover_number_upper_bound(graph: Graph) -> int:
    """Return the size of the greedy clique cover (an upper bound on α(G))."""
    return len(greedy_clique_cover(graph))


def clique_cover_quality(graph: Graph) -> Dict[str, float]:
    """Return diagnostics of the clique-cover approximation on ``graph``.

    Keys: ``cliques`` (cover size), ``selected`` (independent-set size) and
    ``certified_ratio`` (cover size / selected size — an *upper bound* on
    the true approximation factor, available without solving MaxIS exactly).
    """
    cliques = greedy_clique_cover(graph)
    selected = clique_cover_approximation(graph)
    ratio = float(len(cliques)) / len(selected) if selected else float("inf")
    return {
        "cliques": float(len(cliques)),
        "selected": float(len(selected)),
        "certified_ratio": ratio,
    }
