"""MaxIS approximation via repeated randomized maximal independent sets.

A maximal independent set is automatically a (Δ+1)-approximation of the
maximum independent set.  Running Luby's algorithm (or the random-order
greedy equivalent) several times and keeping the largest set is a simple
randomized baseline that often does much better than its worst-case bound;
benchmark E6 quantifies this on the conflict graphs of the reduction.

Performance: the graph is frozen to a
:class:`~repro.graphs.indexed.IndexedGraph` once per call (in ``repr``
order, so results are bit-for-bit identical to the reference first-fit for
any seed) and every trial is a bitset sweep over a freshly shuffled id
permutation — repeated trials pay the interning cost only once.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Set, Union

from repro.exceptions import ApproximationError
from repro.graphs.graph import Graph
from repro.graphs.indexed import (
    IndexedGraph,
    first_fit_mis_ids,
    freeze_sorted,
    iter_bits,
    popcount,
)

Vertex = Hashable


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _one_random_trial(frozen: IndexedGraph, rng: random.Random) -> List[int]:
    """One maximal IS (as ids) along a uniformly random id permutation.

    Shuffling the live-id list with ids interned in ``repr`` order consumes
    the same RNG stream and visits the same vertex sequence as the
    reference implementation, which shuffled the ``repr``-sorted label
    list.  For an alive-mask view the list holds the alive parent ids, so
    the stream (a permutation of ``len(frozen)`` positions) — and hence the
    result — matches a from-scratch rebuild of the subgraph.
    """
    order = list(frozen.vertex_ids())
    rng.shuffle(order)
    return first_fit_mis_ids(frozen, order)


def random_order_mis(
    graph: Union[Graph, IndexedGraph], seed: Optional[Union[int, random.Random]] = None
) -> Set[Vertex]:
    """One maximal independent set computed along a uniformly random order.

    This is the sequential equivalent of one full run of Luby's algorithm:
    the distribution of the resulting MIS is the same as processing the
    vertices in random priority order.
    """
    rng = _rng(seed)
    frozen = freeze_sorted(graph)
    return {frozen.label(i) for i in _one_random_trial(frozen, rng)}


def best_of_random_mis(
    graph: Union[Graph, IndexedGraph],
    trials: int = 10,
    seed: Optional[Union[int, random.Random]] = None,
) -> Set[Vertex]:
    """Return the largest of ``trials`` random-order maximal independent sets.

    Raises
    ------
    ApproximationError
        If ``trials`` is not positive.
    """
    if trials <= 0:
        raise ApproximationError(f"trials must be positive, got {trials}")
    rng = _rng(seed)
    frozen = freeze_sorted(graph)
    best: List[int] = []
    for _ in range(trials):
        candidate = _one_random_trial(frozen, rng)
        if len(candidate) > len(best):
            best = candidate
    if len(frozen) > 0 and not best:
        # A maximal independent set of a non-empty graph is never empty;
        # reaching this line indicates a bug upstream.
        raise ApproximationError("random MIS sampling produced an empty set")
    return {frozen.label(i) for i in best}


def luby_based_approximation(
    graph: Union[Graph, IndexedGraph], seed: Optional[int] = None, trials: int = 5
) -> Set[Vertex]:
    """Default Luby-style approximator used by the registry (best of ``trials`` runs)."""
    return best_of_random_mis(graph, trials=trials, seed=seed)


# ----------------------------------------------------------------------
# bit-parallel batched Luby rounds
# ----------------------------------------------------------------------
def luby_trial_seeds(seed: Optional[int], trials: int) -> List[int]:
    """Derive the per-trial seeds of a batched Luby run (shared with tests).

    Trial ``t`` of :func:`luby_batch_mis` behaves exactly like
    ``luby_mis(graph, seed=luby_trial_seeds(seed, trials)[t])`` — the
    differential-fuzzing harness asserts this equality per trial.
    """
    master = random.Random(seed)
    return [master.getrandbits(64) for _ in range(trials)]


def luby_batch_mis_ids(
    graph: IndexedGraph, trials: int, seed: Optional[int] = None
) -> List[List[int]]:
    """Run ``trials`` Luby coin-flip MIS trials bit-parallel; ids per trial.

    Each trial's state is one Python-int vertex bitmask, and a round's
    coin flips arrive packed in machine-word lanes — one
    ``getrandbits(#alive)`` integer per trial whose bit ``j`` is the flip
    of the ``j``-th alive vertex.  The round's three steps all run as
    whole-word algebra over the existing bitset rows: marking and
    first-fit thinning share a single ascending pass (one ``rows[i] & sel``
    test per marked vertex), and the closed-neighborhood removal is one
    ``dead |= rows[i]`` OR per selected vertex — the graph is never walked
    neighbor by neighbor.  One sweep of the round loop advances every
    trial before any of them proceeds to the next round.

    Randomness is consumed per trial in exactly the reference order
    (rounds outermost, alive vertices ascending), so trial ``t``
    reproduces ``luby_mis(graph, seed=luby_trial_seeds(seed, trials)[t])``
    — see :func:`repro.graphs.independent_sets.luby_mis`.

    Accepts alive-mask subgraph views; returned ids are parent ids.
    """
    if trials <= 0:
        raise ApproximationError(f"trials must be positive, got {trials}")
    ids = list(graph.vertex_ids())
    rngs = [random.Random(s) for s in luby_trial_seeds(seed, trials)]
    if not ids:
        return [[] for _ in range(trials)]
    view_mask = graph.alive_mask()
    raw = graph._bitsets
    rows = {i: raw[i] & view_mask for i in ids}
    alive_v = [view_mask] * trials
    chosen_v = [0] * trials
    pending = True
    while pending:
        pending = False
        for t in range(trials):
            av = alive_v[t]
            if not av:
                continue
            draws = rngs[t].getrandbits(popcount(av))
            # Scatter the packed flips to the alive vertices and thin the
            # marked ones to an independent set, first-fit, in one
            # ascending pass.
            sel = 0
            j = 0
            m = av
            while m:
                low = m & -m
                if (draws >> j) & 1 and not (rows[low.bit_length() - 1] & sel):
                    sel |= low
                j += 1
                m ^= low
            if sel:
                chosen_v[t] |= sel
                dead = sel
                s = sel
                while s:
                    low = s & -s
                    dead |= rows[low.bit_length() - 1]
                    s ^= low
                av &= ~dead
                alive_v[t] = av
            if av:
                pending = True
    return [list(iter_bits(chosen)) for chosen in chosen_v]


def luby_batch_mis(
    graph: Union[Graph, IndexedGraph],
    trials: int = 8,
    seed: Optional[int] = None,
) -> Set[Vertex]:
    """Largest of ``trials`` bit-parallel Luby MIS trials (first max wins).

    The graph is frozen once in ``repr`` order (views pass through), all
    trials advance simultaneously through :func:`luby_batch_mis_ids`, and
    the winner is the first trial of maximum size — the same tie-break as
    running the scalar reference per trial and keeping the first best.
    """
    frozen = freeze_sorted(graph)
    per_trial = luby_batch_mis_ids(frozen, trials, seed)
    best: List[int] = []
    for candidate in per_trial:
        if len(candidate) > len(best):
            best = candidate
    if len(frozen) > 0 and not best:
        raise ApproximationError("batched Luby sampling produced an empty set")
    return {frozen.label(i) for i in best}
