"""MaxIS approximation via repeated randomized maximal independent sets.

A maximal independent set is automatically a (Δ+1)-approximation of the
maximum independent set.  Running Luby's algorithm (or the random-order
greedy equivalent) several times and keeping the largest set is a simple
randomized baseline that often does much better than its worst-case bound;
benchmark E6 quantifies this on the conflict graphs of the reduction.

Performance: the graph is frozen to a
:class:`~repro.graphs.indexed.IndexedGraph` once per call (in ``repr``
order, so results are bit-for-bit identical to the reference first-fit for
any seed) and every trial is a bitset sweep over a freshly shuffled id
permutation — repeated trials pay the interning cost only once.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Set, Union

from repro.exceptions import ApproximationError
from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph, first_fit_mis_ids, freeze_sorted

Vertex = Hashable


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _one_random_trial(frozen: IndexedGraph, rng: random.Random) -> List[int]:
    """One maximal IS (as ids) along a uniformly random id permutation.

    Shuffling the live-id list with ids interned in ``repr`` order consumes
    the same RNG stream and visits the same vertex sequence as the
    reference implementation, which shuffled the ``repr``-sorted label
    list.  For an alive-mask view the list holds the alive parent ids, so
    the stream (a permutation of ``len(frozen)`` positions) — and hence the
    result — matches a from-scratch rebuild of the subgraph.
    """
    order = list(frozen.vertex_ids())
    rng.shuffle(order)
    return first_fit_mis_ids(frozen, order)


def random_order_mis(
    graph: Union[Graph, IndexedGraph], seed: Optional[Union[int, random.Random]] = None
) -> Set[Vertex]:
    """One maximal independent set computed along a uniformly random order.

    This is the sequential equivalent of one full run of Luby's algorithm:
    the distribution of the resulting MIS is the same as processing the
    vertices in random priority order.
    """
    rng = _rng(seed)
    frozen = freeze_sorted(graph)
    return {frozen.label(i) for i in _one_random_trial(frozen, rng)}


def best_of_random_mis(
    graph: Union[Graph, IndexedGraph],
    trials: int = 10,
    seed: Optional[Union[int, random.Random]] = None,
) -> Set[Vertex]:
    """Return the largest of ``trials`` random-order maximal independent sets.

    Raises
    ------
    ApproximationError
        If ``trials`` is not positive.
    """
    if trials <= 0:
        raise ApproximationError(f"trials must be positive, got {trials}")
    rng = _rng(seed)
    frozen = freeze_sorted(graph)
    best: List[int] = []
    for _ in range(trials):
        candidate = _one_random_trial(frozen, rng)
        if len(candidate) > len(best):
            best = candidate
    if len(frozen) > 0 and not best:
        # A maximal independent set of a non-empty graph is never empty;
        # reaching this line indicates a bug upstream.
        raise ApproximationError("random MIS sampling produced an empty set")
    return {frozen.label(i) for i in best}


def luby_based_approximation(
    graph: Union[Graph, IndexedGraph], seed: Optional[int] = None, trials: int = 5
) -> Set[Vertex]:
    """Default Luby-style approximator used by the registry (best of ``trials`` runs)."""
    return best_of_random_mis(graph, trials=trials, seed=seed)
