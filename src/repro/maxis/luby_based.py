"""MaxIS approximation via repeated randomized maximal independent sets.

A maximal independent set is automatically a (Δ+1)-approximation of the
maximum independent set.  Running Luby's algorithm (or the random-order
greedy equivalent) several times and keeping the largest set is a simple
randomized baseline that often does much better than its worst-case bound;
benchmark E6 quantifies this on the conflict graphs of the reduction.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Set, Union

from repro.exceptions import ApproximationError
from repro.graphs.graph import Graph
from repro.graphs.independent_sets import greedy_maximal_independent_set

Vertex = Hashable


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_order_mis(graph: Graph, seed: Optional[Union[int, random.Random]] = None) -> Set[Vertex]:
    """One maximal independent set computed along a uniformly random order.

    This is the sequential equivalent of one full run of Luby's algorithm:
    the distribution of the resulting MIS is the same as processing the
    vertices in random priority order.
    """
    rng = _rng(seed)
    order = sorted(graph.vertices, key=repr)
    rng.shuffle(order)
    return greedy_maximal_independent_set(graph, order=order)


def best_of_random_mis(
    graph: Graph,
    trials: int = 10,
    seed: Optional[Union[int, random.Random]] = None,
) -> Set[Vertex]:
    """Return the largest of ``trials`` random-order maximal independent sets.

    Raises
    ------
    ApproximationError
        If ``trials`` is not positive.
    """
    if trials <= 0:
        raise ApproximationError(f"trials must be positive, got {trials}")
    rng = _rng(seed)
    best: Set[Vertex] = set()
    for _ in range(trials):
        candidate = random_order_mis(graph, seed=rng)
        if len(candidate) > len(best):
            best = candidate
    if graph.num_vertices() > 0 and not best:
        # A maximal independent set of a non-empty graph is never empty;
        # reaching this line indicates a bug upstream.
        raise ApproximationError("random MIS sampling produced an empty set")
    return best


def luby_based_approximation(graph: Graph, seed: Optional[int] = None, trials: int = 5) -> Set[Vertex]:
    """Default Luby-style approximator used by the registry (best of ``trials`` runs)."""
    return best_of_random_mis(graph, trials=trials, seed=seed)
