"""Verification of approximation guarantees.

The reduction's analysis hinges on the inequality ``|I| ≥ α(G)/λ``.  When
``α(G)`` is known (exactly, or via a lower bound such as the planted
independent set of Lemma 2.1(a)), the helpers here check whether a
computed independent set actually meets a claimed approximation factor —
this is how the benchmark harness certifies, per phase, that the oracle it
plugged into the reduction really behaved as a λ-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Set

from repro.exceptions import ApproximationError
from repro.graphs.graph import Graph
from repro.graphs.independent_sets import independence_number, verify_independent_set

Vertex = Hashable


@dataclass(frozen=True)
class ApproximationReport:
    """Outcome of checking an approximation guarantee.

    Attributes
    ----------
    candidate_size:
        Size of the checked independent set.
    optimum:
        The value of α(G) used for the check (exact or a lower bound).
    achieved_ratio:
        ``optimum / candidate_size`` (``1.0`` when the optimum is 0).
    claimed_lambda:
        The factor that was claimed, if any.
    satisfied:
        Whether ``achieved_ratio ≤ claimed_lambda`` (``True`` when no claim).
    """

    candidate_size: int
    optimum: float
    achieved_ratio: float
    claimed_lambda: Optional[float]
    satisfied: bool


def check_approximation(
    graph: Graph,
    candidate: Iterable[Vertex],
    claimed_lambda: Optional[float] = None,
    optimum: Optional[float] = None,
) -> ApproximationReport:
    """Verify that ``candidate`` is an independent set meeting ``claimed_lambda``.

    Parameters
    ----------
    graph:
        The instance.
    candidate:
        The independent set to check (independence itself is always verified).
    claimed_lambda:
        The approximation factor to check against; ``None`` disables the
        ratio check and only reports the achieved ratio.
    optimum:
        A known value of (or lower bound on) α(G).  If omitted, α(G) is
        computed exactly — only sensible on small instances.
    """
    candidate_set: Set[Vertex] = set(candidate)
    verify_independent_set(graph, candidate_set)
    if optimum is None:
        optimum = float(independence_number(graph))
    if optimum < 0:
        raise ApproximationError(f"optimum must be non-negative, got {optimum}")

    if optimum == 0:
        achieved = 1.0
    elif not candidate_set:
        achieved = float("inf")
    else:
        achieved = optimum / len(candidate_set)

    satisfied = True
    if claimed_lambda is not None:
        if claimed_lambda < 1:
            raise ApproximationError(
                f"an approximation factor must be at least 1, got {claimed_lambda}"
            )
        # A strict tolerance is unnecessary: both sides are exact rationals
        # represented in floating point well within precision for the sizes
        # the library handles.
        satisfied = achieved <= claimed_lambda + 1e-9

    return ApproximationReport(
        candidate_size=len(candidate_set),
        optimum=float(optimum),
        achieved_ratio=achieved,
        claimed_lambda=claimed_lambda,
        satisfied=satisfied,
    )


def require_approximation(
    graph: Graph,
    candidate: Iterable[Vertex],
    claimed_lambda: float,
    optimum: Optional[float] = None,
) -> ApproximationReport:
    """Like :func:`check_approximation` but raise if the guarantee is violated."""
    report = check_approximation(graph, candidate, claimed_lambda, optimum)
    if not report.satisfied:
        raise ApproximationError(
            f"claimed {claimed_lambda}-approximation violated: achieved ratio "
            f"{report.achieved_ratio:.3f} with |I| = {report.candidate_size} "
            f"and optimum {report.optimum}"
        )
    return report
