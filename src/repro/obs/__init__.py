"""Observability substrate: in-process metrics and span/event tracing.

``repro.obs`` is the layer ROADMAP item 1's campaign service will scrape
— built now so the runtime's numbers live in one queryable place instead
of scattered one-off dataclass counters:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms with label support,
  rendered as Prometheus text (:func:`render_snapshot`) or persisted as
  a JSON snapshot (``metrics.json`` next to every campaign store);
* :mod:`repro.obs.trace` — nested ``span("phase", k=...)`` context
  managers writing an append-only JSONL sidecar (``trace.jsonl``), with
  a process-global no-op default so instrumented hot paths cost ~nothing
  when tracing is off.

The hard invariant, asserted by the differential harnesses: nothing in
this package may perturb results — campaign digests are byte-identical
with observability on and off.  See ``docs/observability.md`` for the
metric catalog and the trace-event schema.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_FILENAME,
    REGISTRY,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    counter,
    format_value,
    gauge,
    get_registry,
    histogram,
    load_snapshot,
    render_snapshot,
)
from repro.obs.trace import (
    NULL_TRACER,
    RECORD_TYPES,
    TRACE_FILENAME,
    TRACE_VERSION,
    JsonlTracer,
    NullTracer,
    event,
    get_tracer,
    read_trace,
    set_tracer,
    span,
    tracing,
    tracing_enabled,
    validate_trace,
)

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "render_snapshot",
    "load_snapshot",
    "format_value",
    "DEFAULT_BUCKETS",
    "SNAPSHOT_VERSION",
    "METRICS_FILENAME",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "TRACE_FILENAME",
    "TRACE_VERSION",
    "RECORD_TYPES",
    "span",
    "event",
    "tracing",
    "tracing_enabled",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "validate_trace",
]
