"""In-process metrics: counters, gauges and histograms with label support.

The registry is the live, queryable view the future campaign service
will scrape (ROADMAP item 1): runtime subsystems register metric
*families* once at import time and update cheap per-label-set *children*
on their hot paths.  Two read surfaces exist:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, one
  ``name{label="value"} value`` sample per line, histograms as
  cumulative ``_bucket`` series plus ``_sum`` / ``_count``);
* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict of the same data,
  persisted by ``run_campaign`` as ``metrics.json`` next to the store so
  ``repro campaign metrics <dir>`` can render a finished run post-hoc.

Design constraints, in order:

* **Hot-path cost.**  A counter ``inc`` is one lock acquire and one
  float add.  Callers are expected to resolve ``family.labels(...)``
  once (module level or run start) and reuse the child.
* **Thread safety.**  CPython's ``+=`` on an attribute is *not* atomic
  (it is a read, an add and a write, and the GIL can switch threads
  between them), so every child guards its state with a lock.
* **Determinism.**  Rendering sorts families by name and children by
  label values, so two registries holding the same values render
  byte-identical text — which is what the golden-file test pins.
* **Bounded cardinality.**  Each family refuses more than
  ``max_label_sets`` distinct label combinations (:class:`ObsError`),
  so a bug interpolating unbounded strings into a label cannot grow the
  registry without limit.

Metrics never feed back into results: the campaign digest layer is
unaware of this module, and the differential harnesses assert
instrumented runs stay byte-identical (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ObsError

#: Format version of persisted registry snapshots (``metrics.json``).
SNAPSHOT_VERSION = 1

#: Filename of the snapshot ``run_campaign`` persists next to the store.
METRICS_FILENAME = "metrics.json"

#: Default histogram buckets, tuned for task/phase durations in seconds:
#: sub-millisecond phases up to minute-scale tasks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_metric_name(name: str) -> None:
    if not isinstance(name, str) or not _METRIC_NAME_RE.match(name):
        raise ObsError(f"invalid metric name {name!r}")


def _check_label_names(labels: Sequence[str]) -> Tuple[str, ...]:
    labels = tuple(labels)
    for label in labels:
        if not isinstance(label, str) or not _LABEL_NAME_RE.match(label):
            raise ObsError(f"invalid label name {label!r}")
    if len(set(labels)) != len(labels):
        raise ObsError(f"duplicate label names in {labels!r}")
    return labels


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value: integral floats as integers, else ``repr``.

    ``repr`` round-trips doubles exactly, which keeps the exposition
    lossless; integral values (the overwhelmingly common case for
    counters) render without the noise of a trailing ``.0``.
    """
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Child:
    """One label-set instance of a metric family; all state behind a lock."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Child):
    """A monotonically increasing value (events since process start)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counters only go up; cannot inc by {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go up and down (queue depth, alive vertices)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Fixed-bucket distribution of observed values (durations, sizes).

    Bucket counts are stored per-interval and rendered cumulatively, the
    Prometheus convention: ``_bucket{le="x"}`` counts observations
    ``<= x``, the implicit ``+Inf`` bucket equals ``_count``.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        super().__init__()
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> List[int]:
        """Per-interval (non-cumulative) counts; last entry is the overflow."""
        with self._lock:
            return list(self._counts)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its per-label-set children.

    Families are created through the registry (:meth:`MetricsRegistry.counter`
    and friends) and hand out children via :meth:`labels`.  A family
    declared without label names has exactly one child, reachable as
    ``family.labels()`` — or directly: the family proxies ``inc`` /
    ``set`` / ``dec`` / ``observe`` / ``value`` to it for convenience.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Tuple[str, ...],
        max_label_sets: int,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = label_names
        self.buckets = buckets
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def _make_child(self) -> _Child:
        if self.type == "histogram":
            return Histogram(self.buckets or DEFAULT_BUCKETS)
        return _CHILD_TYPES[self.type]()

    def labels(self, *values: Any) -> Any:
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ObsError(
                f"metric {self.name!r} takes {len(self.label_names)} label "
                f"value(s) {self.label_names!r}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= self._max_label_sets:
                    raise ObsError(
                        f"metric {self.name!r} exceeded its cardinality bound of "
                        f"{self._max_label_sets} label sets; refusing {key!r} "
                        f"(is an unbounded string interpolated into a label?)"
                    )
                child = self._make_child()
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """All (label values, child) pairs, sorted by label values."""
        with self._lock:
            return sorted(self._children.items())

    # Convenience proxies for label-less families -----------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value


class MetricsRegistry:
    """A process-local collection of metric families.

    Registration is idempotent: asking for an already-registered name
    with the same type and label names returns the existing family (so
    modules can declare their metrics at import time without worrying
    about re-imports), while a conflicting redeclaration raises
    :class:`ObsError`.
    """

    def __init__(self, max_label_sets: int = 1000) -> None:
        if max_label_sets < 1:
            raise ObsError(f"max_label_sets must be >= 1, got {max_label_sets!r}")
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        _check_metric_name(name)
        label_names = _check_label_names(labels)
        bucket_tuple = tuple(float(b) for b in buckets) if buckets is not None else None
        if bucket_tuple is not None:
            if not bucket_tuple or list(bucket_tuple) != sorted(set(bucket_tuple)):
                raise ObsError(
                    f"histogram buckets must be non-empty, sorted and distinct, "
                    f"got {buckets!r}"
                )
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing.type != metric_type
                    or existing.label_names != label_names
                    or (bucket_tuple is not None and existing.buckets != bucket_tuple)
                ):
                    raise ObsError(
                        f"metric {name!r} already registered as a {existing.type} "
                        f"with labels {existing.label_names!r}; cannot re-register "
                        f"as a {metric_type} with labels {label_names!r}"
                    )
                return existing
            family = MetricFamily(
                name,
                help_text,
                metric_type,
                label_names,
                self.max_label_sets,
                buckets=bucket_tuple if metric_type == "histogram" else None,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(name, help_text, "histogram", labels, buckets=buckets)

    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # read surfaces
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe dict of every family and sample (the persisted view)."""
        metrics = []
        for family in self.families():
            samples = []
            for label_values, child in family.children():
                sample: Dict[str, Any] = {
                    "labels": dict(zip(family.label_names, label_values)),
                }
                if isinstance(child, Histogram):
                    sample["buckets"] = list(child.buckets)
                    sample["counts"] = child.bucket_counts()
                    sample["sum"] = child.sum
                    sample["count"] = child.count
                else:
                    sample["value"] = child.value
                samples.append(sample)
            metrics.append(
                {
                    "name": family.name,
                    "type": family.type,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "samples": samples,
                }
            )
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        return render_snapshot(self.snapshot())

    def write_snapshot(self, path) -> Path:
        """Persist :meth:`snapshot` to ``path`` atomically (temp + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.snapshot(), sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path


def load_snapshot(path) -> Dict[str, Any]:
    """Read and structurally validate a persisted ``metrics.json`` snapshot."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObsError(f"cannot read metrics snapshot {path}: {exc}") from exc
    except ValueError as exc:
        raise ObsError(f"metrics snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
        raise ObsError(
            f"metrics snapshot {path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else payload!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    if not isinstance(payload.get("metrics"), list):
        raise ObsError(f"metrics snapshot {path} is missing its 'metrics' list")
    return payload


def _render_labels(labels: Dict[str, str], extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = list(labels.items()) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Split out of the registry so the CLI can render a snapshot persisted
    by an earlier run (``repro campaign metrics <dir>``) without
    reconstructing live metric objects.
    """
    lines: List[str] = []
    for metric in snapshot["metrics"]:
        name = metric["name"]
        lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for sample in metric["samples"]:
            labels = sample.get("labels", {})
            if metric["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(sample["buckets"], sample["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, [('le', format_value(bound))])}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_render_labels(labels, [('le', '+Inf')])}"
                    f" {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{_render_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-global registry every runtime subsystem registers into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (one per process; pool workers get their own)."""
    return REGISTRY


def counter(name: str, help_text: str, labels: Sequence[str] = ()) -> MetricFamily:
    """Register a counter family on the global registry."""
    return REGISTRY.counter(name, help_text, labels)


def gauge(name: str, help_text: str, labels: Sequence[str] = ()) -> MetricFamily:
    """Register a gauge family on the global registry."""
    return REGISTRY.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str,
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> MetricFamily:
    """Register a histogram family on the global registry."""
    return REGISTRY.histogram(name, help_text, labels, buckets=buckets)
