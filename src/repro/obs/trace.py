"""Span/event tracing: an append-only JSONL sidecar next to the campaign store.

The tracer is process-global with a no-op default, so instrumented hot
paths pay one attribute lookup and one method call when tracing is off —
``span("phase", k=3)`` on the :data:`NULL_TRACER` allocates nothing and
writes nothing.  ``repro campaign run --trace`` swaps in a
:class:`JsonlTracer` writing ``trace.jsonl`` into the campaign
directory; ``repro trace summary <dir>`` renders it.

Spans nest through a thread-local stack: a reduction phase span records
the enclosing task span as its parent, a task span records the campaign
run span, so the sidecar reconstructs the full execution tree without
any global coordination.  Event records are flat point-in-time marks
(shard dispatches, stale kills).

Kill tolerance mirrors the row store's discipline exactly: every record
is one JSON line, written and flushed atomically under a lock, so a
killed worker loses at most one truncated line.  On (re-)open the
writer terminates any truncated tail line first — appending after a
crash can therefore leave a malformed line *mid-file*, which is why
:func:`read_trace` skips unparseable lines the same way
``CampaignStore.rows`` does.  The trace is observational only: nothing
in the result path reads it, and the differential harnesses assert
digests are byte-identical with tracing on and off.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ObsError

#: Trace sidecar filename inside a campaign directory.
TRACE_FILENAME = "trace.jsonl"

#: Format version stamped into every ``trace_start`` header.
TRACE_VERSION = 1

#: Record types a well-formed sidecar may contain.
RECORD_TYPES = ("trace_start", "span", "event")


class _NullSpan:
    """The span handed out when tracing is off: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        """Attach attributes — dropped, tracing is off."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, costs ~nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class _Span:
    """A live span: context manager recording start/stop/duration on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "_start")

    def __init__(self, tracer: "JsonlTracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes recorded when the span closes (e.g. a status)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._enter_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and "error_type" not in self.attrs:
            self.attrs["error_type"] = exc_type.__name__
        self._tracer._exit_span(self)


class JsonlTracer:
    """Writes one JSON line per span/event to an append-only sidecar file.

    Safe for concurrent use from multiple threads (one lock around each
    write; per-thread span stacks), but process-local on purpose: pool
    workers and shard subprocesses each install their own tracer over
    their own sidecar, and the supervisor's sidecars live in the shard
    directories — there is never a multi-process writer on one file.
    """

    enabled = True

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count()
        self._origin = time.perf_counter()
        # Terminate a truncated tail line first (a killed predecessor),
        # so this tracer's records are never glued onto the fragment.
        needs_newline = False
        try:
            if self.path.stat().st_size > 0:
                with open(self.path, "rb") as handle:
                    handle.seek(-1, 2)
                    needs_newline = handle.read(1) != b"\n"
        except OSError:
            pass
        self._handle = open(self.path, "a", encoding="utf-8")
        if needs_newline:
            self._handle.write("\n")
        self._write(
            {
                "type": "trace_start",
                "version": TRACE_VERSION,
                "pid": os.getpid(),
                "unix_time": time.time(),
            }
        )

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _enter_span(self, span: _Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        span._start = self._now()
        stack.append(span)

    def _exit_span(self, span: _Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        end = self._now()
        record: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "t_start_s": span._start,
            "dur_s": end - span._start,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._write(record)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time mark (no duration)."""
        stack = self._stack()
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "t_s": self._now(),
            "parent_id": stack[-1].span_id if stack else None,
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# process-global tracer
# ----------------------------------------------------------------------
_TRACER: Any = NULL_TRACER
_TRACER_LOCK = threading.Lock()


def get_tracer():
    """The currently installed tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer) -> Any:
    """Install ``tracer`` globally; returns the previous tracer."""
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = tracer if tracer is not None else NULL_TRACER
        return previous


def span(name: str, **attrs: Any):
    """Open a span on the global tracer (a no-op context when tracing is off)."""
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an event on the global tracer (dropped when tracing is off)."""
    _TRACER.event(name, **attrs)


def tracing_enabled() -> bool:
    """Whether a real tracer is currently installed."""
    return bool(getattr(_TRACER, "enabled", False))


@contextlib.contextmanager
def tracing(path):
    """Install a :class:`JsonlTracer` on ``path`` for the duration of the block.

    The previous tracer is restored (and the sidecar handle closed) on
    exit, so nested campaigns and tests cannot leak a tracer across
    their scope.
    """
    tracer = JsonlTracer(path)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()


# ----------------------------------------------------------------------
# reading the sidecar back
# ----------------------------------------------------------------------
def read_trace(path) -> List[Dict[str, Any]]:
    """Parse a trace sidecar, skipping malformed lines (kill truncation).

    Mirrors ``CampaignStore.rows``: every line that parses to a dict
    with a known ``type`` is returned in file order; blank lines and the
    fragments a kill left behind are skipped.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("type") in RECORD_TYPES:
                records.append(record)
    return records


_REQUIRED_KEYS = {
    "trace_start": ("version", "pid", "unix_time"),
    "span": ("name", "span_id", "parent_id", "depth", "t_start_s", "dur_s"),
    "event": ("name", "t_s"),
}


def validate_trace(path) -> Tuple[int, int]:
    """Structurally validate a sidecar; returns ``(valid, skipped)`` line counts.

    Every parseable line must be schema-valid — a known type carrying
    its required keys, a supported version on headers, non-negative span
    durations — or :class:`ObsError` is raised.  Unparseable lines are
    only *counted* (``skipped``): they are the expected remains of
    killed writers, exactly like the row store's truncated tails.  A
    sidecar with no ``trace_start`` header at all is rejected.
    """
    path = Path(path)
    if not path.exists():
        raise ObsError(f"trace sidecar {path} does not exist")
    valid = skipped = headers = 0
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or record.get("type") not in RECORD_TYPES:
                raise ObsError(
                    f"{path}:{number}: not a trace record: {str(record)[:80]!r}"
                )
            kind = record["type"]
            missing = [key for key in _REQUIRED_KEYS[kind] if key not in record]
            if missing:
                raise ObsError(
                    f"{path}:{number}: {kind} record is missing {missing!r}"
                )
            if kind == "trace_start":
                headers += 1
                if record["version"] != TRACE_VERSION:
                    raise ObsError(
                        f"{path}:{number}: unsupported trace version "
                        f"{record['version']!r} (expected {TRACE_VERSION})"
                    )
            if kind == "span" and record["dur_s"] < 0:
                raise ObsError(
                    f"{path}:{number}: span {record['name']!r} has negative "
                    f"duration {record['dur_s']!r}"
                )
            valid += 1
    if headers == 0:
        raise ObsError(f"trace sidecar {path} has no trace_start header")
    return valid, skipped
