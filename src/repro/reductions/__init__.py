"""Local-reduction framework, concrete problems, and the P-SLOCAL completeness registry."""

from repro.reductions.framework import (
    LocalReduction,
    Problem,
    ReductionOverhead,
    ReductionRun,
)
from repro.reductions.problems import (
    CF_MULTICOLORING,
    DOMINATING_SET_APPROXIMATION,
    MAXIS_APPROXIMATION,
    MIS,
    NETWORK_DECOMPOSITION,
    SET_COVER,
    VERTEX_COLORING,
    cf_multicoloring_to_maxis_reduction,
    polylog_lambda,
    recommended_color_budget,
    theoretical_oracle_calls,
)
from repro.reductions.registry import (
    CompletenessFact,
    CompletenessStatus,
    all_facts,
    complete_problems,
    fact_for,
    facts_by_status,
    summary_table,
)

__all__ = [
    "LocalReduction",
    "Problem",
    "ReductionOverhead",
    "ReductionRun",
    "CF_MULTICOLORING",
    "DOMINATING_SET_APPROXIMATION",
    "MAXIS_APPROXIMATION",
    "MIS",
    "NETWORK_DECOMPOSITION",
    "SET_COVER",
    "VERTEX_COLORING",
    "cf_multicoloring_to_maxis_reduction",
    "polylog_lambda",
    "recommended_color_budget",
    "theoretical_oracle_calls",
    "CompletenessFact",
    "CompletenessStatus",
    "all_facts",
    "complete_problems",
    "fact_for",
    "facts_by_status",
    "summary_table",
]
