"""Abstractions for distributed graph problems and local reductions.

The P-SLOCAL framework of [GKM17] is built on two notions the paper relies
on:

* a **problem** — a specification of which outputs are valid for a given
  input graph (or hypergraph); and
* a **local reduction** from problem ``B`` to problem ``A`` — a LOCAL
  algorithm that solves ``B`` given an oracle for ``A`` while incurring
  only polylogarithmic overhead (in locality and in the number of oracle
  calls / virtual-graph size).

This module keeps those notions executable: a :class:`Problem` bundles a
validity checker, a :class:`LocalReduction` bundles the transformation
together with explicit overhead accounting, and reductions compose.  The
concrete instances for the problems mentioned in the paper live in
:mod:`repro.reductions.problems`; completeness facts are recorded in
:mod:`repro.reductions.registry`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import ReductionError, VerificationError


@dataclass(frozen=True)
class Problem:
    """A distributed graph/hypergraph problem.

    Attributes
    ----------
    name:
        Canonical identifier, e.g. ``"maxis-approx"``.
    description:
        One-line human-readable description.
    verify:
        ``verify(instance, solution) -> None``; must raise
        :class:`~repro.exceptions.ReproError` on invalid solutions.  A
        cheap verifier is what places a problem inside P-SLOCAL via the
        [GHK18] derandomization route, so every problem shipped here has one.
    """

    name: str
    description: str
    verify: Callable[[Any, Any], None]

    def is_valid(self, instance: Any, solution: Any) -> bool:
        """Boolean convenience wrapper around :attr:`verify`."""
        try:
            self.verify(instance, solution)
        except Exception:
            return False
        return True


@dataclass
class ReductionOverhead:
    """Overhead accounting of one reduction run.

    Attributes
    ----------
    oracle_calls:
        How many times the target-problem oracle was invoked.
    locality_factor:
        Multiplicative blow-up of the locality/radius (virtual graphs,
        distance powers, …).
    instance_blowup:
        Ratio between the largest oracle instance and the original instance
        size (vertices).
    """

    oracle_calls: int = 0
    locality_factor: float = 1.0
    instance_blowup: float = 1.0

    def is_polylog(self, n: int, exponent: float = 3.0, constant: float = 16.0) -> bool:
        """Whether every overhead component fits under ``c·log(n)^exponent``.

        The instance blow-up is allowed to be polynomial (local reductions
        may construct polynomially larger virtual graphs); only the number
        of oracle calls and the locality factor must stay polylogarithmic.
        """
        if n < 2:
            return True
        envelope = constant * (math.log2(n) ** exponent)
        return self.oracle_calls <= envelope and self.locality_factor <= envelope


@dataclass
class ReductionRun:
    """The output of executing a :class:`LocalReduction` on a concrete instance."""

    solution: Any
    overhead: ReductionOverhead
    details: Dict[str, Any] = field(default_factory=dict)


class LocalReduction:
    """A local reduction from ``source`` to ``target``.

    Parameters
    ----------
    source / target:
        The two :class:`Problem` objects ("``source`` reduces to ``target``").
    run:
        ``run(instance, oracle) -> ReductionRun`` — solves the source
        problem on ``instance`` using ``oracle`` (a callable solving the
        target problem) and reports the overhead it incurred.
    name:
        Optional display name.
    """

    def __init__(
        self,
        source: Problem,
        target: Problem,
        run: Callable[[Any, Callable[[Any], Any]], ReductionRun],
        name: Optional[str] = None,
    ) -> None:
        self.source = source
        self.target = target
        self._run = run
        self.name = name or f"{source.name}<={target.name}"

    def apply(self, instance: Any, oracle: Callable[[Any], Any], verify: bool = True) -> ReductionRun:
        """Execute the reduction and (optionally) verify the produced solution."""
        run = self._run(instance, oracle)
        if not isinstance(run, ReductionRun):
            raise ReductionError(
                f"reduction {self.name!r} must return a ReductionRun, got {type(run)!r}"
            )
        if verify:
            try:
                self.source.verify(instance, run.solution)
            except Exception as exc:
                raise VerificationError(
                    f"reduction {self.name!r} produced an invalid solution: {exc}"
                ) from exc
        return run

    def compose(self, inner: "LocalReduction") -> "LocalReduction":
        """Compose two reductions: ``self: B ≤ A`` after ``inner: A ≤ A'`` gives ``B ≤ A'``.

        The composed overhead multiplies locality factors and instance
        blow-ups and multiplies oracle-call counts (each outer oracle call
        triggers one full inner run) — the same bookkeeping the formal
        definition of local reductions uses to argue that polylog composes
        with polylog.
        """
        if self.target.name != inner.source.name:
            raise ReductionError(
                f"cannot compose: {self.name!r} targets {self.target.name!r} but "
                f"{inner.name!r} starts from {inner.source.name!r}"
            )
        outer = self

        def run(instance: Any, oracle: Callable[[Any], Any]) -> ReductionRun:
            inner_overheads: List[ReductionOverhead] = []

            def composed_oracle(sub_instance: Any) -> Any:
                inner_run = inner.apply(sub_instance, oracle)
                inner_overheads.append(inner_run.overhead)
                return inner_run.solution

            outer_run = outer.apply(instance, composed_oracle)
            total_inner_calls = sum(o.oracle_calls for o in inner_overheads)
            max_inner_locality = max((o.locality_factor for o in inner_overheads), default=1.0)
            max_inner_blowup = max((o.instance_blowup for o in inner_overheads), default=1.0)
            combined = ReductionOverhead(
                oracle_calls=total_inner_calls,
                locality_factor=outer_run.overhead.locality_factor * max_inner_locality,
                instance_blowup=outer_run.overhead.instance_blowup * max_inner_blowup,
            )
            return ReductionRun(
                solution=outer_run.solution,
                overhead=combined,
                details={"outer": outer_run.details, "inner_runs": len(inner_overheads)},
            )

        return LocalReduction(
            source=outer.source,
            target=inner.target,
            run=run,
            name=f"{outer.name} ∘ {inner.name}",
        )
