"""Concrete problem definitions and the paper's reduction as a :class:`LocalReduction`.

The problems defined here are the ones the paper discusses:

* maximal independent set (MIS),
* (Δ+1)-vertex coloring,
* λ-approximate maximum independent set,
* conflict-free multicoloring of hypergraphs, and
* (C, D)-network decomposition.

``cf_multicoloring_to_maxis_reduction`` packages Theorem 1.1's hardness
construction in the :class:`~repro.reductions.framework.LocalReduction`
interface so the overhead accounting (one oracle call per phase, phases
``≤ ρ``, conflict-graph blow-up ``k·Σ|e|``) can be measured and asserted.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Set, Tuple

from repro.coloring.multicoloring import verify_conflict_free_multicoloring
from repro.core.bounds import phase_budget
from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS
from repro.exceptions import IndependenceError, ReductionError, VerificationError
from repro.graphs.coloring import verify_proper_coloring
from repro.graphs.graph import Graph
from repro.graphs.independent_sets import is_maximal_independent_set, verify_independent_set
from repro.hypergraph.hypergraph import Hypergraph
from repro.maxis.verification import require_approximation
from repro.reductions.framework import (
    LocalReduction,
    Problem,
    ReductionOverhead,
    ReductionRun,
)


# ----------------------------------------------------------------------
# Problem definitions
# ----------------------------------------------------------------------
def _verify_mis(graph: Graph, solution: Set) -> None:
    if not is_maximal_independent_set(graph, solution):
        raise IndependenceError("solution is not a maximal independent set")


MIS = Problem(
    name="mis",
    description="Maximal independent set (inclusion-maximal).",
    verify=_verify_mis,
)


def _verify_coloring(graph: Graph, solution: Dict) -> None:
    verify_proper_coloring(graph, solution)
    if solution and max(len(set(solution.values())), 0) > graph.max_degree() + 1:
        raise VerificationError("coloring uses more than Δ+1 colors")


VERTEX_COLORING = Problem(
    name="delta-plus-one-coloring",
    description="Proper vertex coloring with at most Δ+1 colors.",
    verify=_verify_coloring,
)


def _verify_maxis_approx(instance: Tuple[Graph, float], solution: Set) -> None:
    graph, lam = instance
    require_approximation(graph, solution, claimed_lambda=lam)


MAXIS_APPROXIMATION = Problem(
    name="maxis-approx",
    description="λ-approximate maximum independent set (instance = (graph, λ)).",
    verify=_verify_maxis_approx,
)


def _verify_cf_multicoloring(instance: Tuple[Hypergraph, int], solution) -> None:
    hypergraph, max_colors = instance
    verify_conflict_free_multicoloring(hypergraph, solution, max_total_colors=max_colors)


CF_MULTICOLORING = Problem(
    name="conflict-free-multicoloring",
    description=(
        "Conflict-free multicoloring of a hypergraph "
        "(instance = (hypergraph, total color budget))."
    ),
    verify=_verify_cf_multicoloring,
)


def _verify_dominating_set_approx(instance: Tuple[Graph, float], solution: Set) -> None:
    from repro.covering.dominating_set import domination_number, verify_dominating_set

    graph, factor = instance
    verify_dominating_set(graph, solution)
    optimum = domination_number(graph)
    if optimum > 0 and len(set(solution)) > factor * optimum + 1e-9:
        raise VerificationError(
            f"dominating set of size {len(set(solution))} exceeds {factor} x optimum {optimum}"
        )


DOMINATING_SET_APPROXIMATION = Problem(
    name="dominating-set-approx",
    description=(
        "Approximate minimum dominating set (instance = (graph, approximation factor)); "
        "the exact optimum is computed for verification, so instances must stay small."
    ),
    verify=_verify_dominating_set_approx,
)


def _verify_set_cover(instance, solution) -> None:
    from repro.covering.set_cover import verify_set_cover

    verify_set_cover(instance, solution)


SET_COVER = Problem(
    name="set-cover-approx",
    description="Set cover (instance = SetCoverInstance, solution = iterable of set ids).",
    verify=_verify_set_cover,
)


def _verify_network_decomposition(instance: Tuple[Graph, int, int], solution) -> None:
    from repro.decomposition.network_decomposition import verify_network_decomposition

    graph, max_colors, max_diameter = instance
    verify_network_decomposition(graph, solution, max_colors, max_diameter)


NETWORK_DECOMPOSITION = Problem(
    name="network-decomposition",
    description="(C, D)-network decomposition (instance = (graph, C, D)).",
    verify=_verify_network_decomposition,
)


# ----------------------------------------------------------------------
# The paper's reduction in the LocalReduction interface
# ----------------------------------------------------------------------
def cf_multicoloring_to_maxis_reduction(k: int, lam: float) -> LocalReduction:
    """Return Theorem 1.1's reduction ``CF-multicoloring ≤ MaxIS-approximation``.

    The returned :class:`LocalReduction` expects instances of the source
    problem of the form ``(hypergraph, color_budget)`` — the budget is
    checked against the produced multicoloring — and an oracle for the
    target problem that accepts ``(graph, λ)`` instances and returns an
    independent set.

    Parameters
    ----------
    k:
        Per-phase palette size.
    lam:
        The approximation factor the oracle is assumed to provide.
    """
    if k <= 0:
        raise ReductionError(f"palette size k must be positive, got {k}")
    if lam < 1:
        raise ReductionError(f"approximation factor must be ≥ 1, got {lam}")

    def run(instance: Tuple[Hypergraph, int], oracle: Callable[[Any], Any]) -> ReductionRun:
        hypergraph, _budget = instance
        calls = {"count": 0, "largest": 0}

        def counting_oracle(graph: Graph) -> Set:
            calls["count"] += 1
            calls["largest"] = max(calls["largest"], graph.num_vertices())
            return oracle((graph, lam))

        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=k, approximator=counting_oracle, lam=lam
        )
        result = reduction.run(hypergraph)

        n = max(hypergraph.num_vertices(), 1)
        overhead = ReductionOverhead(
            oracle_calls=calls["count"],
            locality_factor=2.0,  # conflict-graph edges span host distance ≤ 2
            instance_blowup=calls["largest"] / n,
        )
        return ReductionRun(
            solution=result.multicoloring,
            overhead=overhead,
            details={
                "phases": result.num_phases,
                "phase_bound": result.phase_bound,
                "total_colors": result.total_colors,
                "color_bound": result.color_bound,
            },
        )

    return LocalReduction(
        source=CF_MULTICOLORING,
        target=MAXIS_APPROXIMATION,
        run=run,
        name=f"cf-multicoloring<=maxis-approx(k={k}, λ={lam})",
    )


def theoretical_oracle_calls(lam: float, m: int) -> int:
    """Upper bound on the oracle calls the reduction makes: one per phase, ``≤ ρ``."""
    return phase_budget(lam, m)


def recommended_color_budget(k: int, lam: float, m: int) -> int:
    """The ``k·ρ`` color budget to pass as part of a CF-multicoloring instance."""
    return k * phase_budget(lam, m)


def polylog_lambda(n: int, exponent: float = 2.0) -> float:
    """A concrete polylogarithmic approximation factor ``max(1, log2(n)^exponent)``.

    Used by examples and benchmarks to instantiate "polylogarithmic MaxIS
    approximation" for finite n.
    """
    if n < 2:
        return 1.0
    return max(1.0, math.log2(n) ** exponent)
