"""Registry of P-SLOCAL membership / hardness / completeness facts.

The paper situates its result in a landscape of known facts about the
class P-SLOCAL.  This registry records those facts (with their sources) in
a machine-readable form so that examples and documentation can query them,
and so the library has one authoritative statement of *which* result is
reproduced here (``maxis-approx`` completeness, Theorem 1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional


class CompletenessStatus(Enum):
    """Where a problem sits relative to the class P-SLOCAL."""

    MEMBER = "member"                  # known to be in P-SLOCAL
    HARD = "hard"                      # P-SLOCAL-hard
    COMPLETE = "complete"              # both member and hard
    OPEN = "open"                      # completeness is an open question


@dataclass(frozen=True)
class CompletenessFact:
    """One recorded fact about a problem.

    Attributes
    ----------
    problem:
        Problem identifier (matches :mod:`repro.reductions.problems` names
        where applicable).
    status:
        Its :class:`CompletenessStatus`.
    source:
        Citation key of the paper establishing the fact.
    note:
        Free-text qualifier (e.g. the hypergraph family a hardness result
        is stated for).
    """

    problem: str
    status: CompletenessStatus
    source: str
    note: str = ""


_FACTS: List[CompletenessFact] = [
    CompletenessFact(
        problem="mis",
        status=CompletenessStatus.MEMBER,
        source="GKM17",
        note="SLOCAL locality 1; completeness is open (stated explicitly in the paper).",
    ),
    CompletenessFact(
        problem="delta-plus-one-coloring",
        status=CompletenessStatus.MEMBER,
        source="GKM17",
        note="SLOCAL locality 1; completeness is open.",
    ),
    CompletenessFact(
        problem="network-decomposition",
        status=CompletenessStatus.COMPLETE,
        source="GKM17",
        note="(poly log n, poly log n)-network decomposition.",
    ),
    CompletenessFact(
        problem="conflict-free-multicoloring",
        status=CompletenessStatus.COMPLETE,
        source="GKM17",
        note="poly log n colors, almost-uniform hypergraphs with poly n hyperedges (Theorem 1.2).",
    ),
    CompletenessFact(
        problem="dominating-set-approx",
        status=CompletenessStatus.COMPLETE,
        source="GHK18",
        note="O(log Δ)-approximation of minimum dominating set.",
    ),
    CompletenessFact(
        problem="set-cover-approx",
        status=CompletenessStatus.COMPLETE,
        source="GHK18",
        note="Distributed set cover approximation.",
    ),
    CompletenessFact(
        problem="maxis-approx",
        status=CompletenessStatus.COMPLETE,
        source="Maus19",
        note=(
            "Polylogarithmic maximum independent set approximation; "
            "Theorem 1.1 — the result reproduced by this library."
        ),
    ),
]


def all_facts() -> List[CompletenessFact]:
    """Return every recorded fact (a copy)."""
    return list(_FACTS)


def facts_by_status(status: CompletenessStatus) -> List[CompletenessFact]:
    """Return every fact with the given status."""
    return [f for f in _FACTS if f.status is status]


def fact_for(problem: str) -> Optional[CompletenessFact]:
    """Return the recorded fact for ``problem`` (or ``None``)."""
    for f in _FACTS:
        if f.problem == problem:
            return f
    return None


def complete_problems() -> List[str]:
    """Return the names of all problems recorded as P-SLOCAL-complete."""
    return [f.problem for f in facts_by_status(CompletenessStatus.COMPLETE)]


def summary_table() -> List[Dict[str, str]]:
    """Return the registry as rows ready for tabular display."""
    return [
        {
            "problem": f.problem,
            "status": f.status.value,
            "source": f.source,
            "note": f.note,
        }
        for f in _FACTS
    ]
