"""Parallel, resumable experiment-campaign runtime.

The subsystem turns single Theorem 1.1 reductions into *fleets*: a
declarative :class:`CampaignSpec` expands a grid of (family × size × k ×
oracle × λ × replicate) into deterministic tasks, a
:class:`CampaignStore` persists one JSONL row per task (resumable after a
kill), :func:`run_campaign` executes the pending tasks serially or on a
``multiprocessing`` pool with byte-identical results, and the aggregation
layer rolls everything up into :class:`~repro.analysis.records.ExperimentRecord`
objects with a deterministic digest.  The ``repro campaign`` CLI
subcommand is the user-facing entry point.
"""

from repro.runtime.aggregate import (
    campaign_digest,
    campaign_records,
    color_budget_record,
    done_rows,
    failed_rows,
    phase_decay_record,
    throughput_record,
)
from repro.runtime.scheduler import CampaignRunStats, run_campaign
from repro.runtime.spec import CampaignSpec, TaskSpec, task_instance_seed
from repro.runtime.store import CampaignStore
from repro.runtime.tasks import (
    FAMILIES,
    build_instance,
    execute_task,
    instance_digest,
    resolve_oracle,
    validate_oracle_name,
)

__all__ = [
    "CampaignSpec",
    "TaskSpec",
    "task_instance_seed",
    "CampaignStore",
    "CampaignRunStats",
    "run_campaign",
    "FAMILIES",
    "build_instance",
    "execute_task",
    "instance_digest",
    "resolve_oracle",
    "validate_oracle_name",
    "campaign_digest",
    "campaign_records",
    "color_budget_record",
    "done_rows",
    "failed_rows",
    "phase_decay_record",
    "throughput_record",
]
