"""Parallel, resumable, shard-aware experiment-campaign runtime.

The subsystem turns single Theorem 1.1 reductions into *fleets*: a
declarative :class:`CampaignSpec` expands a grid of (family × size × k ×
oracle × λ × replicate) into deterministic tasks, a
:class:`CampaignStore` persists one JSONL row per task (resumable after a
kill; ``store: sqlite`` in the spec selects the indexed
:class:`SQLiteCampaignStore` behind the same surface, and both keep
incremental per-task aggregates so reports cost O(new rows) —
:func:`open_store` picks the right backend for a directory),
:func:`run_campaign` executes the pending tasks serially, on a
per-call ``multiprocessing`` pool, or on a persistent :class:`WorkerPool`
— optionally restricted to one sha256-stable shard of the grid — with
byte-identical results, and the aggregation layer rolls everything up
into :class:`~repro.analysis.records.ExperimentRecord` objects with a
deterministic digest.  Shard stores fuse back into one via
:func:`merge_shards`; instance generation is memoized per worker by
:class:`InstanceCache`.  The ``repro campaign`` CLI subcommand is the
user-facing entry point.

Fault tolerance lives in three layers (see :mod:`repro.runtime.supervise`):
per-task watchdog timeouts (``task_timeout_s`` → ``status="timeout"``
rows), a bounded :class:`RetryPolicy` per error signature, and the
:class:`ShardCoordinator`, which supervises shard workers through a
pluggable :class:`ShardExecutor`, restarts crashed or heartbeat-stale
shards with backoff, and quarantines poisoned ones.  The deterministic
:class:`~repro.runtime.faults.FaultPlan` chaos harness (gated behind
``REPRO_CHAOS=1``) injects kills, hangs and failures to prove the whole
stack converges to the serial digest.
"""

from repro.runtime.aggregate import (
    campaign_digest,
    campaign_records,
    color_budget_record,
    done_rows,
    failed_rows,
    phase_decay_record,
    summaries_of,
    throughput_record,
)
from repro.runtime.faults import CHAOS_ENV_VAR, FaultPlan, chaos_enabled, inject_fault
from repro.runtime.scheduler import (
    DEFAULT_RETRY_POLICY,
    CampaignRunStats,
    RetryPolicy,
    WorkerPool,
    run_campaign,
    touch_heartbeat,
)
from repro.runtime.spec import (
    CampaignSpec,
    TaskSpec,
    check_shard,
    task_instance_seed,
    task_shard_index,
)
from repro.runtime.store import (
    RETRYABLE_STATUSES,
    STORE_CLASSES,
    BaseCampaignStore,
    CampaignStore,
    CompactionStats,
    SQLiteCampaignStore,
    cache_counts_of,
    completed_of,
    detect_backend,
    merge_shards,
    open_store,
    retry_exhausted_of,
    status_counts_of,
)
from repro.runtime.summary import format_duration, records_from_summaries, summarize_row
from repro.runtime.supervise import (
    InlineExecutor,
    LocalProcessExecutor,
    ShardCoordinator,
    ShardExecutor,
    ShardHandle,
    ShardLaunch,
    ShardReport,
    SupervisionReport,
)
from repro.runtime.tasks import (
    FAMILIES,
    INSTANCE_CACHE,
    InstanceCache,
    build_instance,
    execute_task,
    instance_digest,
    instance_key,
    resolve_oracle,
    validate_oracle_name,
    watchdog,
)

__all__ = [
    "CampaignSpec",
    "TaskSpec",
    "task_instance_seed",
    "task_shard_index",
    "check_shard",
    "CampaignStore",
    "BaseCampaignStore",
    "SQLiteCampaignStore",
    "CompactionStats",
    "STORE_CLASSES",
    "RETRYABLE_STATUSES",
    "merge_shards",
    "open_store",
    "detect_backend",
    "completed_of",
    "status_counts_of",
    "cache_counts_of",
    "retry_exhausted_of",
    "summarize_row",
    "format_duration",
    "records_from_summaries",
    "summaries_of",
    "CampaignRunStats",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "WorkerPool",
    "run_campaign",
    "touch_heartbeat",
    "watchdog",
    "CHAOS_ENV_VAR",
    "FaultPlan",
    "chaos_enabled",
    "inject_fault",
    "ShardCoordinator",
    "ShardExecutor",
    "ShardHandle",
    "ShardLaunch",
    "ShardReport",
    "SupervisionReport",
    "LocalProcessExecutor",
    "InlineExecutor",
    "FAMILIES",
    "INSTANCE_CACHE",
    "InstanceCache",
    "build_instance",
    "execute_task",
    "instance_digest",
    "instance_key",
    "resolve_oracle",
    "validate_oracle_name",
    "campaign_digest",
    "campaign_records",
    "color_budget_record",
    "done_rows",
    "failed_rows",
    "phase_decay_record",
    "throughput_record",
]
