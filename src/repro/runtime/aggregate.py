"""Roll-ups of campaign results into :class:`ExperimentRecord` aggregates.

Two *deterministic* records are derived from the stored rows — per-oracle
phase-decay curves (``C1``) and per-(oracle, k) color budgets (``C2``) —
plus a timing record (``C3``, throughput in tasks/s) built from the
scheduler's run stats.  The deterministic records are pure functions of
the task results: rows are deduplicated by task key (last write wins,
matching the store) and sorted before any float is accumulated, so the
same completed task set always produces the same bytes.
:func:`campaign_digest` pins that down as a SHA-256 over the canonical
JSON of the deterministic records — the quantity the parallel executor is
differentially checked against the serial one on.  Timing lives only in
``C3``, which is deliberately excluded from the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.analysis.records import ExperimentRecord
from repro.runtime.scheduler import CampaignRunStats
from repro.runtime.spec import CampaignSpec


def _partition(rows: Iterable[Dict[str, Any]]) -> tuple:
    """Deduplicate by task key (last wins, like the store) and split by status.

    Returns ``(done, failed)``, both sorted by task key; every
    non-``"done"`` terminal status (``failed``, ``timeout``) lands in the
    failed partition, so watchdog timeouts never leak into the
    deterministic records.
    """
    latest: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        latest[row["task_key"]] = row
    done = []
    failed = []
    for key in sorted(latest):
        (done if latest[key]["status"] == "done" else failed).append(latest[key])
    return done, failed


def done_rows(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The latest ``"done"`` row per task key, sorted by key."""
    return _partition(rows)[0]


def failed_rows(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The latest rows that are *not* ``"done"``, sorted by task key."""
    return _partition(rows)[1]


def _total_colors(result: Dict[str, Any]) -> int:
    """Distinct colors of a serialized reduction result (without reconstructing it)."""
    colors = set()
    for _vertex, vertex_colors in result["multicoloring"]:
        colors.update((phase, c) for phase, c in vertex_colors)
    return len(colors)


def _metadata(spec: CampaignSpec, done: Sequence[Dict], failed: Sequence[Dict]) -> Dict[str, Any]:
    return {
        "campaign": spec.name,
        "seed": spec.seed,
        "spec_digest": spec.digest(),
        "tasks_total": spec.num_tasks(),
        "tasks_done": len(done),
        "tasks_failed": len(failed),
    }


def phase_decay_record(spec: CampaignSpec, rows: Iterable[Dict[str, Any]]) -> ExperimentRecord:
    """Per-oracle phase-decay curves: mean surviving-edge fraction after each phase.

    Tasks that already finished contribute ``0.0`` to later phases, so the
    curve is a proper mean over the oracle's whole task population; tasks
    whose instance had no edges (zero executed phases) are excluded.
    """
    done, failed = _partition(rows)
    record = ExperimentRecord(
        experiment="C1",
        description="per-oracle phase decay: mean fraction of edges surviving each phase",
        metadata=_metadata(spec, done, failed),
    )
    by_oracle: Dict[str, List[Dict[str, Any]]] = {}
    for row in done:
        if row["result"]["phases"]:
            by_oracle.setdefault(row["oracle"], []).append(row)
    for oracle in sorted(by_oracle):
        tasks = by_oracle[oracle]
        max_phases = max(len(row["result"]["phases"]) for row in tasks)
        for phase in range(1, max_phases + 1):
            remaining_sum = 0.0
            active = 0
            for row in tasks:
                phases = row["result"]["phases"]
                initial = phases[0]["edges_before"]
                if len(phases) >= phase:
                    active += 1
                    remaining_sum += phases[phase - 1]["edges_after"] / initial
            record.add_row(
                oracle=oracle,
                phase=phase,
                tasks=len(tasks),
                active_tasks=active,
                mean_remaining_fraction=remaining_sum / len(tasks),
            )
    return record


def color_budget_record(spec: CampaignSpec, rows: Iterable[Dict[str, Any]]) -> ExperimentRecord:
    """Per-(oracle, k) color budgets: phases and colors used vs. the k·ρ bound."""
    done, failed = _partition(rows)
    record = ExperimentRecord(
        experiment="C2",
        description="per-(oracle, k) phases and color budgets of the reduction",
        metadata=_metadata(spec, done, failed),
    )
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for row in done:
        groups.setdefault((row["oracle"], row["k"]), []).append(row)
    for oracle, k in sorted(groups):
        tasks = groups[(oracle, k)]
        num_phases = [len(row["result"]["phases"]) for row in tasks]
        total_colors = [_total_colors(row["result"]) for row in tasks]
        color_bounds = [row["result"]["color_bound"] for row in tasks]
        within = sum(
            1 for colors, bound in zip(total_colors, color_bounds) if colors <= bound
        )
        record.add_row(
            oracle=oracle,
            k=k,
            tasks=len(tasks),
            mean_phases=sum(num_phases) / len(tasks),
            max_phases=max(num_phases),
            mean_total_colors=sum(total_colors) / len(tasks),
            max_total_colors=max(total_colors),
            mean_color_bound=sum(color_bounds) / len(tasks),
            within_color_bound_fraction=within / len(tasks),
        )
    return record


def campaign_records(spec: CampaignSpec, rows: Iterable[Dict[str, Any]]) -> List[ExperimentRecord]:
    """The deterministic aggregate: phase decay (C1) and color budgets (C2)."""
    rows = list(rows)
    return [phase_decay_record(spec, rows), color_budget_record(spec, rows)]


def campaign_digest(records: Sequence[ExperimentRecord]) -> str:
    """SHA-256 over the canonical JSON of deterministic aggregate records.

    This is the byte-identity criterion for serial-vs-parallel execution:
    same completed tasks ⇒ same digest, regardless of worker count, task
    completion order, or how many interrupted runs it took to get there.
    """
    payload = json.dumps([record.to_dict() for record in records], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def throughput_record(
    spec: CampaignSpec, stats: Sequence[CampaignRunStats]
) -> ExperimentRecord:
    """Timing record (C3): one row per run — excluded from :func:`campaign_digest`."""
    record = ExperimentRecord(
        experiment="C3",
        description="campaign throughput per run (timing; not part of the digest)",
        metadata={"campaign": spec.name, "seed": spec.seed},
    )
    for entry in stats:
        record.add_row(
            workers=entry.workers,
            total_tasks=entry.total_tasks,
            executed=entry.executed,
            skipped=entry.skipped,
            failed=entry.failed,
            wall_time_s=entry.wall_time_s,
            tasks_per_s=entry.tasks_per_s,
            shard="-" if entry.shard is None else f"{entry.shard[0]}/{entry.shard[1]}",
            pool_warm=entry.pool_warm,
            cache_hits=entry.cache_hits,
            cache_misses=entry.cache_misses,
            timeouts=entry.timeouts,
            retried=entry.retried,
            exhausted=entry.exhausted,
        )
    return record
