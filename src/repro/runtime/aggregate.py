"""Roll-ups of campaign results into :class:`ExperimentRecord` aggregates.

Two *deterministic* records are derived from the stored rows — per-oracle
phase-decay curves (``C1``) and per-(oracle, k) color budgets (``C2``) —
plus a timing record (``C3``, throughput in tasks/s) built from the
scheduler's run stats.  The deterministic records are pure functions of
the task results: rows are deduplicated by task key (last write wins,
matching the store) and sorted before any float is accumulated, so the
same completed task set always produces the same bytes.
:func:`campaign_digest` pins that down as a SHA-256 over the canonical
JSON of the deterministic records — the quantity the parallel executor is
differentially checked against the serial one on.  Timing lives only in
``C3``, which is deliberately excluded from the digest.

Both record builders reduce rows to per-task sufficient statistics
(:func:`repro.runtime.summary.summarize_row`) and delegate to
:func:`repro.runtime.summary.records_from_summaries` — the same builder
the stores' incremental-aggregation path feeds from their persisted
summary sidecars.  One builder, two feeding paths: the full-row path
here stays the retained differential reference (it always re-reads every
row), and the incremental path is digest-identical by construction.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.analysis.records import ExperimentRecord
from repro.runtime.scheduler import CampaignRunStats
from repro.runtime.spec import CampaignSpec
from repro.runtime.summary import records_from_summaries, summarize_row, total_colors_of


def _partition(rows: Iterable[Dict[str, Any]]) -> tuple:
    """Deduplicate by task key (last wins, like the store) and split by status.

    Returns ``(done, failed)``, both sorted by task key; every
    non-``"done"`` terminal status (``failed``, ``timeout``) lands in the
    failed partition, so watchdog timeouts never leak into the
    deterministic records.
    """
    latest: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        latest[row["task_key"]] = row
    done = []
    failed = []
    for key in sorted(latest):
        (done if latest[key]["status"] == "done" else failed).append(latest[key])
    return done, failed


def done_rows(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The latest ``"done"`` row per task key, sorted by key."""
    return _partition(rows)[0]


def failed_rows(rows: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The latest rows that are *not* ``"done"``, sorted by task key."""
    return _partition(rows)[1]


#: Retained alias — the canonical implementation lives in
#: :func:`repro.runtime.summary.total_colors_of`.
_total_colors = total_colors_of


def summaries_of(rows: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Reduce rows to their latest-per-key sufficient statistics.

    Last write wins per task key, matching the store, then each surviving
    row is summarized via :func:`repro.runtime.summary.summarize_row`.
    """
    latest: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        latest[row["task_key"]] = row
    return {key: summarize_row(row) for key, row in latest.items()}


def phase_decay_record(spec: CampaignSpec, rows: Iterable[Dict[str, Any]]) -> ExperimentRecord:
    """Per-oracle phase-decay curves: mean surviving-edge fraction after each phase.

    Tasks that already finished contribute ``0.0`` to later phases, so the
    curve is a proper mean over the oracle's whole task population; tasks
    whose instance had no edges (zero executed phases) are excluded.
    """
    return records_from_summaries(spec, summaries_of(rows))[0]


def color_budget_record(spec: CampaignSpec, rows: Iterable[Dict[str, Any]]) -> ExperimentRecord:
    """Per-(oracle, k) color budgets: phases and colors used vs. the k·ρ bound."""
    return records_from_summaries(spec, summaries_of(rows))[1]


def campaign_records(spec: CampaignSpec, rows: Iterable[Dict[str, Any]]) -> List[ExperimentRecord]:
    """The deterministic aggregate: phase decay (C1) and color budgets (C2).

    This is the full-row reference path: it re-reads every row it is
    given.  Stores offer the same records in O(new rows) via their
    persisted summaries (``store.summaries()`` +
    :func:`repro.runtime.summary.records_from_summaries`); the fuzz
    harness asserts both paths digest-identical.
    """
    return records_from_summaries(spec, summaries_of(rows))


def campaign_digest(records: Sequence[ExperimentRecord]) -> str:
    """SHA-256 over the canonical JSON of deterministic aggregate records.

    This is the byte-identity criterion for serial-vs-parallel execution:
    same completed tasks ⇒ same digest, regardless of worker count, task
    completion order, or how many interrupted runs it took to get there.
    """
    payload = json.dumps([record.to_dict() for record in records], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def throughput_record(
    spec: CampaignSpec, stats: Sequence[CampaignRunStats]
) -> ExperimentRecord:
    """Timing record (C3): one row per run — excluded from :func:`campaign_digest`."""
    record = ExperimentRecord(
        experiment="C3",
        description="campaign throughput per run (timing; not part of the digest)",
        metadata={"campaign": spec.name, "seed": spec.seed},
    )
    for entry in stats:
        record.add_row(
            workers=entry.workers,
            total_tasks=entry.total_tasks,
            executed=entry.executed,
            skipped=entry.skipped,
            failed=entry.failed,
            wall_time_s=entry.wall_time_s,
            tasks_per_s=entry.tasks_per_s,
            shard="-" if entry.shard is None else f"{entry.shard[0]}/{entry.shard[1]}",
            pool_warm=entry.pool_warm,
            cache_hits=entry.cache_hits,
            cache_misses=entry.cache_misses,
            timeouts=entry.timeouts,
            retried=entry.retried,
            exhausted=entry.exhausted,
        )
    return record
