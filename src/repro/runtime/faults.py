"""Deterministic fault injection for the campaign runtime (chaos harness).

A :class:`FaultPlan` describes three independent fault modes a worker may
suffer while executing one task:

* **kill** — the worker process dies instantly (``os._exit``), without
  flushing anything: the moral equivalent of ``kill -9`` or a machine
  reboot mid-row.  Only the shard coordinator's heartbeat/restart logic
  can recover from this.
* **hang** — the task blocks for :attr:`FaultPlan.hang_s` seconds,
  simulating a wedged oracle.  The per-task watchdog
  (``task_timeout_s``) turns this into a ``status="timeout"`` row; with
  no watchdog the shard's heartbeat goes stale and the coordinator kills
  and re-dispatches the worker.
* **fail** — a synthetic :class:`~repro.exceptions.FaultInjectionError`
  is raised, which :func:`repro.runtime.tasks.execute_task` records as an
  ordinary ``status="failed"`` row, to be retried under the bounded
  retry policy.

Every decision is a *pure function* of ``(seed, salt, task_key,
attempt)`` via sha256 — no global RNG, no wall clock — so a chaos run is
reproducible: the same plan over the same pending tasks injects the same
faults.  The ``salt`` is bumped by the coordinator on every re-dispatch
of a shard and the ``attempt`` by every retry of a row, so recovery
escapes a deterministic fault instead of replaying it forever; this is
what lets the chaos fuzz suite assert that supervised runs *converge* to
the fault-free serial digest.

Chaos is dangerous by construction (it kills live processes), so it is
double-gated: the CLI refuses ``--chaos`` and :func:`require_chaos`
raises unless the :data:`CHAOS_ENV_VAR` environment variable is set to
``"1"``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exceptions import CampaignError, FaultInjectionError

#: Environment flag gating every chaos entry point (CLI and library).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit status of an injected worker kill — the conventional code of a
#: SIGKILLed process, which is what the kill simulates.
KILL_EXIT_CODE = 137

#: The three fault modes, in the order the decision thresholds stack.
FAULT_MODES = ("kill", "hang", "fail")


def chaos_enabled() -> bool:
    """True when the :data:`CHAOS_ENV_VAR` gate is open."""
    return os.environ.get(CHAOS_ENV_VAR) == "1"


def require_chaos() -> None:
    """Raise :class:`CampaignError` unless the chaos environment gate is open."""
    if not chaos_enabled():
        raise CampaignError(
            f"fault injection is guarded: set {CHAOS_ENV_VAR}=1 to allow "
            f"--chaos / FaultPlan execution (it kills live worker processes)"
        )


@dataclass(frozen=True)
class FaultPlan:
    """Per-task fault probabilities plus the deterministic decision seed.

    Attributes
    ----------
    p_kill, p_hang, p_fail:
        Probabilities of the three fault modes per task execution;
        mutually exclusive (at most one fires), so their sum must be
        ``<= 1``.
    seed:
        Decision seed; every injection is a pure function of
        ``(seed, salt, task_key, attempt)``.
    salt:
        Dispatch salt.  The coordinator bumps it on every re-dispatch of
        a shard so a restarted worker draws fresh decisions instead of
        dying on the same task forever.
    hang_s:
        How long an injected hang sleeps.  Deliberately enormous by
        default: a hang is only survivable because the watchdog or the
        heartbeat deadline cuts it short.
    max_salt:
        When set, faults are injected only while ``salt < max_salt`` —
        e.g. ``max_salt=1`` faults the first dispatch of every shard and
        leaves every re-dispatch clean, which makes targeted recovery
        tests deterministic.
    """

    p_kill: float = 0.0
    p_hang: float = 0.0
    p_fail: float = 0.0
    seed: int = 0
    salt: int = 0
    hang_s: float = 3600.0
    max_salt: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("p_kill", "p_hang", "p_fail"):
            p = getattr(self, name)
            if not isinstance(p, (int, float)) or isinstance(p, bool) or not 0 <= p <= 1:
                raise CampaignError(f"fault probability {name} must lie in [0, 1], got {p!r}")
        if self.p_kill + self.p_hang + self.p_fail > 1 + 1e-9:
            raise CampaignError(
                f"fault probabilities must sum to <= 1, got "
                f"{self.p_kill} + {self.p_hang} + {self.p_fail}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise CampaignError(f"fault seed must be an int, got {self.seed!r}")
        if not isinstance(self.salt, int) or isinstance(self.salt, bool) or self.salt < 0:
            raise CampaignError(f"fault salt must be a non-negative int, got {self.salt!r}")
        if not isinstance(self.hang_s, (int, float)) or self.hang_s <= 0:
            raise CampaignError(f"hang_s must be positive, got {self.hang_s!r}")

    # ------------------------------------------------------------------
    # parsing / payload round trip
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0, salt: int = 0) -> "FaultPlan":
        """Parse the CLI form ``p_kill,p_hang,p_fail`` (e.g. ``0.1,0.05,0.2``)."""
        parts = text.split(",")
        if len(parts) != 3:
            raise CampaignError(
                f"--chaos must look like p_kill,p_hang,p_fail (e.g. 0.1,0.05,0.2), got {text!r}"
            )
        try:
            p_kill, p_hang, p_fail = (float(part) for part in parts)
        except ValueError as exc:
            raise CampaignError(f"--chaos probabilities must be floats: {exc}") from exc
        return cls(p_kill=p_kill, p_hang=p_hang, p_fail=p_fail, seed=seed, salt=salt)

    def with_salt(self, salt: int) -> "FaultPlan":
        """The same plan re-salted (used per dispatch by the coordinator)."""
        return FaultPlan(
            p_kill=self.p_kill,
            p_hang=self.p_hang,
            p_fail=self.p_fail,
            seed=self.seed,
            salt=salt,
            hang_s=self.hang_s,
            max_salt=self.max_salt,
        )

    def to_payload(self) -> Dict[str, Any]:
        """Plain-dict form carried inside task payloads (pickles cheaply)."""
        return {
            "p_kill": self.p_kill,
            "p_hang": self.p_hang,
            "p_fail": self.p_fail,
            "seed": self.seed,
            "salt": self.salt,
            "hang_s": self.hang_s,
            "max_salt": self.max_salt,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_payload`."""
        return cls(**data)

    def cli_args(self) -> list:
        """The ``repro campaign run`` arguments reproducing this plan."""
        args = [
            "--chaos",
            f"{self.p_kill:g},{self.p_hang:g},{self.p_fail:g}",
            "--chaos-seed",
            str(self.seed),
            "--chaos-salt",
            str(self.salt),
        ]
        if self.max_salt is not None:
            args += ["--chaos-max-salt", str(self.max_salt)]
        return args

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def decide(self, task_key: str, attempt: int = 1) -> Optional[str]:
        """The fault mode injected for this ``(task_key, attempt)``, if any.

        Pure: sha256 over ``(seed, salt, task_key, attempt)`` mapped to a
        uniform draw in ``[0, 1)``, compared against the stacked
        probability thresholds.  Returns ``"kill"``, ``"hang"``,
        ``"fail"``, or ``None``.
        """
        if self.max_salt is not None and self.salt >= self.max_salt:
            return None
        digest = hashlib.sha256(
            f"{self.seed}|{self.salt}|{task_key}|{attempt}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        if draw < self.p_kill:
            return "kill"
        if draw < self.p_kill + self.p_hang:
            return "hang"
        if draw < self.p_kill + self.p_hang + self.p_fail:
            return "fail"
        return None


def inject_fault(plan: Dict[str, Any], task_key: str, attempt: int) -> None:
    """Execute the plan's decision for one task, inside the worker.

    Called by :func:`repro.runtime.tasks.execute_task` from the payload's
    ``chaos`` dict.  A *kill* terminates the process immediately (no
    flush, no exception — the row is simply never written); a *hang*
    sleeps until the watchdog or the supervisor intervenes; a *fail*
    raises :class:`~repro.exceptions.FaultInjectionError`.
    """
    mode = FaultPlan.from_payload(plan).decide(task_key, attempt)
    if mode == "kill":
        os._exit(KILL_EXIT_CODE)
    elif mode == "hang":
        time.sleep(plan.get("hang_s", 3600.0))
    elif mode == "fail":
        # The message must not mention the attempt: retries of the same
        # injected failure need an identical error signature, or the
        # retry policy would treat every attempt as a brand-new error and
        # reset its budget (freezing the attempt counter — and with it
        # the fault draw — forever).
        raise FaultInjectionError(
            f"chaos: synthetic oracle failure injected for {task_key!r}"
        )
