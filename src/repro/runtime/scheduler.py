"""Campaign execution: serial reference, per-call pools, persistent pools.

All executors run the same pure :func:`repro.runtime.tasks.execute_task`
over the pending payloads of a campaign and append each row to the store
as it completes.  Because task results are pure functions of their payload
(see :mod:`repro.runtime.spec` for the seed derivation), every executor
produces byte-identical *content* to the serial one — only the JSONL row
order, the timing fields and the ``instance_cache_hit`` flags differ, and
the aggregation layer is insensitive to all three.  The serial path is
therefore the differential reference: ``make campaign-smoke`` and the
campaign fuzz harness assert that pool, sharded and resumed runs all
reproduce its aggregate digest.

Three execution shapes:

* ``workers=0`` (or 1) — the in-process serial reference executor;
* ``workers=N`` — a per-call :mod:`multiprocessing` pool with chunked
  dispatch (``imap_unordered``), paying pool startup on every call;
* ``pool=WorkerPool(N)`` — a *persistent* pool the caller keeps open
  across ``run_campaign`` calls (and bench repeats), so worker startup
  and the workers' per-process instance caches are amortized; the run's
  :class:`CampaignRunStats` records whether it started warm.

The parent process is the only writer of the JSONL file in every shape,
so no cross-process file locking is needed.  ``shard=(i, n)`` restricts a
run to one sha256-stable shard of the task grid (see
:func:`repro.runtime.spec.task_shard_index`) for multi-machine campaigns;
:func:`repro.runtime.store.merge_shards` fuses the shard stores back into
one, provably identical to a monolithic run.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import obs
from repro.exceptions import CampaignError
from repro.runtime.faults import FaultPlan, require_chaos
from repro.runtime.spec import CampaignSpec, check_shard, task_shard_index
from repro.runtime.store import RETRYABLE_STATUSES, open_store
from repro.runtime.tasks import execute_task

# ----------------------------------------------------------------------
# scheduler metrics (see docs/observability.md for the full catalog)
# ----------------------------------------------------------------------
# CampaignRunStats is a *projection* of these: run_campaign captures the
# relevant counter values at run start and reports the deltas, so the
# registry is the single source of truth and a live scraper (ROADMAP
# item 1) sees the same numbers the stats object reports.
_M_TASKS_STARTED = obs.counter(
    "repro_tasks_started_total",
    "Task executions dispatched by run_campaign (first passes and retries).",
    labels=("campaign",),
)
_M_TASKS_COMPLETED = obs.counter(
    "repro_tasks_completed_total",
    "Result rows recorded, by row status (done/failed/timeout).",
    labels=("campaign", "status"),
)
_M_TASKS_RETRIED = obs.counter(
    "repro_tasks_retried_total",
    "Extra executions performed by in-run retry rounds.",
    labels=("campaign",),
)
_M_TASKS_EXHAUSTED = obs.counter(
    "repro_tasks_exhausted_total",
    "Pending tasks skipped because their retry budget was already spent.",
    labels=("campaign",),
)
_M_TASK_DURATION = obs.histogram(
    "repro_task_duration_seconds",
    "Wall-clock duration of recorded task executions.",
    labels=("campaign",),
)
_M_QUEUE_DEPTH = obs.gauge(
    "repro_queue_depth",
    "Pending tasks of the running campaign not yet recorded (0 when idle).",
    labels=("campaign",),
)
_M_POOL_DISPATCH = obs.counter(
    "repro_pool_dispatch_total",
    "run_campaign dispatches by executor mode (serial/percall/pool-cold/pool-warm).",
    labels=("campaign", "mode"),
)
_M_INSTANCE_CACHE = obs.counter(
    "repro_instance_cache_total",
    "Instance-cache lookups across recorded rows, by outcome (hit/miss).",
    labels=("campaign", "outcome"),
)
_M_TASKS_PER_S = obs.gauge(
    "repro_campaign_tasks_per_second",
    "Executed-task throughput of the most recent run of each campaign.",
    labels=("campaign",),
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry budget for failed/timed-out rows.

    ``max_attempts`` caps how many times one task may be executed while
    failing with the *same* error signature — in-run retry rounds and
    later resumes share the budget through the per-row ``attempt``
    counter, so a deterministic failure is re-executed a bounded number
    of times total, ever, instead of on every resume.  A failure with a
    *different* error signature resets the counter (it is a new problem).
    ``base_delay_s`` and ``backoff`` shape the pause before each in-run
    retry round: round ``r`` sleeps ``base_delay_s * backoff**(r-1)``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 1
        ):
            raise CampaignError(
                f"RetryPolicy.max_attempts must be a positive int, got {self.max_attempts!r}"
            )
        if not isinstance(self.base_delay_s, (int, float)) or self.base_delay_s < 0:
            raise CampaignError(
                f"RetryPolicy.base_delay_s must be >= 0, got {self.base_delay_s!r}"
            )
        if not isinstance(self.backoff, (int, float)) or self.backoff < 1:
            raise CampaignError(
                f"RetryPolicy.backoff must be >= 1, got {self.backoff!r}"
            )

    def round_delay_s(self, round_number: int) -> float:
        """Exponential-backoff pause before in-run retry round ``round_number`` (1-based)."""
        return self.base_delay_s * self.backoff ** (round_number - 1)


#: The default policy of :func:`run_campaign`: three attempts per error
#: signature, no pause (campaign tasks are CPU-bound; pauses only matter
#: for the chaos/supervision paths, which pass their own policies).
DEFAULT_RETRY_POLICY = RetryPolicy()


def touch_heartbeat(path) -> None:
    """Touch ``path`` (creating parents), bumping its mtime to *now*.

    The shard coordinator reads the mtime to decide whether a worker is
    still making progress; the worker calls this once at run start and
    once per stored row.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8"):
        pass
    os.utime(path, None)


@dataclass
class CampaignRunStats:
    """What one ``run_campaign`` call did, for status lines and throughput records."""

    campaign: str
    total_tasks: int
    skipped: int
    executed: int
    failed: int
    workers: int
    wall_time_s: float
    #: ``(index, n_shards)`` when the run executed one shard of the grid.
    shard: Optional[Tuple[int, int]] = None
    #: True when the run was served by an already-started persistent pool
    #: (no worker spawn cost on this call).
    pool_warm: bool = False
    #: Instance-cache hits/misses across the rows executed by this run
    #: (counted from the rows, so pool workers are included).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Tasks whose *final* row this run is a terminal ``timeout`` (the
    #: watchdog fired on every attempt); a subset of ``failed``.
    timeouts: int = 0
    #: Extra executions performed by in-run retry rounds (beyond the
    #: first attempt each pending task gets).
    retried: int = 0
    #: Pending tasks skipped because their retry budget was already
    #: exhausted by earlier runs (same error ``max_attempts`` times).
    exhausted: int = 0

    @property
    def tasks_per_s(self) -> float:
        """Executed-task throughput of this run (0 when nothing ran)."""
        if self.executed == 0 or self.wall_time_s <= 0:
            return 0.0
        return self.executed / self.wall_time_s

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of executed instance builds served from cache (0 when none ran)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class WorkerPool:
    """A persistent worker pool reused across ``run_campaign`` calls.

    A context manager wrapping one :mod:`multiprocessing` pool whose
    processes survive between campaign runs, amortizing both the pool
    startup and the workers' per-process
    :data:`~repro.runtime.tasks.INSTANCE_CACHE` across calls (and across
    bench repeats).  The underlying pool is started *lazily* on the first
    dispatch, so handing a fresh ``WorkerPool`` to a fully-completed
    campaign spawns no processes at all.
    """

    def __init__(self, workers: int) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise CampaignError(f"WorkerPool needs workers >= 1, got {workers!r}")
        self.workers = workers
        #: How many run_campaign calls dispatched tasks through this pool.
        self.runs_served = 0
        self._pool = None
        self._closed = False

    @property
    def started(self) -> bool:
        """True once the underlying processes exist (first dispatch)."""
        return self._pool is not None

    @property
    def warm(self) -> bool:
        """True when a new run would reuse already-running workers."""
        return self._pool is not None and self.runs_served > 0

    def imap_unordered(self, fn, iterable: Iterable, chunksize: int = 1):
        """Dispatch ``fn`` over ``iterable``, starting the pool on first use."""
        if self._closed:
            raise CampaignError("WorkerPool is closed; create a new one")
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(processes=self.workers)
        self.runs_served += 1
        return self._pool.imap_unordered(fn, iterable, chunksize=chunksize)

    def close(self) -> None:
        """Shut the workers down (idempotent); the pool cannot be restarted."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _default_chunk_size(pending: int, workers: int) -> int:
    """Chunked dispatch: a few chunks per worker balances load vs. IPC overhead."""
    return max(1, pending // (workers * 4))


def _error_signature(row: dict) -> Tuple:
    """The identity of a failure: same signature ⇒ same error, for retry counting."""
    return (row.get("error_type"), row.get("error"))


def run_campaign(
    spec: CampaignSpec,
    directory,
    workers: int = 0,
    chunk_size: Optional[int] = None,
    on_row: Optional[Callable[[dict], None]] = None,
    shard: Optional[Tuple[int, int]] = None,
    pool: Optional[WorkerPool] = None,
    retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
    task_timeout_s: Optional[float] = None,
    heartbeat=None,
    chaos: Optional[FaultPlan] = None,
    durability: Optional[str] = None,
    backend: Optional[str] = None,
    trace: bool = False,
) -> CampaignRunStats:
    """Execute every pending task of ``spec``, appending results to ``directory``.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs in-process (the serial reference executor);
        ``N > 1`` dispatches chunks to a fresh pool of ``N`` worker
        processes torn down when the call returns.
    chunk_size:
        Tasks per pool dispatch (defaults to ~4 chunks per worker).
    on_row:
        Optional callback invoked with each result row as it is stored
        (progress reporting).
    shard:
        ``(index, n_shards)`` restricts the run to the tasks whose key
        hashes to that shard (:func:`~repro.runtime.spec.task_shard_index`);
        the store should then be shard-scoped and later fused with
        :func:`~repro.runtime.store.merge_shards`.
    pool:
        A persistent :class:`WorkerPool` to dispatch through instead of a
        per-call pool (``workers`` is then ignored for execution); keeps
        worker processes and their instance caches warm across calls.
    retry:
        The bounded :class:`RetryPolicy` for failed/timed-out rows
        (default: 3 attempts per error signature).  Rows that fail are
        re-executed in in-run retry rounds until they succeed or exhaust
        the budget; on resume, rows that already exhausted it are
        *skipped* (``stats.exhausted``) instead of re-executed forever.
        ``None`` disables both behaviors (every failure is re-executed on
        every resume — the pre-supervision semantics).
    task_timeout_s:
        Per-task watchdog deadline, overriding ``spec.task_timeout_s``;
        a task exceeding it yields a ``status="timeout"`` row.
    heartbeat:
        Optional path touched at run start and after every stored row —
        the liveness signal consumed by the shard coordinator.
    chaos:
        Optional :class:`~repro.runtime.faults.FaultPlan` injecting
        worker kills, hangs and synthetic failures.  Guarded by the
        ``REPRO_CHAOS`` environment flag and restricted to the serial
        executor (an injected kill takes the whole process down, which
        only the supervisor's restart path — not a ``multiprocessing``
        pool — can recover from).
    durability:
        Store write discipline override (``"flush"``/``"fsync"``),
        defaulting to ``spec.durability``.
    backend:
        Store backend override (``"jsonl"``/``"sqlite"``), defaulting to
        the directory's existing backend, else ``spec.store`` — see
        :func:`~repro.runtime.store.open_store`.  The backend never
        changes which rows exist, only how they are stored, so the
        campaign digest is backend-independent.
    trace:
        When True, install a :class:`~repro.obs.JsonlTracer` writing a
        ``trace.jsonl`` sidecar into the campaign directory for the
        duration of the run, so the task/phase spans of the serial
        executor (pool workers keep their own process-local no-op
        tracer) and the per-row events are recorded.  Purely
        observational: the result rows and the aggregate digest are
        byte-identical with tracing on and off.

    Every run also persists a :mod:`repro.obs` registry snapshot as
    ``metrics.json`` next to the store (rendered by ``repro campaign
    metrics``), and the returned stats are a projection of the same
    registry counters.

    Tasks whose key already has a ``"done"`` row are skipped — resuming an
    interrupted campaign finishes the remainder and converges to the same
    aggregate — and when nothing is pending the call returns before any
    worker process is spawned.  Returns the run's :class:`CampaignRunStats`.
    """
    if workers < 0:
        raise CampaignError(f"workers must be >= 0, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise CampaignError(f"chunk_size must be >= 1, got {chunk_size}")
    if shard is not None:
        try:
            index, n_shards = shard
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"shard must be an (index, n_shards) pair, got {shard!r}"
            ) from exc
        check_shard(index, n_shards)
    if retry is not None and not isinstance(retry, RetryPolicy):
        raise CampaignError(f"retry must be a RetryPolicy or None, got {retry!r}")
    if chaos is not None:
        require_chaos()
        if pool is not None or workers > 1:
            raise CampaignError(
                "chaos injection requires the serial executor (an injected worker "
                "kill strands a multiprocessing pool); use workers<=1 and no pool"
            )
    effective_timeout = task_timeout_s if task_timeout_s is not None else spec.task_timeout_s
    store = open_store(
        directory,
        durability=durability if durability is not None else spec.durability,
        backend=backend,
        default_backend=spec.store,
    )
    store.initialize(spec)
    payloads = spec.task_payloads()
    total = len(payloads)
    if shard is not None:
        payloads = [
            p for p in payloads if task_shard_index(p["task_key"], n_shards) == index
        ]
    # A task is complete only if its latest row is "done" *and* was built
    # from the instance seed this spec derives today — so a store written
    # under an older seed-derivation scheme is transparently re-executed
    # (the fresh rows supersede the stale ones, last write wins) instead
    # of silently mixing two schemes in one aggregate.
    latest = store.latest_rows()

    def is_complete(payload: dict) -> bool:
        row = latest.get(payload["task_key"])
        return (
            row is not None
            and row["status"] == "done"
            and row.get("instance_seed") == payload["instance_seed"]
        )

    def decorate(payload: dict, attempt: int) -> dict:
        extra = {"attempt": attempt}
        if effective_timeout is not None:
            extra["task_timeout_s"] = effective_timeout
        if chaos is not None:
            extra["chaos"] = chaos.to_payload()
        return dict(payload, **extra)

    # Pending selection with the shared retry budget: a prior retryable
    # row (same instance seed) continues its attempt count; one that
    # already used the whole budget on a single error signature is
    # skipped — re-running it would deterministically fail again.
    pending = []
    start_attempts: Dict[str, int] = {}
    last_signature: Dict[str, Tuple] = {}
    exhausted = 0
    for payload in payloads:
        if is_complete(payload):
            continue
        key = payload["task_key"]
        attempt = 1
        prior = latest.get(key)
        if (
            prior is not None
            and prior["status"] in RETRYABLE_STATUSES
            and prior.get("instance_seed") == payload["instance_seed"]
        ):
            prior_attempt = prior.get("attempt", 1)
            if retry is not None and prior_attempt >= retry.max_attempts:
                exhausted += 1
                continue
            attempt = prior_attempt + 1
            last_signature[key] = _error_signature(prior)
        pending.append(payload)
        start_attempts[key] = attempt

    effective_workers = pool.workers if pool is not None else max(1, workers)
    pool_warm = pool is not None and pool.started

    # Registry-delta projection: resolve this campaign's metric children
    # once and capture their values, so the returned stats report exactly
    # what *this* run contributed while the registry keeps the live,
    # scrape-able totals (pool workers count in the parent, from rows).
    campaign = spec.name
    started_counter = _M_TASKS_STARTED.labels(campaign)
    retried_counter = _M_TASKS_RETRIED.labels(campaign)
    hit_counter = _M_INSTANCE_CACHE.labels(campaign, "hit")
    miss_counter = _M_INSTANCE_CACHE.labels(campaign, "miss")
    duration_histogram = _M_TASK_DURATION.labels(campaign)
    queue_gauge = _M_QUEUE_DEPTH.labels(campaign)
    base_retried = retried_counter.value
    base_hits = hit_counter.value
    base_misses = miss_counter.value
    if exhausted:
        _M_TASKS_EXHAUSTED.labels(campaign).inc(exhausted)

    final_rows: Dict[str, dict] = {}
    executions: Dict[str, int] = {}

    if heartbeat is not None and pending:
        touch_heartbeat(heartbeat)

    def record(row: dict) -> None:
        key = row["task_key"]
        if row["status"] in RETRYABLE_STATUSES:
            signature = _error_signature(row)
            # A different error than last time is a new problem: restart
            # its attempt budget instead of inheriting the old count.
            if key in last_signature and last_signature[key] != signature:
                row["attempt"] = 1
            last_signature[key] = signature
        store.append(row)
        if key not in final_rows:
            queue_gauge.dec()
        final_rows[key] = row
        executions[key] = executions.get(key, 0) + 1
        _M_TASKS_COMPLETED.labels(campaign, row["status"]).inc()
        if "wall_time_s" in row:
            duration_histogram.observe(row["wall_time_s"])
        if "instance_cache_hit" in row:
            (hit_counter if row["instance_cache_hit"] else miss_counter).inc()
        obs.event(
            "row",
            task_key=key,
            status=row["status"],
            attempt=row.get("attempt", 1),
            wall_time_s=row.get("wall_time_s"),
        )
        if heartbeat is not None:
            touch_heartbeat(heartbeat)
        if on_row is not None:
            on_row(row)

    start = time.perf_counter()
    with contextlib.ExitStack() as scope:
        if trace:
            scope.enter_context(
                obs.tracing(Path(directory) / obs.TRACE_FILENAME)
            )
        run_span = scope.enter_context(
            obs.span(
                "campaign_run",
                campaign=campaign,
                pending=len(pending),
                workers=effective_workers,
            )
        )
        queue_gauge.set(len(pending))
        # Short-circuit before any pool is spawned (or a persistent pool
        # is started) when a resume finds nothing left to do.
        if pending:
            if pool is not None:
                mode = "pool-warm" if pool_warm else "pool-cold"
            elif workers > 1:
                mode = "percall"
            else:
                mode = "serial"
            _M_POOL_DISPATCH.labels(campaign, mode).inc()
            first_pass = [decorate(p, start_attempts[p["task_key"]]) for p in pending]
            started_counter.inc(len(first_pass))
            if pool is not None:
                chunk = chunk_size if chunk_size is not None else _default_chunk_size(
                    len(pending), pool.workers
                )
                for row in pool.imap_unordered(
                    execute_task, first_pass, chunksize=chunk
                ):
                    record(row)
            elif workers > 1:
                import multiprocessing

                chunk = chunk_size if chunk_size is not None else _default_chunk_size(
                    len(pending), workers
                )
                with multiprocessing.Pool(processes=workers) as mp_pool:
                    for row in mp_pool.imap_unordered(
                        execute_task, first_pass, chunksize=chunk
                    ):
                        record(row)
            else:
                for payload in first_pass:
                    record(execute_task(payload))

            # In-run retry rounds (in the parent, serially: failures are the
            # exception, not the workload).  Each round re-executes the rows
            # still failing with budget left, after the policy's
            # exponential-backoff pause.  ``executions`` bounds the total
            # work per task this call even when error signatures alternate
            # and keep resetting the persistent attempt counter.
            by_key = {p["task_key"]: p for p in pending}
            round_number = 0
            while retry is not None:
                round_number += 1
                candidates = [
                    key
                    for key in by_key
                    if key in final_rows
                    and final_rows[key]["status"] in RETRYABLE_STATUSES
                    and final_rows[key].get("attempt", 1) < retry.max_attempts
                    and executions[key] < retry.max_attempts
                ]
                if not candidates:
                    break
                delay = retry.round_delay_s(round_number)
                if delay > 0:
                    time.sleep(delay)
                for key in candidates:
                    attempt = final_rows[key].get("attempt", 1) + 1
                    started_counter.inc()
                    record(execute_task(decorate(by_key[key], attempt)))
                    retried_counter.inc()
        queue_gauge.set(0)

        failed = sum(row["status"] != "done" for row in final_rows.values())
        timeouts = sum(row["status"] == "timeout" for row in final_rows.values())
        stats = CampaignRunStats(
            campaign=campaign,
            total_tasks=total,
            skipped=len(payloads) - len(pending) - exhausted,
            executed=len(pending),
            failed=failed,
            workers=effective_workers,
            wall_time_s=time.perf_counter() - start,
            shard=shard,
            pool_warm=pool_warm,
            cache_hits=int(hit_counter.value - base_hits),
            cache_misses=int(miss_counter.value - base_misses),
            timeouts=timeouts,
            retried=int(retried_counter.value - base_retried),
            exhausted=exhausted,
        )
        _M_TASKS_PER_S.labels(campaign).set(stats.tasks_per_s)
        run_span.set(executed=stats.executed, failed=stats.failed)
    # Persist the registry next to the store so `repro campaign metrics`
    # works on finished runs; best-effort (a read-only directory still
    # gets its results served).
    with contextlib.suppress(OSError):
        obs.get_registry().write_snapshot(Path(directory) / obs.METRICS_FILENAME)
    return stats
