"""Campaign execution: serial reference, per-call pools, persistent pools.

All executors run the same pure :func:`repro.runtime.tasks.execute_task`
over the pending payloads of a campaign and append each row to the store
as it completes.  Because task results are pure functions of their payload
(see :mod:`repro.runtime.spec` for the seed derivation), every executor
produces byte-identical *content* to the serial one — only the JSONL row
order, the timing fields and the ``instance_cache_hit`` flags differ, and
the aggregation layer is insensitive to all three.  The serial path is
therefore the differential reference: ``make campaign-smoke`` and the
campaign fuzz harness assert that pool, sharded and resumed runs all
reproduce its aggregate digest.

Three execution shapes:

* ``workers=0`` (or 1) — the in-process serial reference executor;
* ``workers=N`` — a per-call :mod:`multiprocessing` pool with chunked
  dispatch (``imap_unordered``), paying pool startup on every call;
* ``pool=WorkerPool(N)`` — a *persistent* pool the caller keeps open
  across ``run_campaign`` calls (and bench repeats), so worker startup
  and the workers' per-process instance caches are amortized; the run's
  :class:`CampaignRunStats` records whether it started warm.

The parent process is the only writer of the JSONL file in every shape,
so no cross-process file locking is needed.  ``shard=(i, n)`` restricts a
run to one sha256-stable shard of the task grid (see
:func:`repro.runtime.spec.task_shard_index`) for multi-machine campaigns;
:func:`repro.runtime.store.merge_shards` fuses the shard stores back into
one, provably identical to a monolithic run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from repro.exceptions import CampaignError
from repro.runtime.spec import CampaignSpec, check_shard, task_shard_index
from repro.runtime.store import CampaignStore
from repro.runtime.tasks import execute_task


@dataclass
class CampaignRunStats:
    """What one ``run_campaign`` call did, for status lines and throughput records."""

    campaign: str
    total_tasks: int
    skipped: int
    executed: int
    failed: int
    workers: int
    wall_time_s: float
    #: ``(index, n_shards)`` when the run executed one shard of the grid.
    shard: Optional[Tuple[int, int]] = None
    #: True when the run was served by an already-started persistent pool
    #: (no worker spawn cost on this call).
    pool_warm: bool = False
    #: Instance-cache hits/misses across the rows executed by this run
    #: (counted from the rows, so pool workers are included).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def tasks_per_s(self) -> float:
        """Executed-task throughput of this run (0 when nothing ran)."""
        if self.executed == 0 or self.wall_time_s <= 0:
            return 0.0
        return self.executed / self.wall_time_s

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of executed instance builds served from cache (0 when none ran)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class WorkerPool:
    """A persistent worker pool reused across ``run_campaign`` calls.

    A context manager wrapping one :mod:`multiprocessing` pool whose
    processes survive between campaign runs, amortizing both the pool
    startup and the workers' per-process
    :data:`~repro.runtime.tasks.INSTANCE_CACHE` across calls (and across
    bench repeats).  The underlying pool is started *lazily* on the first
    dispatch, so handing a fresh ``WorkerPool`` to a fully-completed
    campaign spawns no processes at all.
    """

    def __init__(self, workers: int) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise CampaignError(f"WorkerPool needs workers >= 1, got {workers!r}")
        self.workers = workers
        #: How many run_campaign calls dispatched tasks through this pool.
        self.runs_served = 0
        self._pool = None
        self._closed = False

    @property
    def started(self) -> bool:
        """True once the underlying processes exist (first dispatch)."""
        return self._pool is not None

    @property
    def warm(self) -> bool:
        """True when a new run would reuse already-running workers."""
        return self._pool is not None and self.runs_served > 0

    def imap_unordered(self, fn, iterable: Iterable, chunksize: int = 1):
        """Dispatch ``fn`` over ``iterable``, starting the pool on first use."""
        if self._closed:
            raise CampaignError("WorkerPool is closed; create a new one")
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(processes=self.workers)
        self.runs_served += 1
        return self._pool.imap_unordered(fn, iterable, chunksize=chunksize)

    def close(self) -> None:
        """Shut the workers down (idempotent); the pool cannot be restarted."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _default_chunk_size(pending: int, workers: int) -> int:
    """Chunked dispatch: a few chunks per worker balances load vs. IPC overhead."""
    return max(1, pending // (workers * 4))


def run_campaign(
    spec: CampaignSpec,
    directory,
    workers: int = 0,
    chunk_size: Optional[int] = None,
    on_row: Optional[Callable[[dict], None]] = None,
    shard: Optional[Tuple[int, int]] = None,
    pool: Optional[WorkerPool] = None,
) -> CampaignRunStats:
    """Execute every pending task of ``spec``, appending results to ``directory``.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs in-process (the serial reference executor);
        ``N > 1`` dispatches chunks to a fresh pool of ``N`` worker
        processes torn down when the call returns.
    chunk_size:
        Tasks per pool dispatch (defaults to ~4 chunks per worker).
    on_row:
        Optional callback invoked with each result row as it is stored
        (progress reporting).
    shard:
        ``(index, n_shards)`` restricts the run to the tasks whose key
        hashes to that shard (:func:`~repro.runtime.spec.task_shard_index`);
        the store should then be shard-scoped and later fused with
        :func:`~repro.runtime.store.merge_shards`.
    pool:
        A persistent :class:`WorkerPool` to dispatch through instead of a
        per-call pool (``workers`` is then ignored for execution); keeps
        worker processes and their instance caches warm across calls.

    Tasks whose key already has a ``"done"`` row are skipped — resuming an
    interrupted campaign finishes the remainder and converges to the same
    aggregate — and when nothing is pending the call returns before any
    worker process is spawned.  Returns the run's :class:`CampaignRunStats`.
    """
    if workers < 0:
        raise CampaignError(f"workers must be >= 0, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise CampaignError(f"chunk_size must be >= 1, got {chunk_size}")
    if shard is not None:
        try:
            index, n_shards = shard
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"shard must be an (index, n_shards) pair, got {shard!r}"
            ) from exc
        check_shard(index, n_shards)
    store = CampaignStore(directory)
    store.initialize(spec)
    payloads = spec.task_payloads()
    total = len(payloads)
    if shard is not None:
        payloads = [
            p for p in payloads if task_shard_index(p["task_key"], n_shards) == index
        ]
    # A task is complete only if its latest row is "done" *and* was built
    # from the instance seed this spec derives today — so a store written
    # under an older seed-derivation scheme is transparently re-executed
    # (the fresh rows supersede the stale ones, last write wins) instead
    # of silently mixing two schemes in one aggregate.
    latest = store.latest_rows()

    def is_complete(payload: dict) -> bool:
        row = latest.get(payload["task_key"])
        return (
            row is not None
            and row["status"] == "done"
            and row.get("instance_seed") == payload["instance_seed"]
        )

    pending = [p for p in payloads if not is_complete(p)]

    effective_workers = pool.workers if pool is not None else max(1, workers)
    pool_warm = pool is not None and pool.started
    failed = cache_hits = cache_misses = 0

    def record(row: dict) -> None:
        nonlocal failed, cache_hits, cache_misses
        store.append(row)
        failed += row["status"] != "done"
        if "instance_cache_hit" in row:
            if row["instance_cache_hit"]:
                cache_hits += 1
            else:
                cache_misses += 1
        if on_row is not None:
            on_row(row)

    start = time.perf_counter()
    # Short-circuit before any pool is spawned (or a persistent pool is
    # started) when a resume finds nothing left to do.
    if pending:
        if pool is not None:
            chunk = chunk_size if chunk_size is not None else _default_chunk_size(
                len(pending), pool.workers
            )
            for row in pool.imap_unordered(execute_task, pending, chunksize=chunk):
                record(row)
        elif workers > 1:
            import multiprocessing

            chunk = chunk_size if chunk_size is not None else _default_chunk_size(
                len(pending), workers
            )
            with multiprocessing.Pool(processes=workers) as mp_pool:
                for row in mp_pool.imap_unordered(
                    execute_task, pending, chunksize=chunk
                ):
                    record(row)
        else:
            for payload in pending:
                record(execute_task(payload))

    return CampaignRunStats(
        campaign=spec.name,
        total_tasks=total,
        skipped=len(payloads) - len(pending),
        executed=len(pending),
        failed=failed,
        workers=effective_workers,
        wall_time_s=time.perf_counter() - start,
        shard=shard,
        pool_warm=pool_warm,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
