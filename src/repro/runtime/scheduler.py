"""Campaign execution: a serial reference executor and a process pool.

Both executors run the same pure :func:`repro.runtime.tasks.execute_task`
over the pending payloads of a campaign and append each row to the store
as it completes.  Because task results are pure functions of their payload
(see :mod:`repro.runtime.spec` for the seed derivation), the parallel
executor produces byte-identical *content* to the serial one — only the
JSONL row order and the timing fields differ, and the aggregation layer
is insensitive to both.  The serial path is therefore the differential
reference: ``make campaign-smoke`` asserts that a pool run's aggregate
digest equals the serial one.

Worker processes are plain :mod:`multiprocessing` pool workers with
chunked task dispatch (``imap_unordered``); the parent is the only writer
of the JSONL file, so no cross-process file locking is needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import CampaignError
from repro.runtime.spec import CampaignSpec
from repro.runtime.store import CampaignStore
from repro.runtime.tasks import execute_task


@dataclass
class CampaignRunStats:
    """What one ``run_campaign`` call did, for status lines and throughput records."""

    campaign: str
    total_tasks: int
    skipped: int
    executed: int
    failed: int
    workers: int
    wall_time_s: float

    @property
    def tasks_per_s(self) -> float:
        """Executed-task throughput of this run (0 when nothing ran)."""
        if self.executed == 0 or self.wall_time_s <= 0:
            return 0.0
        return self.executed / self.wall_time_s


def _default_chunk_size(pending: int, workers: int) -> int:
    """Chunked dispatch: a few chunks per worker balances load vs. IPC overhead."""
    return max(1, pending // (workers * 4))


def run_campaign(
    spec: CampaignSpec,
    directory,
    workers: int = 0,
    chunk_size: Optional[int] = None,
    on_row: Optional[Callable[[dict], None]] = None,
) -> CampaignRunStats:
    """Execute every pending task of ``spec``, appending results to ``directory``.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs in-process (the serial reference executor);
        ``N > 1`` dispatches chunks to a pool of ``N`` worker processes.
    chunk_size:
        Tasks per pool dispatch (defaults to ~4 chunks per worker).
    on_row:
        Optional callback invoked with each result row as it is stored
        (progress reporting).

    Tasks whose key already has a ``"done"`` row are skipped — resuming an
    interrupted campaign finishes the remainder and converges to the same
    aggregate.  Returns the run's :class:`CampaignRunStats`.
    """
    if workers < 0:
        raise CampaignError(f"workers must be >= 0, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise CampaignError(f"chunk_size must be >= 1, got {chunk_size}")
    store = CampaignStore(directory)
    store.initialize(spec)
    payloads = spec.task_payloads()
    done = store.completed_keys()
    pending = [p for p in payloads if p["task_key"] not in done]

    failed = 0
    start = time.perf_counter()
    if workers > 1 and pending:
        import multiprocessing

        chunk = chunk_size if chunk_size is not None else _default_chunk_size(
            len(pending), workers
        )
        with multiprocessing.Pool(processes=workers) as pool:
            for row in pool.imap_unordered(execute_task, pending, chunksize=chunk):
                store.append(row)
                failed += row["status"] != "done"
                if on_row is not None:
                    on_row(row)
    else:
        for payload in pending:
            row = execute_task(payload)
            store.append(row)
            failed += row["status"] != "done"
            if on_row is not None:
                on_row(row)

    return CampaignRunStats(
        campaign=spec.name,
        total_tasks=len(payloads),
        skipped=len(payloads) - len(pending),
        executed=len(pending),
        failed=failed,
        workers=max(1, workers),
        wall_time_s=time.perf_counter() - start,
    )
