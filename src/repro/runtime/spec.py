"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a *grid* of reduction experiments —
hypergraph family × instance size × palette size × oracle × λ ×
replicate — plus one campaign seed.  The spec round-trips through JSON
(the artifact store keeps a copy next to the results) and expands into a
deterministic, ordered list of tasks.

Determinism is the core contract: every task is identified by a stable
``task_key`` string derived only from its grid coordinates, and the RNG
seed used to generate its instance is a pure function of
``(campaign seed, instance key)`` (:func:`task_instance_seed` over
:attr:`TaskSpec.instance_key` — the grid coordinates that actually shape
the instance, i.e. excluding oracle and λ, so every oracle of a campaign
is evaluated on identical instances).  Results are therefore
byte-identical regardless of how many workers execute the campaign or in
which order tasks complete — the property the scheduler's serial executor
differentially checks.

Sharding follows the same discipline: :func:`task_shard_index` assigns
each task key to one of ``n`` shards via sha256 (never Python's
randomized ``hash()``), so a multi-machine campaign can run
``CampaignSpec.shard(i, n)`` per machine and the merged shard stores are
provably the same row set as a monolithic run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import CampaignError
from repro.runtime.tasks import FAMILIES, instance_key, validate_oracle_name

#: Spec fields required in the JSON exchange format.
_REQUIRED_FIELDS = ("name", "seed", "families", "sizes", "ks", "oracles", "lams")

#: Optional spec fields (serialized only when they differ from their
#: defaults, so the content digests of pre-existing specs never change).
_OPTIONAL_FIELDS = ("replicates", "epsilon", "task_timeout_s", "durability", "store")

#: Store durability levels: ``"flush"`` loses at most one row on a
#: process kill; ``"fsync"`` also survives a machine crash (power loss)
#: at the cost of one fsync per row.
DURABILITY_LEVELS = ("flush", "fsync")

#: Result-store backends: ``"jsonl"`` is the append-only line store,
#: ``"sqlite"`` the indexed backend for campaigns whose status/report
#: queries must stay cheap at millions of rows.  The backend is a storage
#: detail — it shapes neither the task grid nor the aggregates — so it is
#: deliberately excluded from :meth:`CampaignSpec.digest`: the same
#: campaign run through either backend keeps one identity, which is what
#: lets the differential harness compare backends digest-for-digest and
#: lets :func:`repro.runtime.store.merge_shards` fuse mixed-backend shards.
STORE_BACKENDS = ("jsonl", "sqlite")


def task_instance_seed(campaign_seed: int, key: str) -> int:
    """Derive the instance-generator seed for one instance key, stably.

    The seed is the first eight bytes of ``sha256("<campaign_seed>|<key>")``
    — a pure function of the campaign seed and the task's instance-shaping
    grid coordinates (:attr:`TaskSpec.instance_key`), so a task generates
    the same instance no matter which worker runs it, when, or after how
    many resumes — and tasks differing only in oracle or λ generate the
    *same* instance, which is what makes campaign-level instance caching
    (and apples-to-apples oracle comparisons) possible.
    """
    digest = hashlib.sha256(f"{campaign_seed}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def check_shard(index: int, n_shards: int) -> None:
    """Raise :class:`CampaignError` unless ``index``/``n_shards`` is a valid shard slot."""
    if not isinstance(n_shards, int) or isinstance(n_shards, bool) or n_shards < 1:
        raise CampaignError(f"shard count must be a positive int, got {n_shards!r}")
    if not isinstance(index, int) or isinstance(index, bool) or not 0 <= index < n_shards:
        raise CampaignError(
            f"shard index must lie in [0, {n_shards}), got {index!r}"
        )


def task_shard_index(task_key: str, n_shards: int) -> int:
    """Assign ``task_key`` to one of ``n_shards`` shards, stably.

    The assignment hashes the key with sha256 — *not* Python's per-process
    randomized ``hash()`` — so every machine of a multi-machine campaign
    computes the same partition, and the shard stores merge back into
    exactly the monolithic row set.
    """
    check_shard(0, n_shards)
    digest = hashlib.sha256(task_key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


@dataclass(frozen=True)
class TaskSpec:
    """One grid point of a campaign: everything needed to run one reduction."""

    family: str
    n: int
    m: int
    k: int
    oracle: str
    lam: float
    replicate: int

    @property
    def task_key(self) -> str:
        """Stable identifier of this grid point (resume and shard-assignment key)."""
        return (
            f"family={self.family} n={self.n} m={self.m} k={self.k} "
            f"oracle={self.oracle} lam={self.lam:g} rep={self.replicate}"
        )

    def instance_key(self, epsilon: float) -> str:
        """Stable identifier of this task's *instance* (RNG derivation key).

        Excludes the oracle and λ (and generator-ignored coordinates), so
        grid points differing only in those axes share one instance —
        see :func:`repro.runtime.tasks.instance_key`.
        """
        return instance_key(
            family=self.family,
            n=self.n,
            m=self.m,
            k=self.k,
            epsilon=epsilon,
            replicate=self.replicate,
        )

    def payload(self, campaign_seed: int, epsilon: float) -> Dict[str, Any]:
        """Return the plain-dict form handed to the (possibly remote) executor."""
        return {
            "task_key": self.task_key,
            "family": self.family,
            "n": self.n,
            "m": self.m,
            "k": self.k,
            "oracle": self.oracle,
            "lam": self.lam,
            "replicate": self.replicate,
            "epsilon": epsilon,
            "instance_seed": task_instance_seed(
                campaign_seed, self.instance_key(epsilon)
            ),
        }


def _check_axis(name: str, values, element_check) -> Tuple:
    """Validate one grid axis: non-empty, duplicate-free, element-wise valid."""
    values = tuple(values)
    if not values:
        raise CampaignError(f"campaign axis {name!r} must not be empty")
    seen = set()
    for value in values:
        element_check(value)
        marker = repr(value)
        if marker in seen:
            raise CampaignError(f"campaign axis {name!r} repeats the entry {value!r}")
        seen.add(marker)
    return values


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of reduction tasks plus the campaign seed.

    Attributes
    ----------
    name:
        Campaign identifier (recorded in aggregates and the stored spec).
    seed:
        Campaign seed; per-task instance seeds are derived from it and the
        task's *instance key* via :func:`task_instance_seed` (so tasks
        differing only in oracle/λ share an instance).
    families:
        Hypergraph families to sweep (see :data:`repro.runtime.tasks.FAMILIES`).
    sizes:
        ``(n, m)`` pairs — vertices and hyperedges per instance.
    ks:
        Palette sizes.
    oracles:
        MaxIS oracle names: any registry name
        (:func:`repro.maxis.available_approximators`), or ``capped:<name>``
        for the λ-capped variant of a registry oracle (the worst-case
        multi-phase regime; the cap uses the task's λ).
    lams:
        Approximation factors λ assumed by the analysis.
    replicates:
        Number of i.i.d. instances per grid point (distinct task keys,
        hence distinct derived instance seeds).
    epsilon:
        Almost-uniformity slack forwarded to the generators that take one.
    task_timeout_s:
        Optional per-task watchdog deadline in seconds: a task exceeding
        it becomes a terminal ``status="timeout"`` row instead of hanging
        its worker (see :func:`repro.runtime.tasks.execute_task`).
        ``None`` (the default) disables the watchdog.
    durability:
        Store write discipline — ``"flush"`` (default: a kill loses at
        most one row) or ``"fsync"`` (a machine crash loses at most one
        row, at one fsync per row).
    store:
        Result-store backend — ``"jsonl"`` (default: append-only lines)
        or ``"sqlite"`` (indexed queries for very large campaigns).  Not
        part of the spec digest: the backend changes how rows are stored,
        never which rows exist or what they aggregate to.
    """

    name: str
    seed: int
    families: Tuple[str, ...]
    sizes: Tuple[Tuple[int, int], ...]
    ks: Tuple[int, ...]
    oracles: Tuple[str, ...]
    lams: Tuple[float, ...]
    replicates: int = 1
    epsilon: float = 0.5
    task_timeout_s: Optional[float] = None
    durability: str = "flush"
    store: str = "jsonl"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise CampaignError(f"campaign name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise CampaignError(f"campaign seed must be an int, got {self.seed!r}")

        def check_family(family) -> None:
            if family not in FAMILIES:
                raise CampaignError(
                    f"unknown hypergraph family {family!r}; known: {sorted(FAMILIES)}"
                )

        def check_size(size) -> None:
            if (
                not isinstance(size, tuple)
                or len(size) != 2
                or not all(isinstance(x, int) and not isinstance(x, bool) for x in size)
            ):
                raise CampaignError(f"sizes entries must be (n, m) int pairs, got {size!r}")
            n, m = size
            if n <= 0 or m < 0:
                raise CampaignError(f"size (n={n}, m={m}) must have n > 0 and m >= 0")

        def check_k(k) -> None:
            if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
                raise CampaignError(f"palette size k must be a positive int, got {k!r}")

        def check_lam(lam) -> None:
            if not isinstance(lam, (int, float)) or isinstance(lam, bool) or lam < 1:
                raise CampaignError(f"approximation factor lam must be >= 1, got {lam!r}")

        try:
            sizes = tuple(tuple(s) for s in self.sizes)
        except TypeError as exc:
            raise CampaignError(f"sizes entries must be (n, m) pairs: {exc}") from exc
        object.__setattr__(self, "families", _check_axis("families", self.families, check_family))
        object.__setattr__(self, "sizes", _check_axis("sizes", sizes, check_size))
        object.__setattr__(self, "ks", _check_axis("ks", self.ks, check_k))
        object.__setattr__(
            self, "oracles", _check_axis("oracles", self.oracles, validate_oracle_name)
        )
        # Normalize to float *before* the duplicate check: 2 and 2.0 format
        # to the same task key, so they must count as the same axis entry.
        normalized = tuple(
            float(lam)
            if isinstance(lam, (int, float)) and not isinstance(lam, bool)
            else lam
            for lam in self.lams
        )
        object.__setattr__(self, "lams", _check_axis("lams", normalized, check_lam))
        if not isinstance(self.replicates, int) or isinstance(self.replicates, bool) or self.replicates < 1:
            raise CampaignError(f"replicates must be a positive int, got {self.replicates!r}")
        if not 0 < self.epsilon <= 1:
            raise CampaignError(f"epsilon must lie in (0, 1], got {self.epsilon!r}")
        if self.task_timeout_s is not None:
            if (
                not isinstance(self.task_timeout_s, (int, float))
                or isinstance(self.task_timeout_s, bool)
                or self.task_timeout_s <= 0
            ):
                raise CampaignError(
                    f"task_timeout_s must be a positive number or None, "
                    f"got {self.task_timeout_s!r}"
                )
        if self.durability not in DURABILITY_LEVELS:
            raise CampaignError(
                f"durability must be one of {DURABILITY_LEVELS}, got {self.durability!r}"
            )
        if self.store not in STORE_BACKENDS:
            raise CampaignError(
                f"store backend must be one of {STORE_BACKENDS}, got {self.store!r}"
            )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def num_tasks(self) -> int:
        """Size of the grid: the product of all axis lengths and ``replicates``."""
        return (
            len(self.families)
            * len(self.sizes)
            * len(self.ks)
            * len(self.oracles)
            * len(self.lams)
            * self.replicates
        )

    def expand(self) -> List[TaskSpec]:
        """Expand the grid into its deterministic, ordered task list.

        The order is the nested-loop order of the axes as declared
        (families, sizes, ks, oracles, lams, replicate) — stable across
        processes and Python versions, so task keys never shift.
        """
        tasks: List[TaskSpec] = []
        for family in self.families:
            for n, m in self.sizes:
                for k in self.ks:
                    for oracle in self.oracles:
                        for lam in self.lams:
                            for replicate in range(self.replicates):
                                tasks.append(
                                    TaskSpec(
                                        family=family,
                                        n=n,
                                        m=m,
                                        k=k,
                                        oracle=oracle,
                                        lam=lam,
                                        replicate=replicate,
                                    )
                                )
        return tasks

    def task_payloads(self) -> List[Dict[str, Any]]:
        """Expand into executor payload dicts (with derived instance seeds)."""
        return [task.payload(self.seed, self.epsilon) for task in self.expand()]

    def shard(self, index: int, n_shards: int) -> List[TaskSpec]:
        """The tasks of shard ``index`` of ``n_shards``, in expansion order.

        The partition is by :func:`task_shard_index` over the task key:
        deterministic, process-independent (sha256, no ``hash()``
        randomization), pairwise disjoint, and covering — the union over
        all ``n_shards`` shards is exactly :meth:`expand`.  ``n_shards=1``
        returns the full task list.
        """
        check_shard(index, n_shards)
        return [
            task
            for task in self.expand()
            if task_shard_index(task.task_key, n_shards) == index
        ]

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize to the JSON exchange format.

        The fault-tolerance fields (``task_timeout_s``, ``durability``)
        are emitted only when set to non-default values, so specs written
        before they existed keep their content digest — and therefore
        their store binding — unchanged.
        """
        data = {
            "name": self.name,
            "seed": self.seed,
            "families": list(self.families),
            "sizes": [list(size) for size in self.sizes],
            "ks": list(self.ks),
            "oracles": list(self.oracles),
            "lams": list(self.lams),
            "replicates": self.replicates,
            "epsilon": self.epsilon,
        }
        if self.task_timeout_s is not None:
            data["task_timeout_s"] = self.task_timeout_s
        if self.durability != "flush":
            data["durability"] = self.durability
        if self.store != "jsonl":
            data["store"] = self.store
        return data

    def to_json(self) -> str:
        """Serialize to a JSON string (canonical: sorted keys)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def digest(self) -> str:
        """Content digest of the spec — the store's campaign-identity check.

        The ``store`` backend is excluded: it is a storage detail, not
        campaign identity, so the same grid run through JSONL and SQLite
        stores digests identically (the cross-backend differential
        harness and mixed-backend shard merges rely on this).
        """
        data = self.to_dict()
        data.pop("store", None)
        payload = json.dumps(data, indent=2, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; raises :class:`CampaignError` on malformed input."""
        if not isinstance(data, dict):
            raise CampaignError(f"campaign spec must be a JSON object, got {type(data).__name__}")
        missing = [key for key in _REQUIRED_FIELDS if key not in data]
        if missing:
            raise CampaignError(f"campaign spec is missing the fields {missing!r}")
        unknown = set(data) - set(_REQUIRED_FIELDS) - set(_OPTIONAL_FIELDS)
        if unknown:
            raise CampaignError(f"campaign spec has unknown fields {sorted(unknown)!r}")
        for axis in ("families", "sizes", "ks", "oracles", "lams"):
            if not isinstance(data[axis], (list, tuple)):
                raise CampaignError(f"campaign axis {axis!r} must be a list")
        sizes = []
        for size in data["sizes"]:
            if not isinstance(size, (list, tuple)) or len(size) != 2:
                raise CampaignError(f"sizes entries must be [n, m] pairs, got {size!r}")
            sizes.append(tuple(size))
        return cls(
            name=data["name"],
            seed=data["seed"],
            families=tuple(data["families"]),
            sizes=tuple(sizes),
            ks=tuple(data["ks"]),
            oracles=tuple(data["oracles"]),
            lams=tuple(data["lams"]),
            replicates=data.get("replicates", 1),
            epsilon=data.get("epsilon", 0.5),
            task_timeout_s=data.get("task_timeout_s"),
            durability=data.get("durability", "flush"),
            store=data.get("store", "jsonl"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CampaignError(f"campaign spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
