"""JSONL artifact store for campaign results.

A campaign directory holds two files:

* ``spec.json`` — the :class:`~repro.runtime.spec.CampaignSpec` that owns
  the directory (written on first use; later runs must present a spec with
  the same content digest, so two campaigns can never interleave rows);
* ``results.jsonl`` — one JSON object per line, appended and flushed as
  each task completes.

The append-and-flush discipline is what makes campaigns resumable: if the
process is killed mid-run, every fully written line survives, at most the
final line is truncated, and :meth:`CampaignStore.rows` simply skips lines
that do not parse.  With ``durability="fsync"`` every append is also
fsynced, so even a *machine* crash (power loss, kernel panic) loses at
most one row — the default stays flush-only because an fsync per row is
orders of magnitude slower on most filesystems.  A resumed run asks
:meth:`completed_keys` which tasks already have a ``"done"`` row and
executes only the remainder — failed and timed-out rows are retried up
to the retry policy's attempt budget (:meth:`retry_exhausted_keys` names
the rows that used it up), and a re-completed key supersedes older rows
(last write wins).

Sharded campaigns write one such directory per shard (all bound to the
same spec, because every shard store carries the full spec and refuses
foreign digests); :func:`merge_shards` fuses them back into a single
store whose row set — and therefore aggregate digest — is provably
identical to a monolithic run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Set

from repro.exceptions import CampaignError
from repro.runtime.spec import DURABILITY_LEVELS, CampaignSpec

SPEC_FILENAME = "spec.json"
RESULTS_FILENAME = "results.jsonl"

#: Terminal row statuses a retry policy re-executes (everything but "done").
RETRYABLE_STATUSES = ("failed", "timeout")


class CampaignStore:
    """Append-only result store rooted at one campaign directory.

    ``durability`` selects the write discipline of :meth:`append`:
    ``"flush"`` (default) flushes each row so a process kill loses at
    most one line; ``"fsync"`` additionally fsyncs so a machine crash
    loses at most one line.
    """

    def __init__(self, directory, durability: str = "flush") -> None:
        if durability not in DURABILITY_LEVELS:
            raise CampaignError(
                f"durability must be one of {DURABILITY_LEVELS}, got {durability!r}"
            )
        self.directory = Path(directory)
        self.durability = durability

    @property
    def spec_path(self) -> Path:
        return self.directory / SPEC_FILENAME

    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_FILENAME

    # ------------------------------------------------------------------
    # spec identity
    # ------------------------------------------------------------------
    def initialize(self, spec: CampaignSpec) -> None:
        """Create the directory and bind it to ``spec`` (or verify the binding).

        First use writes ``spec.json``; later use re-reads it and raises
        :class:`CampaignError` when the content digest differs, so a
        directory can never accumulate rows from two different campaigns.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            existing = self.load_spec()
            if existing.digest() != spec.digest():
                raise CampaignError(
                    f"campaign directory {self.directory} already belongs to campaign "
                    f"{existing.name!r} (spec digest {existing.digest()[:12]}); refusing "
                    f"to mix in results for {spec.name!r} ({spec.digest()[:12]})"
                )
            return
        self.spec_path.write_text(spec.to_json() + "\n", encoding="utf-8")

    def load_spec(self) -> CampaignSpec:
        """Read the spec bound to this directory."""
        if not self.spec_path.exists():
            raise CampaignError(
                f"{self.spec_path} does not exist; is {self.directory} a campaign directory?"
            )
        return CampaignSpec.from_json(self.spec_path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def _needs_tail_newline(self) -> bool:
        """True when a kill left the file without a trailing newline.

        The next write must terminate that truncated line first, so a new
        row is not glued onto the partial one and lost with it.
        """
        if not self.results_path.exists():
            return False
        with open(self.results_path, "rb") as handle:
            handle.seek(0, 2)
            if handle.tell() == 0:
                return False
            handle.seek(-1, 2)
            return handle.read(1) != b"\n"

    def append(self, row: Dict[str, Any]) -> None:
        """Append one result row, flushed so a kill loses at most this line.

        Under ``durability="fsync"`` the row is also fsynced to disk, so
        at most this line is lost even if the whole machine dies before
        the page cache is written back.
        """
        if "task_key" not in row or "status" not in row:
            raise CampaignError(f"result rows need 'task_key' and 'status', got {sorted(row)!r}")
        needs_newline = self._needs_tail_newline()
        with open(self.results_path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            handle.flush()
            if self.durability == "fsync":
                os.fsync(handle.fileno())

    def rows(self) -> List[Dict[str, Any]]:
        """Read every well-formed result row, in file order.

        Lines that fail to parse (the truncated tail of a killed run) and
        lines without a ``task_key`` are skipped — resuming re-executes
        those tasks, which is always safe because tasks are pure.
        """
        if not self.results_path.exists():
            return []
        rows: List[Dict[str, Any]] = []
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if isinstance(row, dict) and "task_key" in row and "status" in row:
                    rows.append(row)
        return rows

    def latest_rows(self) -> Dict[str, Dict[str, Any]]:
        """Map each task key to its most recent row (a retry supersedes a failure)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for row in self.rows():
            latest[row["task_key"]] = row
        return latest

    def completed_keys(self) -> Set[str]:
        """Task keys whose latest row is ``"done"`` — the resume skip-set."""
        return {
            key for key, row in self.latest_rows().items() if row["status"] == "done"
        }

    def status_counts(self) -> Dict[str, int]:
        """Count latest rows per status (``done`` / ``failed`` / ``timeout`` / …)."""
        counts: Dict[str, int] = {}
        for row in self.latest_rows().values():
            counts[row["status"]] = counts.get(row["status"], 0) + 1
        return counts

    def retry_exhausted_keys(self, max_attempts: int) -> Set[str]:
        """Task keys whose latest row burned the whole retry budget.

        A key qualifies when its latest row is a retryable failure
        (``failed`` or ``timeout``) whose ``attempt`` counter — the
        number of consecutive executions that died with the *same* error
        signature — has reached ``max_attempts``.  The scheduler skips
        these on resume (re-running them would deterministically fail the
        same way again) and ``repro campaign status`` warns about them.
        """
        if max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
        return {
            key
            for key, row in self.latest_rows().items()
            if row["status"] in RETRYABLE_STATUSES
            and row.get("attempt", 1) >= max_attempts
        }

    def cache_counts(self) -> Dict[str, int]:
        """Instance-cache hits/misses over the latest rows (status reporting).

        Rows without the flag (failed rows, stores written before the
        cache existed) count toward neither bucket.
        """
        counts = {"cache_hits": 0, "cache_misses": 0}
        for row in self.latest_rows().values():
            if "instance_cache_hit" in row:
                counts["cache_hits" if row["instance_cache_hit"] else "cache_misses"] += 1
        return counts


def merge_shards(destination, shard_dirs) -> CampaignStore:
    """Fuse shard campaign directories into one store and return it.

    Every shard directory must be bound to the *same* spec (content
    digest); a foreign spec is refused, because its rows would poison the
    merged aggregate.  Rows are appended in argument order (file order
    within each shard), so overlapping stores resolve exactly like a
    single store does: last write wins per task key.  The destination may
    already hold rows for the same spec (merging into a partially
    complete store is an ordinary resume) but must not be one of the
    shard directories being merged.
    """
    shard_dirs = [Path(d) for d in shard_dirs]
    if not shard_dirs:
        raise CampaignError("merge_shards needs at least one shard directory")
    destination = Path(destination)
    for shard_dir in shard_dirs:
        if shard_dir.resolve() == destination.resolve():
            raise CampaignError(
                f"merge destination {destination} is itself one of the shard "
                f"directories; merge into a fresh directory"
            )
    stores = [CampaignStore(d) for d in shard_dirs]
    spec = stores[0].load_spec()
    for store in stores[1:]:
        other = store.load_spec()
        if other.digest() != spec.digest():
            raise CampaignError(
                f"shard store {store.directory} belongs to campaign {other.name!r} "
                f"(spec digest {other.digest()[:12]}), not {spec.name!r} "
                f"({spec.digest()[:12]}); refusing to merge foreign shards"
            )
    merged = CampaignStore(destination)
    merged.initialize(spec)
    # Batched append: shard rows are already parsed, validated JSON (any
    # truncated shard tails were dropped by rows()), so one write handle
    # suffices — only the destination's own pre-existing tail needs the
    # truncation check.
    needs_newline = merged._needs_tail_newline()
    with open(merged.results_path, "a", encoding="utf-8") as handle:
        if needs_newline:
            handle.write("\n")
        for store in stores:
            for row in store.rows():
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        handle.flush()
    return merged
