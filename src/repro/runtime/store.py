"""Result stores for campaign artifacts: append-only JSONL and indexed SQLite.

A campaign directory always holds ``spec.json`` — the
:class:`~repro.runtime.spec.CampaignSpec` that owns the directory
(written on first use; later runs must present a spec with the same
content digest, so two campaigns can never interleave rows) — plus the
rows themselves in one of two backends:

* **JSONL** (:class:`CampaignStore`, the default): ``results.jsonl``
  holds one JSON object per line, appended and flushed as each task
  completes.  The append-and-flush discipline is what makes campaigns
  resumable: if the process is killed mid-run, every fully written line
  survives, at most the final line is truncated, and :meth:`rows` simply
  skips lines that do not parse.  With ``durability="fsync"`` every
  append is also fsynced, so even a *machine* crash loses at most one
  row.
* **SQLite** (:class:`SQLiteCampaignStore`, ``store: sqlite`` in the
  spec): ``results.sqlite`` holds the same rows in an indexed table, so
  ``latest_rows``/``completed_keys``/``status_counts`` are index lookups
  instead of full-file scans — the right trade at millions of rows.
  Durability maps onto ``PRAGMA synchronous`` (``fsync`` → ``FULL``,
  ``flush`` → ``OFF``); a process kill between transactions loses at
  most the in-flight row, mirroring the JSONL guarantees.

Both backends expose the same surface, and three scale features on top:

* **Incremental aggregation** (:meth:`~CampaignStore.summaries`): the
  per-task sufficient statistics of the deterministic aggregates are
  persisted next to the rows (``aggregates.json`` with a byte cursor
  into ``results.jsonl``; an ``aggregate`` table with a row-id cursor in
  SQLite), so a report touches only rows appended since the last one —
  O(new rows), not O(all rows) — and feeds the exact same record builder
  as the full-row reference path (see :mod:`repro.runtime.summary`).
* **Compaction** (:meth:`~CampaignStore.compact`, ``repro campaign
  compact``): drops superseded and duplicate rows, keeping exactly the
  latest row per task key — digest-identical by construction, crash-safe
  via write-to-temp + fsync + atomic rename (``DELETE`` + ``VACUUM`` in
  SQLite).
* **Merging** (:func:`merge_shards`): fuses shard directories — any mix
  of backends — into one store with batched, durability-honoring writes,
  and combines the shards' partial aggregates instead of re-scanning the
  merged rows.

A resumed run asks :meth:`completed_keys` which tasks already have a
``"done"`` row and executes only the remainder — failed and timed-out
rows are retried up to the retry policy's attempt budget
(:meth:`retry_exhausted_keys` names the rows that used it up), and a
re-completed key supersedes older rows (last write wins).
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro import obs
from repro.exceptions import CampaignError
from repro.runtime.spec import DURABILITY_LEVELS, STORE_BACKENDS, CampaignSpec
from repro.runtime.summary import SUMMARY_VERSION, summarize_row

# Store metrics, labeled by backend.  "Flush" counts write barriers: one
# per JSONL write call, one per SQLite commit; fsyncs count only under
# durability="fsync" (JSONL os.fsync calls / SQLite synchronous=FULL
# commits).  Compaction counters mirror CompactionStats so a scraper
# sees reclamation without parsing CLI output.
_M_ROWS_APPENDED = obs.counter(
    "repro_store_rows_appended_total",
    "Result rows appended to campaign stores.",
    labels=("backend",),
)
_M_FLUSHES = obs.counter(
    "repro_store_flushes_total",
    "Write barriers issued (JSONL flushed writes / SQLite commits).",
    labels=("backend",),
)
_M_FSYNCS = obs.counter(
    "repro_store_fsyncs_total",
    "Durable syncs issued under durability=fsync.",
    labels=("backend",),
)
_M_COMPACTIONS = obs.counter(
    "repro_store_compactions_total",
    "Store compactions performed.",
    labels=("backend",),
)
_M_COMPACTION_ROWS_DROPPED = obs.counter(
    "repro_store_compaction_rows_dropped_total",
    "Superseded/duplicate rows dropped by compactions.",
    labels=("backend",),
)

SPEC_FILENAME = "spec.json"
RESULTS_FILENAME = "results.jsonl"
SQLITE_FILENAME = "results.sqlite"
AGGREGATES_FILENAME = "aggregates.json"

#: Terminal row statuses a retry policy re-executes (everything but "done").
RETRYABLE_STATUSES = ("failed", "timeout")


# ----------------------------------------------------------------------
# query helpers over a latest-per-key mapping
# ----------------------------------------------------------------------
# These accept either a latest-rows mapping or a summaries mapping (both
# carry "status" / "attempt" / "instance_cache_hit"), so a CLI command
# can read the store once and derive every view from that single read.

def completed_of(latest: Mapping[str, Mapping[str, Any]]) -> Set[str]:
    """Task keys whose latest entry is ``"done"`` — the resume skip-set."""
    return {key for key, entry in latest.items() if entry["status"] == "done"}


def status_counts_of(latest: Mapping[str, Mapping[str, Any]]) -> Dict[str, int]:
    """Count latest entries per status (``done`` / ``failed`` / ``timeout`` / …)."""
    counts: Dict[str, int] = {}
    for entry in latest.values():
        counts[entry["status"]] = counts.get(entry["status"], 0) + 1
    return counts


def retry_exhausted_of(
    latest: Mapping[str, Mapping[str, Any]], max_attempts: int
) -> Set[str]:
    """Task keys whose latest entry burned the whole retry budget."""
    if max_attempts < 1:
        raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
    return {
        key
        for key, entry in latest.items()
        if entry["status"] in RETRYABLE_STATUSES
        and entry.get("attempt", 1) >= max_attempts
    }


def cache_counts_of(latest: Mapping[str, Mapping[str, Any]]) -> Dict[str, int]:
    """Instance-cache hits/misses over the latest entries.

    Entries without the flag (failed rows, stores written before the
    cache existed) count toward neither bucket.
    """
    counts = {"cache_hits": 0, "cache_misses": 0}
    for entry in latest.values():
        if "instance_cache_hit" in entry:
            counts["cache_hits" if entry["instance_cache_hit"] else "cache_misses"] += 1
    return counts


def _parse_row(raw) -> Optional[Dict[str, Any]]:
    """Parse one JSONL line (str or bytes) into a row, or None when malformed.

    Blank lines, the truncated tail of a killed run, and objects without
    a ``task_key``/``status`` all return None — resuming re-executes
    those tasks, which is always safe because tasks are pure.
    """
    raw = raw.strip()
    if not raw:
        return None
    try:
        row = json.loads(raw)
    except ValueError:
        return None
    if isinstance(row, dict) and "task_key" in row and "status" in row:
        return row
    return None


@dataclass(frozen=True)
class CompactionStats:
    """What one :meth:`compact` call did: row and byte counts before/after."""

    rows_before: int
    rows_after: int
    bytes_before: int
    bytes_after: int

    @property
    def rows_dropped(self) -> int:
        return self.rows_before - self.rows_after


class BaseCampaignStore:
    """Shared surface of the campaign result stores.

    Concrete backends implement the row I/O (:meth:`append`,
    :meth:`append_many`, :meth:`rows`, :meth:`summaries`,
    :meth:`compact`); the spec binding and the latest-row query views are
    common.  ``durability`` selects the write discipline: ``"flush"``
    (default) guarantees a process kill loses at most one row,
    ``"fsync"`` extends that to machine crashes.
    """

    backend = "abstract"

    def __init__(self, directory, durability: str = "flush") -> None:
        if durability not in DURABILITY_LEVELS:
            raise CampaignError(
                f"durability must be one of {DURABILITY_LEVELS}, got {durability!r}"
            )
        self.directory = Path(directory)
        self.durability = durability

    @property
    def spec_path(self) -> Path:
        return self.directory / SPEC_FILENAME

    # ------------------------------------------------------------------
    # spec identity
    # ------------------------------------------------------------------
    def initialize(self, spec: CampaignSpec) -> None:
        """Create the directory and bind it to ``spec`` (or verify the binding).

        First use writes ``spec.json``; later use re-reads it and raises
        :class:`CampaignError` when the content digest differs, so a
        directory can never accumulate rows from two different campaigns.
        (The digest excludes the ``store`` backend, so re-opening a
        directory with a backend-overridden spec is not a foreign spec.)
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            existing = self.load_spec()
            if existing.digest() != spec.digest():
                raise CampaignError(
                    f"campaign directory {self.directory} already belongs to campaign "
                    f"{existing.name!r} (spec digest {existing.digest()[:12]}); refusing "
                    f"to mix in results for {spec.name!r} ({spec.digest()[:12]})"
                )
            return
        self.spec_path.write_text(spec.to_json() + "\n", encoding="utf-8")

    def load_spec(self) -> CampaignSpec:
        """Read the spec bound to this directory."""
        if not self.spec_path.exists():
            raise CampaignError(
                f"{self.spec_path} does not exist; is {self.directory} a campaign directory?"
            )
        return CampaignSpec.from_json(self.spec_path.read_text(encoding="utf-8"))

    @staticmethod
    def _check_row(row: Dict[str, Any]) -> None:
        if "task_key" not in row or "status" not in row:
            raise CampaignError(
                f"result rows need 'task_key' and 'status', got {sorted(row)!r}"
            )

    # ------------------------------------------------------------------
    # row I/O (backend-specific)
    # ------------------------------------------------------------------
    def append(self, row: Dict[str, Any]) -> None:
        raise NotImplementedError

    def append_many(self, rows: Iterable[Dict[str, Any]]) -> None:
        raise NotImplementedError

    def rows(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        raise NotImplementedError

    def compact(self) -> CompactionStats:
        raise NotImplementedError

    def _replace_summaries(self, summaries: Dict[str, Dict[str, Any]]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op for file-per-write backends)."""

    # ------------------------------------------------------------------
    # query views (backends may override with indexed implementations)
    # ------------------------------------------------------------------
    def latest_rows(self) -> Dict[str, Dict[str, Any]]:
        """Map each task key to its most recent row (a retry supersedes a failure)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for row in self.rows():
            latest[row["task_key"]] = row
        return latest

    def completed_keys(self) -> Set[str]:
        """Task keys whose latest row is ``"done"`` — the resume skip-set."""
        return completed_of(self.latest_rows())

    def status_counts(self) -> Dict[str, int]:
        """Count latest rows per status (``done`` / ``failed`` / ``timeout`` / …)."""
        return status_counts_of(self.latest_rows())

    def retry_exhausted_keys(self, max_attempts: int) -> Set[str]:
        """Task keys whose latest row burned the whole retry budget.

        A key qualifies when its latest row is a retryable failure
        (``failed`` or ``timeout``) whose ``attempt`` counter — the
        number of consecutive executions that died with the *same* error
        signature — has reached ``max_attempts``.  The scheduler skips
        these on resume (re-running them would deterministically fail the
        same way again) and ``repro campaign status`` warns about them.
        """
        return retry_exhausted_of(self.latest_rows(), max_attempts)

    def cache_counts(self) -> Dict[str, int]:
        """Instance-cache hits/misses over the latest rows (status reporting)."""
        return cache_counts_of(self.latest_rows())


class CampaignStore(BaseCampaignStore):
    """Append-only JSONL store rooted at one campaign directory.

    ``durability`` selects the write discipline of :meth:`append`:
    ``"flush"`` (default) flushes each row so a process kill loses at
    most one line; ``"fsync"`` additionally fsyncs so a machine crash
    loses at most one line.
    """

    backend = "jsonl"

    def __init__(self, directory, durability: str = "flush") -> None:
        super().__init__(directory, durability)
        # Byte size of results.jsonl after our last write, or None when we
        # have not looked yet.  While the size matches, the file still ends
        # with the newline we wrote, so append can skip the tail check; any
        # external change (kill truncation, test tampering) shows up as a
        # size mismatch and re-triggers it.
        self._known_size: Optional[int] = None

    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_FILENAME

    @property
    def aggregates_path(self) -> Path:
        return self.directory / AGGREGATES_FILENAME

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def _needs_tail_newline(self) -> bool:
        """True when a kill left the file without a trailing newline.

        The next write must terminate that truncated line first, so a new
        row is not glued onto the partial one and lost with it.
        """
        if not self.results_path.exists():
            return False
        with open(self.results_path, "rb") as handle:
            handle.seek(0, 2)
            if handle.tell() == 0:
                return False
            handle.seek(-1, 2)
            return handle.read(1) != b"\n"

    def _tail_unknown(self) -> bool:
        """Whether the tail state must be re-checked before the next write.

        One stat call per append replaces the old open+seek+read: while
        the file size still matches what we last wrote, our own trailing
        newline is necessarily intact.
        """
        if self._known_size is None:
            return True
        try:
            return os.path.getsize(self.results_path) != self._known_size
        except OSError:
            return True

    def _write_lines(self, lines: List[str]) -> None:
        needs_newline = False
        if self._tail_unknown():
            self.directory.mkdir(parents=True, exist_ok=True)
            needs_newline = self._needs_tail_newline()
        payload = "".join(line + "\n" for line in lines).encode("utf-8")
        with open(self.results_path, "ab") as handle:
            if needs_newline:
                handle.write(b"\n")
            handle.write(payload)
            handle.flush()
            if self.durability == "fsync":
                os.fsync(handle.fileno())
                _M_FSYNCS.labels(self.backend).inc()
            self._known_size = handle.tell()
        _M_ROWS_APPENDED.labels(self.backend).inc(len(lines))
        _M_FLUSHES.labels(self.backend).inc()

    def append(self, row: Dict[str, Any]) -> None:
        """Append one result row, flushed so a kill loses at most this line.

        Under ``durability="fsync"`` the row is also fsynced to disk, so
        at most this line is lost even if the whole machine dies before
        the page cache is written back.
        """
        self._check_row(row)
        self._write_lines([json.dumps(row, sort_keys=True)])

    def append_many(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Append a batch of rows through one handle: one flush, one fsync.

        Same durability contract as :meth:`append`, amortized — the whole
        batch is written, flushed, and (under ``"fsync"``) fsynced once.
        """
        rows = list(rows)
        for row in rows:
            self._check_row(row)
        if rows:
            self._write_lines([json.dumps(row, sort_keys=True) for row in rows])

    def rows(self) -> List[Dict[str, Any]]:
        """Read every well-formed result row, in file order.

        Lines that fail to parse (the truncated tail of a killed run) and
        lines without a ``task_key`` are skipped — resuming re-executes
        those tasks, which is always safe because tasks are pure.
        """
        if not self.results_path.exists():
            return []
        rows: List[Dict[str, Any]] = []
        with open(self.results_path, "r", encoding="utf-8") as handle:
            for line in handle:
                row = _parse_row(line)
                if row is not None:
                    rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # incremental aggregation
    # ------------------------------------------------------------------
    def _load_aggregate_state(self) -> Tuple[int, Dict[str, Dict[str, Any]]]:
        try:
            payload = json.loads(self.aggregates_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0, {}
        if not isinstance(payload, dict) or payload.get("version") != SUMMARY_VERSION:
            return 0, {}
        offset = payload.get("byte_offset")
        summaries = payload.get("summaries")
        if not isinstance(offset, int) or offset < 0 or not isinstance(summaries, dict):
            return 0, {}
        return offset, summaries

    def _store_aggregate_state(
        self, offset: int, summaries: Dict[str, Dict[str, Any]]
    ) -> None:
        payload = {
            "version": SUMMARY_VERSION,
            "byte_offset": offset,
            "summaries": summaries,
        }
        tmp = self.aggregates_path.with_name(AGGREGATES_FILENAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            if self.durability == "fsync":
                os.fsync(handle.fileno())
        os.replace(tmp, self.aggregates_path)

    def _replace_summaries(self, summaries: Dict[str, Dict[str, Any]]) -> None:
        """Persist ``summaries`` as covering the results file as it stands."""
        try:
            size = os.path.getsize(self.results_path)
        except OSError:
            size = 0
        self._store_aggregate_state(size, summaries)

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Latest-per-key sufficient statistics, maintained incrementally.

        The mapping is persisted in ``aggregates.json`` together with the
        byte offset of the last fully scanned line, so each call
        summarizes only rows appended since the previous one (O(new
        rows)) before merging them in (last write per key wins, exactly
        like the row log).  The sidecar is rebuilt from scratch whenever
        the cursor no longer lands on a line boundary of the current file
        (kill truncation below the cursor, external rewrites, format
        changes) — it is a pure cache of ``results.jsonl``, never a
        source of truth.  A valid-but-unterminated tail row (the write a
        kill interrupted) is folded into the *returned* mapping, matching
        :meth:`rows`, but the persisted cursor never advances past it.
        """
        try:
            size = os.path.getsize(self.results_path)
        except OSError:
            size = 0
        offset, summaries = self._load_aggregate_state()
        dirty = False
        if offset > size:
            offset, summaries, dirty = 0, {}, True
        tail_entry: Optional[Tuple[str, Dict[str, Any]]] = None
        if size > offset:
            with open(self.results_path, "rb") as handle:
                if offset:
                    handle.seek(offset - 1)
                    if handle.read(1) != b"\n":
                        offset, summaries, dirty = 0, {}, True
                        handle.seek(0)
                chunk = handle.read()
            lines = chunk.split(b"\n")
            for raw in lines[:-1]:
                offset += len(raw) + 1
                dirty = True
                row = _parse_row(raw)
                if row is not None:
                    summaries[row["task_key"]] = summarize_row(row)
            tail_row = _parse_row(lines[-1]) if lines[-1] else None
            if tail_row is not None:
                tail_entry = (tail_row["task_key"], summarize_row(tail_row))
        if dirty:
            try:
                self._store_aggregate_state(offset, summaries)
            except OSError:
                pass  # read-only directory: serve the scan, skip the cache refresh
        result = dict(summaries)
        if tail_entry is not None:
            result[tail_entry[0]] = tail_entry[1]
        return result

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self) -> CompactionStats:
        """Rewrite the log keeping only the latest row per task key.

        Digest-identical by construction (exactly the rows
        :meth:`latest_rows` selects, in file order of their final
        occurrence) and crash-safe: the survivors are written to a
        temporary file, fsynced, and atomically renamed over
        ``results.jsonl``, so a kill at any point leaves either the old
        or the new log — never a mix.  The aggregate sidecar is refreshed
        to cover the compacted file.
        """
        try:
            bytes_before = os.path.getsize(self.results_path)
        except OSError:
            return CompactionStats(0, 0, 0, 0)
        rows = self.rows()
        final_index = {row["task_key"]: i for i, row in enumerate(rows)}
        kept = [row for i, row in enumerate(rows) if final_index[row["task_key"]] == i]
        tmp = self.results_path.with_name(RESULTS_FILENAME + ".tmp")
        with open(tmp, "wb") as handle:
            for row in kept:
                handle.write((json.dumps(row, sort_keys=True) + "\n").encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.results_path)
        bytes_after = os.path.getsize(self.results_path)
        self._known_size = bytes_after
        self._store_aggregate_state(
            bytes_after, {row["task_key"]: summarize_row(row) for row in kept}
        )
        _M_COMPACTIONS.labels(self.backend).inc()
        _M_COMPACTION_ROWS_DROPPED.labels(self.backend).inc(len(rows) - len(kept))
        return CompactionStats(len(rows), len(kept), bytes_before, bytes_after)


class SQLiteCampaignStore(BaseCampaignStore):
    """Indexed campaign store backed by a SQLite file (``store: sqlite``).

    Rows live in a ``results`` table ordered by an autoincrement id (the
    insertion order, so last-write-wins means MAX(id) per task key) with
    the hot query fields — status, attempt, cache flag — as indexed
    columns next to the full JSON payload.  The query views are index
    lookups; the aggregate sidecar is an ``aggregate`` table plus a
    row-id cursor, advanced inside the same transaction that scans new
    rows.  Durability maps to ``PRAGMA synchronous``: ``"fsync"`` →
    ``FULL`` (every commit reaches the platter), ``"flush"`` → ``OFF``
    (the OS page cache absorbs kills, matching JSONL flush semantics).
    """

    backend = "sqlite"

    def __init__(self, directory, durability: str = "flush") -> None:
        super().__init__(directory, durability)
        self._conn: Optional[sqlite3.Connection] = None

    @property
    def results_path(self) -> Path:
        return self.directory / SQLITE_FILENAME

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.results_path))
            conn.execute(
                "PRAGMA synchronous=%s"
                % ("FULL" if self.durability == "fsync" else "OFF")
            )
            with conn:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS results ("
                    " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                    " task_key TEXT NOT NULL,"
                    " status TEXT NOT NULL,"
                    " attempt INTEGER NOT NULL DEFAULT 1,"
                    " cache_hit INTEGER,"
                    " payload TEXT NOT NULL)"
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_results_key"
                    " ON results (task_key, id)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS aggregate ("
                    " task_key TEXT PRIMARY KEY, summary TEXT NOT NULL)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta ("
                    " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @staticmethod
    def _row_params(row: Dict[str, Any]) -> Tuple:
        cache_hit = row.get("instance_cache_hit")
        return (
            row["task_key"],
            row["status"],
            int(row.get("attempt", 1)),
            None if cache_hit is None else int(bool(cache_hit)),
            json.dumps(row, sort_keys=True),
        )

    _INSERT = (
        "INSERT INTO results (task_key, status, attempt, cache_hit, payload)"
        " VALUES (?, ?, ?, ?, ?)"
    )

    def _count_commit(self, rows_appended: int) -> None:
        """One transaction landed: count its rows, the commit, and the sync."""
        _M_ROWS_APPENDED.labels(self.backend).inc(rows_appended)
        _M_FLUSHES.labels(self.backend).inc()
        if self.durability == "fsync":
            # synchronous=FULL makes every commit a durable sync.
            _M_FSYNCS.labels(self.backend).inc()

    def append(self, row: Dict[str, Any]) -> None:
        """Insert one row in its own transaction (commit = the kill boundary)."""
        self._check_row(row)
        conn = self._connect()
        with conn:
            conn.execute(self._INSERT, self._row_params(row))
        self._count_commit(1)

    def append_many(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Insert a batch of rows in one transaction: one commit, one sync."""
        rows = list(rows)
        for row in rows:
            self._check_row(row)
        if not rows:
            return
        conn = self._connect()
        with conn:
            conn.executemany(self._INSERT, [self._row_params(row) for row in rows])
        self._count_commit(len(rows))

    def rows(self) -> List[Dict[str, Any]]:
        """Every stored row in insertion order (the JSONL file-order analogue)."""
        if not self.results_path.exists():
            return []
        conn = self._connect()
        return [
            json.loads(payload)
            for (payload,) in conn.execute("SELECT payload FROM results ORDER BY id")
        ]

    def latest_rows(self) -> Dict[str, Dict[str, Any]]:
        if not self.results_path.exists():
            return {}
        conn = self._connect()
        return {
            key: json.loads(payload)
            for key, payload in conn.execute(
                "SELECT r.task_key, r.payload FROM results r JOIN"
                " (SELECT task_key, MAX(id) AS mid FROM results GROUP BY task_key) m"
                " ON r.id = m.mid"
            )
        }

    def completed_keys(self) -> Set[str]:
        if not self.results_path.exists():
            return set()
        conn = self._connect()
        return {
            key
            for (key,) in conn.execute(
                "SELECT r.task_key FROM results r JOIN"
                " (SELECT task_key, MAX(id) AS mid FROM results GROUP BY task_key) m"
                " ON r.id = m.mid WHERE r.status = 'done'"
            )
        }

    def status_counts(self) -> Dict[str, int]:
        if not self.results_path.exists():
            return {}
        conn = self._connect()
        return {
            status: count
            for status, count in conn.execute(
                "SELECT r.status, COUNT(*) FROM results r JOIN"
                " (SELECT task_key, MAX(id) AS mid FROM results GROUP BY task_key) m"
                " ON r.id = m.mid GROUP BY r.status"
            )
        }

    def retry_exhausted_keys(self, max_attempts: int) -> Set[str]:
        if max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
        if not self.results_path.exists():
            return set()
        conn = self._connect()
        return {
            key
            for (key,) in conn.execute(
                "SELECT r.task_key FROM results r JOIN"
                " (SELECT task_key, MAX(id) AS mid FROM results GROUP BY task_key) m"
                " ON r.id = m.mid WHERE r.status IN (?, ?) AND r.attempt >= ?",
                (*RETRYABLE_STATUSES, max_attempts),
            )
        }

    def cache_counts(self) -> Dict[str, int]:
        counts = {"cache_hits": 0, "cache_misses": 0}
        if not self.results_path.exists():
            return counts
        conn = self._connect()
        for cache_hit, count in conn.execute(
            "SELECT r.cache_hit, COUNT(*) FROM results r JOIN"
            " (SELECT task_key, MAX(id) AS mid FROM results GROUP BY task_key) m"
            " ON r.id = m.mid WHERE r.cache_hit IS NOT NULL GROUP BY r.cache_hit"
        ):
            counts["cache_hits" if cache_hit else "cache_misses"] += count
        return counts

    # ------------------------------------------------------------------
    # incremental aggregation
    # ------------------------------------------------------------------
    def _cursor(self, conn: sqlite3.Connection) -> int:
        found = conn.execute(
            "SELECT value FROM meta WHERE key = 'aggregate_cursor'"
        ).fetchone()
        return int(found[0]) if found else 0

    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Latest-per-key sufficient statistics, maintained incrementally.

        The ``aggregate`` table mirrors the latest summary per task key;
        ``meta.aggregate_cursor`` records the highest summarized row id,
        so each call scans only newer rows.  A cursor above MAX(id) means
        rows were deleted underneath us (a simulated kill, an external
        repair) — the table is rebuilt from scratch, because like the
        JSONL sidecar it is a cache, never a source of truth.
        """
        if not self.results_path.exists():
            return {}
        conn = self._connect()
        with conn:
            cursor = self._cursor(conn)
            (max_id,) = conn.execute(
                "SELECT COALESCE(MAX(id), 0) FROM results"
            ).fetchone()
            if cursor > max_id:
                conn.execute("DELETE FROM aggregate")
                cursor = 0
            if max_id > cursor:
                fresh = conn.execute(
                    "SELECT payload FROM results WHERE id > ? ORDER BY id", (cursor,)
                ).fetchall()
                conn.executemany(
                    "INSERT OR REPLACE INTO aggregate (task_key, summary) VALUES (?, ?)",
                    [
                        (row["task_key"], json.dumps(summarize_row(row), sort_keys=True))
                        for (payload,) in fresh
                        for row in (json.loads(payload),)
                    ],
                )
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES"
                    " ('aggregate_cursor', ?)",
                    (str(max_id),),
                )
        return {
            key: json.loads(summary)
            for key, summary in conn.execute("SELECT task_key, summary FROM aggregate")
        }

    def _replace_summaries(self, summaries: Dict[str, Dict[str, Any]]) -> None:
        conn = self._connect()
        with conn:
            (max_id,) = conn.execute(
                "SELECT COALESCE(MAX(id), 0) FROM results"
            ).fetchone()
            conn.execute("DELETE FROM aggregate")
            conn.executemany(
                "INSERT INTO aggregate (task_key, summary) VALUES (?, ?)",
                [
                    (key, json.dumps(summary, sort_keys=True))
                    for key, summary in summaries.items()
                ],
            )
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('aggregate_cursor', ?)",
                (str(max_id),),
            )

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self) -> CompactionStats:
        """Delete superseded rows (everything but MAX(id) per key) and VACUUM."""
        if not self.results_path.exists():
            return CompactionStats(0, 0, 0, 0)
        conn = self._connect()
        bytes_before = os.path.getsize(self.results_path)
        with conn:
            (rows_before,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
            conn.execute(
                "DELETE FROM results WHERE id NOT IN"
                " (SELECT MAX(id) FROM results GROUP BY task_key)"
            )
            (rows_after,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        conn.execute("VACUUM")
        bytes_after = os.path.getsize(self.results_path)
        _M_COMPACTIONS.labels(self.backend).inc()
        _M_COMPACTION_ROWS_DROPPED.labels(self.backend).inc(rows_before - rows_after)
        return CompactionStats(rows_before, rows_after, bytes_before, bytes_after)


#: Backend name → store class (the ``open_store`` dispatch table).
STORE_CLASSES = {"jsonl": CampaignStore, "sqlite": SQLiteCampaignStore}


def detect_backend(directory) -> Optional[str]:
    """Which backend already owns ``directory``, or None for a fresh one.

    An existing results file wins (it *is* the data); otherwise a bound
    ``spec.json`` names its preferred backend.
    """
    directory = Path(directory)
    if (directory / RESULTS_FILENAME).exists():
        return "jsonl"
    if (directory / SQLITE_FILENAME).exists():
        return "sqlite"
    spec_path = directory / SPEC_FILENAME
    if spec_path.exists():
        try:
            return CampaignSpec.from_json(spec_path.read_text(encoding="utf-8")).store
        except CampaignError:
            return None
    return None


def open_store(
    directory,
    durability: str = "flush",
    backend: Optional[str] = None,
    default_backend: str = "jsonl",
) -> BaseCampaignStore:
    """Open the right store for ``directory``.

    ``backend`` forces one explicitly (refused when the directory already
    holds the *other* backend's results file — rows must never split
    across two files); otherwise the directory's existing results file or
    bound spec decides, falling back to ``default_backend`` (pass the
    spec's ``store`` field here) for fresh directories.
    """
    for name in (backend, default_backend):
        if name is not None and name not in STORE_CLASSES:
            raise CampaignError(
                f"store backend must be one of {STORE_BACKENDS}, got {name!r}"
            )
    detected = detect_backend(directory)
    if backend is not None:
        has_rows = detected is not None and (
            Path(directory)
            / (RESULTS_FILENAME if detected == "jsonl" else SQLITE_FILENAME)
        ).exists()
        if has_rows and detected != backend:
            raise CampaignError(
                f"campaign directory {directory} already holds {detected} results; "
                f"refusing to open it with the {backend!r} backend"
            )
        chosen = backend
    else:
        chosen = detected or default_backend
    return STORE_CLASSES[chosen](directory, durability=durability)


def merge_shards(destination, shard_dirs, durability: Optional[str] = None) -> BaseCampaignStore:
    """Fuse shard campaign directories into one store and return it.

    Every shard directory must be bound to the *same* spec (content
    digest); a foreign spec is refused, because its rows would poison the
    merged aggregate.  Rows are appended in argument order (file order
    within each shard), so overlapping stores resolve exactly like a
    single store does: last write wins per task key.  The destination may
    already hold rows for the same spec (merging into a partially
    complete store is an ordinary resume) but must not be one of the
    shard directories being merged.

    Writes honor the spec's ``durability`` (or an explicit ``durability``
    override): each shard's rows go through one batched
    :meth:`~BaseCampaignStore.append_many` — one flush, and under
    ``"fsync"`` one fsync, per shard.  Shards may use either backend; the
    destination uses its own existing backend, else the spec's.  Instead
    of re-scanning the merged log, the shards' partial aggregates are
    combined into the destination's (shard order = append order, so last
    write per key wins identically).
    """
    shard_dirs = [Path(d) for d in shard_dirs]
    if not shard_dirs:
        raise CampaignError("merge_shards needs at least one shard directory")
    destination = Path(destination)
    for shard_dir in shard_dirs:
        if shard_dir.resolve() == destination.resolve():
            raise CampaignError(
                f"merge destination {destination} is itself one of the shard "
                f"directories; merge into a fresh directory"
            )
    stores = [open_store(d) for d in shard_dirs]
    spec = stores[0].load_spec()
    for store in stores[1:]:
        other = store.load_spec()
        if other.digest() != spec.digest():
            raise CampaignError(
                f"shard store {store.directory} belongs to campaign {other.name!r} "
                f"(spec digest {other.digest()[:12]}), not {spec.name!r} "
                f"({spec.digest()[:12]}); refusing to merge foreign shards"
            )
    merged = open_store(
        destination,
        durability=durability if durability is not None else spec.durability,
        default_backend=spec.store,
    )
    merged.initialize(spec)
    # Catch the destination's own pre-existing rows up first, so the shard
    # partials land on top of them in append order.
    combined = merged.summaries()
    for store in stores:
        merged.append_many(store.rows())
        combined.update(store.summaries())
    merged._replace_summaries(combined)
    return merged
