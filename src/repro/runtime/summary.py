"""Per-task sufficient statistics for incremental campaign aggregation.

The deterministic aggregates (``C1`` phase decay, ``C2`` color budgets —
see :mod:`repro.runtime.aggregate`) need only a handful of numbers per
task, not the full serialized reduction result: the per-phase surviving
edge counts, the distinct-color total, and the color bound.
:func:`summarize_row` extracts exactly those into a small JSON-safe
*summary* dict, and :func:`records_from_summaries` rebuilds the
experiment records from a ``{task_key: summary}`` mapping.

This split is what makes report cost O(new rows): stores persist the
summary mapping next to the raw rows (``aggregates.json`` for the JSONL
backend, an ``aggregate`` table for SQLite) together with a cursor into
the row log, so a later report only summarizes rows appended since the
cursor and merges them into the persisted mapping (last write per task
key wins, exactly like the row store).

Digest safety is by construction, not by parallel implementations:
:func:`repro.runtime.aggregate.campaign_records` — the retained
differential reference that always re-reads every row — itself reduces
rows to summaries and calls :func:`records_from_summaries`, so the
incremental path shares every float operation (same values, summed in
the same sorted-task-key order) with the reference and
``campaign_digest`` is byte-identical whichever path produced the
records.  Summaries survive a JSON round trip losslessly (counts are
ints; the only floats, ``color_bound`` values, round-trip exactly), so
persisting them changes nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.analysis.records import ExperimentRecord
from repro.runtime.spec import CampaignSpec

#: Format version of persisted summary mappings; bump on layout changes
#: so stale sidecars are rebuilt instead of misread.
SUMMARY_VERSION = 1


def format_duration(seconds: float) -> str:
    """Render a duration humanized: ``417µs``, ``62ms``, ``3.1s``, ``2m03s``, ``1h04m``.

    The shared timing formatter of ``repro campaign status`` / ``report``
    and ``repro trace summary`` — raw ``%.2f`` seconds read terribly for
    both microsecond phases and hour-long supervised runs.  Values keep
    three significant digits below a minute and switch to mixed units
    above.
    """
    if seconds != seconds:  # NaN
        return "nan"
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}µs"
    if seconds < 1:
        return f"{seconds * 1e3:.3g}ms"
    if seconds < 60:
        return f"{seconds:.3g}s"
    if seconds < 3600:
        minutes, rest = divmod(seconds, 60)
        return f"{int(minutes)}m{int(rest):02d}s"
    hours, rest = divmod(seconds, 3600)
    return f"{int(hours)}h{int(rest // 60):02d}m"


def total_colors_of(result: Dict[str, Any]) -> int:
    """Distinct colors of a serialized reduction result (without reconstructing it)."""
    colors = set()
    for _vertex, vertex_colors in result["multicoloring"]:
        colors.update((phase, c) for phase, c in vertex_colors)
    return len(colors)


def summarize_row(row: Mapping[str, Any]) -> Dict[str, Any]:
    """Reduce one result row to the statistics the aggregates need.

    Every summary carries the row's ``status`` plus, when present, the
    query-side fields (``oracle``, ``k``, ``attempt``,
    ``instance_cache_hit``) so status reporting can run off summaries
    alone.  A ``"done"`` row with a serialized result additionally
    carries the C1/C2 sufficient statistics; rows without one (failures,
    timeouts, synthetic test rows) summarize to just the light fields and
    are excluded from the deterministic records exactly like before.
    """
    summary: Dict[str, Any] = {"status": row["status"]}
    for key in ("oracle", "k", "attempt", "instance_cache_hit"):
        if key in row:
            summary[key] = row[key]
    result = row.get("result")
    if row["status"] == "done" and isinstance(result, dict) and "color_bound" in result:
        phases = result["phases"]
        summary["phases"] = len(phases)
        summary["edges_after"] = [phase["edges_after"] for phase in phases]
        if phases:
            summary["edges_initial"] = phases[0]["edges_before"]
        summary["total_colors"] = total_colors_of(result)
        summary["color_bound"] = result["color_bound"]
    return summary


def _metadata(spec: CampaignSpec, tasks_done: int, tasks_failed: int) -> Dict[str, Any]:
    return {
        "campaign": spec.name,
        "seed": spec.seed,
        "spec_digest": spec.digest(),
        "tasks_total": spec.num_tasks(),
        "tasks_done": tasks_done,
        "tasks_failed": tasks_failed,
    }


def records_from_summaries(
    spec: CampaignSpec, summaries: Mapping[str, Mapping[str, Any]]
) -> List[ExperimentRecord]:
    """Build the deterministic records (C1, C2) from a summary mapping.

    Summaries are processed in sorted-task-key order — the same order the
    full-row reference path uses — so every float accumulation happens on
    the same values in the same order and the resulting records (hence
    ``campaign_digest``) are byte-identical to the reference's.
    """
    done = [summaries[key] for key in sorted(summaries) if summaries[key]["status"] == "done"]
    failed = len(summaries) - len(done)
    metadata = _metadata(spec, len(done), failed)

    decay = ExperimentRecord(
        experiment="C1",
        description="per-oracle phase decay: mean fraction of edges surviving each phase",
        metadata=dict(metadata),
    )
    by_oracle: Dict[str, List[Mapping[str, Any]]] = {}
    for summary in done:
        if summary.get("edges_after"):
            by_oracle.setdefault(summary["oracle"], []).append(summary)
    for oracle in sorted(by_oracle):
        tasks = by_oracle[oracle]
        max_phases = max(len(summary["edges_after"]) for summary in tasks)
        for phase in range(1, max_phases + 1):
            remaining_sum = 0.0
            active = 0
            for summary in tasks:
                edges_after = summary["edges_after"]
                if len(edges_after) >= phase:
                    active += 1
                    remaining_sum += edges_after[phase - 1] / summary["edges_initial"]
            decay.add_row(
                oracle=oracle,
                phase=phase,
                tasks=len(tasks),
                active_tasks=active,
                mean_remaining_fraction=remaining_sum / len(tasks),
            )

    budget = ExperimentRecord(
        experiment="C2",
        description="per-(oracle, k) phases and color budgets of the reduction",
        metadata=dict(metadata),
    )
    groups: Dict[tuple, List[Mapping[str, Any]]] = {}
    for summary in done:
        if "color_bound" in summary:
            groups.setdefault((summary["oracle"], summary["k"]), []).append(summary)
    for oracle, k in sorted(groups):
        tasks = groups[(oracle, k)]
        num_phases = [summary["phases"] for summary in tasks]
        total_colors = [summary["total_colors"] for summary in tasks]
        color_bounds = [summary["color_bound"] for summary in tasks]
        within = sum(
            1 for colors, bound in zip(total_colors, color_bounds) if colors <= bound
        )
        budget.add_row(
            oracle=oracle,
            k=k,
            tasks=len(tasks),
            mean_phases=sum(num_phases) / len(tasks),
            max_phases=max(num_phases),
            mean_total_colors=sum(total_colors) / len(tasks),
            max_total_colors=max(total_colors),
            mean_color_bound=sum(color_bounds) / len(tasks),
            within_color_bound_fraction=within / len(tasks),
        )
    return [decay, budget]
