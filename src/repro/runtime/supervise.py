"""Fault-tolerant campaign supervision: the shard coordinator.

:class:`ShardCoordinator` turns a campaign into a supervised fleet of
shard workers.  It enumerates the sha256-stable shards of a
:class:`~repro.runtime.spec.CampaignSpec`, dispatches each to a pluggable
:class:`ShardExecutor`, and watches two liveness signals per shard:

* the executor's **exit code** — ``0`` lands the shard, ``1`` is a run
  that completed with failed rows (landed by default, restarted under
  ``restart_failed_shards``), anything else is a crash;
* the shard's **heartbeat file** — touched by the worker at run start and
  after every stored row; a heartbeat older than ``heartbeat_timeout_s``
  means the worker is wedged (hung task, dead machine), so the
  coordinator kills it and treats the dispatch as a crash.

Crashed shards are re-dispatched with exponential backoff plus seeded
jitter.  Because the store is append-and-flush JSONL, a killed worker
loses at most one row and the re-dispatched run resumes from what
survived — so recovery costs only the lost tail, not the shard.  A shard
that crashes more than ``max_restarts`` times is quarantined as
*poisoned*: its surviving rows are still salvage-merged, but it is never
dispatched again, and the report names it instead of retrying forever.

Landed shards are merged incrementally into the coordinator's output
store via :func:`~repro.runtime.store.merge_shards` — the same fusion the
differential harness proves digest-identical to a monolithic serial run.
When every shard lands, the aggregate digest is computed and (optionally)
checked against an ``expected_digest`` from a serial reference run.

Executors are deliberately thin — ``launch`` one shard, ``poll`` its exit
code, ``kill`` it — so the v1 :class:`LocalProcessExecutor` (supervised
``repro campaign run --shard i/n`` subprocesses) can later be joined by
SSH or queue-submission executors without touching the coordinator; see
ROADMAP item 2 for what those still need.
"""

from __future__ import annotations

import contextlib
import os
import random
import subprocess
import sys
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.exceptions import CampaignError, SupervisionError
from repro.runtime.aggregate import campaign_digest, campaign_records
from repro.runtime.faults import FaultPlan, require_chaos
from repro.runtime.scheduler import DEFAULT_RETRY_POLICY, RetryPolicy, run_campaign
from repro.runtime.spec import CampaignSpec, check_shard
from repro.runtime.store import merge_shards, open_store

# Coordinator metrics: the supervision loop's live view (dispatch churn,
# restart pressure, shard liveness).  The heartbeat-age gauge is updated
# on every poll of a running shard, so a scraper watches staleness
# approach the timeout in real time.
_M_SHARD_DISPATCHES = obs.counter(
    "repro_shard_dispatches_total",
    "Shard worker launches (first dispatches and restarts).",
    labels=("campaign",),
)
_M_SHARD_RESTARTS = obs.counter(
    "repro_shard_restarts_total",
    "Crash-triggered shard re-dispatches scheduled.",
    labels=("campaign",),
)
_M_SHARD_STALE_KILLS = obs.counter(
    "repro_shard_stale_kills_total",
    "Shard workers killed by the coordinator for a stale heartbeat.",
    labels=("campaign",),
)
_M_SHARD_QUARANTINED = obs.counter(
    "repro_shard_quarantined_total",
    "Shards quarantined as poisoned after exhausting their restart budget.",
    labels=("campaign",),
)
_M_HEARTBEAT_AGE = obs.gauge(
    "repro_shard_heartbeat_age_seconds",
    "Seconds since each running shard last showed life (beat or dispatch).",
    labels=("campaign", "shard"),
)

#: Heartbeat filename inside each shard directory.
HEARTBEAT_FILENAME = "heartbeat"

#: Worker stdout/stderr capture inside each shard directory.
WORKER_LOG_FILENAME = "worker.log"


@dataclass(frozen=True)
class ShardLaunch:
    """Everything an executor needs to start one shard worker.

    ``spec_path`` points at the coordinator's own ``spec.json`` (the
    output store doubles as the spec of record), ``shard_dir`` is the
    shard's private campaign directory, and ``heartbeat_path`` is the
    file the worker must touch per stored row.  ``chaos`` carries the
    already-salted :class:`~repro.runtime.faults.FaultPlan` for this
    dispatch, or ``None`` outside the chaos harness.
    """

    spec_path: Path
    shard_dir: Path
    index: int
    n_shards: int
    heartbeat_path: Path
    task_timeout_s: Optional[float] = None
    retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY
    durability: Optional[str] = None
    chaos: Optional[FaultPlan] = None
    #: Ask the worker to write a ``trace.jsonl`` sidecar into its shard
    #: directory (``--trace`` on the subprocess command line).
    trace: bool = False


class ShardHandle(ABC):
    """A running (or finished) shard dispatch, as seen by the coordinator."""

    @abstractmethod
    def poll(self) -> Optional[int]:
        """Exit code once the worker finished, else ``None`` (still running)."""

    @abstractmethod
    def kill(self) -> None:
        """Terminate the worker immediately (idempotent; no-op once dead)."""


class ShardExecutor(ABC):
    """Where shard workers run.

    v1 ships :class:`LocalProcessExecutor` (supervised local
    subprocesses) and :class:`InlineExecutor` (in-process, for tests).
    The interface is transport-agnostic on purpose: an SSH executor would
    ``launch`` a remote ``repro campaign run --shard i/n`` against a
    shared filesystem and ``poll``/``kill`` over the connection, without
    any coordinator changes.
    """

    @abstractmethod
    def launch(self, launch: ShardLaunch) -> ShardHandle:
        """Start one shard worker and return its handle."""


class _ProcessHandle(ShardHandle):
    """Handle over a local subprocess plus its log file."""

    def __init__(self, process: subprocess.Popen, log_handle) -> None:
        self._process = process
        self._log_handle = log_handle

    @property
    def pid(self) -> int:
        return self._process.pid

    def poll(self) -> Optional[int]:
        code = self._process.poll()
        if code is not None and self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None
        return code

    def kill(self) -> None:
        if self._process.poll() is None:
            self._process.kill()
            self._process.wait()
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None


class LocalProcessExecutor(ShardExecutor):
    """Run each shard as a supervised local ``repro campaign run`` subprocess.

    The worker is the *serial* executor (``--workers 0``) so an injected
    kill or a watchdog timeout has exactly one victim, and the subprocess
    inherits this interpreter plus a ``PYTHONPATH`` that resolves the
    installed ``repro`` package — no installation step needed.  Worker
    stdout/stderr land in ``<shard_dir>/worker.log`` for post-mortems.
    """

    def __init__(self, python: Optional[str] = None) -> None:
        self.python = python or sys.executable

    def command(self, launch: ShardLaunch) -> List[str]:
        """The subprocess argv for one shard dispatch (exposed for tests)."""
        argv = [
            self.python,
            "-m",
            "repro",
            "campaign",
            "run",
            "--spec",
            str(launch.spec_path),
            "--out",
            str(launch.shard_dir),
            "--workers",
            "0",
            "--shard",
            f"{launch.index}/{launch.n_shards}",
            "--heartbeat",
            str(launch.heartbeat_path),
        ]
        if launch.task_timeout_s is not None:
            argv += ["--task-timeout", f"{launch.task_timeout_s:g}"]
        if launch.retry is not None:
            argv += [
                "--max-retries",
                str(launch.retry.max_attempts),
                "--retry-base-delay",
                f"{launch.retry.base_delay_s:g}",
            ]
        else:
            # retry=None means *no* policy; the CLI default is 3, so the
            # disable must be passed explicitly.
            argv += ["--max-retries", "0"]
        if launch.durability is not None:
            argv += ["--durability", launch.durability]
        if launch.trace:
            argv += ["--trace"]
        if launch.chaos is not None:
            argv += launch.chaos.cli_args()
        return argv

    def launch(self, launch: ShardLaunch) -> ShardHandle:
        import repro

        launch.shard_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        if launch.chaos is not None:
            # The coordinator already passed require_chaos(); propagate the
            # gate so the child accepts its --chaos flags.
            env["REPRO_CHAOS"] = "1"
        log_handle = open(launch.shard_dir / WORKER_LOG_FILENAME, "a", encoding="utf-8")
        process = subprocess.Popen(
            self.command(launch),
            stdout=log_handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        return _ProcessHandle(process, log_handle)


class _InlineHandle(ShardHandle):
    def __init__(self, code: int) -> None:
        self._code = code

    def poll(self) -> Optional[int]:
        return self._code

    def kill(self) -> None:  # pragma: no cover - nothing to kill
        pass


class InlineExecutor(ShardExecutor):
    """Run shards synchronously in this process (tests and debugging).

    ``launch`` blocks until the shard finishes, then returns a handle
    whose ``poll`` immediately reports the exit code the CLI would have
    used.  Never combine with a chaos plan that injects *kills* — an
    inline ``os._exit`` takes the coordinator down with the shard.
    """

    def launch(self, launch: ShardLaunch) -> ShardHandle:
        spec = CampaignSpec.from_json(launch.spec_path.read_text(encoding="utf-8"))
        try:
            stats = run_campaign(
                spec,
                launch.shard_dir,
                workers=0,
                shard=(launch.index, launch.n_shards),
                retry=launch.retry,
                task_timeout_s=launch.task_timeout_s,
                heartbeat=launch.heartbeat_path,
                chaos=launch.chaos,
                durability=launch.durability,
                trace=launch.trace,
            )
        except CampaignError:
            return _InlineHandle(2)
        return _InlineHandle(0 if stats.failed == 0 and stats.exhausted == 0 else 1)


@dataclass
class ShardReport:
    """What happened to one shard across all of its dispatches."""

    index: int
    #: ``"landed"`` (exit 0), ``"landed-with-failures"`` (exit 1, kept),
    #: or ``"poisoned"`` (crashed past the restart budget, quarantined).
    status: str = "pending"
    #: Total dispatches (1 + restarts).
    dispatches: int = 0
    #: Crash-triggered re-dispatches actually performed.
    restarts: int = 0
    #: Dispatches killed by the coordinator for a stale heartbeat.
    stale_kills: int = 0
    #: Exit code of every finished dispatch, in order (stale-heartbeat
    #: kills are recorded as ``None`` — the worker never exited on its own).
    exit_codes: List[Optional[int]] = field(default_factory=list)


@dataclass
class SupervisionReport:
    """The outcome of one :meth:`ShardCoordinator.run`."""

    campaign: str
    n_shards: int
    shards: List[ShardReport]
    #: Aggregate digest of the merged output store.
    digest: str
    #: Latest-row status counts of the merged store.
    status_counts: Dict[str, int]
    wall_time_s: float

    @property
    def restarts(self) -> int:
        return sum(shard.restarts for shard in self.shards)

    @property
    def poisoned(self) -> List[int]:
        """Indices of quarantined shards (empty on a fully landed run)."""
        return [shard.index for shard in self.shards if shard.status == "poisoned"]

    @property
    def ok(self) -> bool:
        """True when every shard landed and no merged row is unfinished."""
        return not self.poisoned and all(
            status == "done" for status in self.status_counts
        ) and bool(self.status_counts)


class ShardCoordinator:
    """Supervise a sharded campaign to completion (or quarantine).

    Parameters
    ----------
    spec, out_dir:
        The campaign and its merged output directory; ``out_dir/spec.json``
        is written up front and doubles as the ``--spec`` every shard
        worker reads.
    executor:
        Where shards run (default: :class:`LocalProcessExecutor`).
    n_shards:
        How many sha256-stable shards to split the task grid into.
    heartbeat_timeout_s:
        A running shard whose heartbeat file is older than this (counting
        from dispatch when no beat arrived yet) is killed and re-dispatched.
        Must comfortably exceed the slowest single task.
    max_restarts:
        Crash re-dispatches allowed per shard before it is poisoned.
    base_backoff_s, backoff, jitter, rng_seed:
        Re-dispatch ``r`` waits ``base_backoff_s * backoff**(r-1)``
        stretched by up to ``jitter`` relative seeded noise, so a crashing
        fleet does not stampede.
    task_timeout_s, retry, durability:
        Forwarded to every shard worker (see :func:`run_campaign`).
    chaos:
        Fault-injection plan; each dispatch of shard ``i`` runs under
        ``chaos.with_salt(dispatch_number)`` so restarts draw fresh fault
        decisions instead of deterministically replaying the crash.
    restart_failed_shards:
        When True, a shard exiting 1 (completed, but some rows failed) is
        restarted like a crash instead of landed — the chaos harness uses
        this so injected failures are retried until they converge.
    max_wall_clock_s:
        Hard bound on the whole supervision run; exceeding it kills every
        live worker and raises :class:`SupervisionError` (this is what
        keeps a pathological chaos run from hanging the test suite).
    expected_digest:
        When set, a fully landed run whose merged digest differs raises
        :class:`SupervisionError` — the serial-reference equality check.
    trace:
        Write trace sidecars: the coordinator's own dispatch/kill events
        land in ``out_dir/trace.jsonl`` and every shard worker writes
        ``trace.jsonl`` into its shard directory (``--trace`` is added
        to the worker command line).  Observational only — the merged
        digest is unchanged, which the chaos-with-tracing tests assert.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir,
        executor: Optional[ShardExecutor] = None,
        n_shards: int = 2,
        heartbeat_timeout_s: float = 30.0,
        max_restarts: int = 3,
        base_backoff_s: float = 0.05,
        backoff: float = 2.0,
        jitter: float = 0.25,
        rng_seed: int = 0,
        poll_interval_s: float = 0.02,
        task_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
        durability: Optional[str] = None,
        chaos: Optional[FaultPlan] = None,
        restart_failed_shards: bool = False,
        max_wall_clock_s: Optional[float] = None,
        expected_digest: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        check_shard(0, n_shards)
        if heartbeat_timeout_s <= 0:
            raise CampaignError(
                f"heartbeat_timeout_s must be positive, got {heartbeat_timeout_s!r}"
            )
        if not isinstance(max_restarts, int) or max_restarts < 0:
            raise CampaignError(
                f"max_restarts must be a non-negative int, got {max_restarts!r}"
            )
        if base_backoff_s < 0 or backoff < 1 or not 0 <= jitter <= 1:
            raise CampaignError(
                f"invalid backoff shape: base_backoff_s={base_backoff_s!r} "
                f"backoff={backoff!r} jitter={jitter!r}"
            )
        if poll_interval_s <= 0:
            raise CampaignError(
                f"poll_interval_s must be positive, got {poll_interval_s!r}"
            )
        if max_wall_clock_s is not None and max_wall_clock_s <= 0:
            raise CampaignError(
                f"max_wall_clock_s must be positive, got {max_wall_clock_s!r}"
            )
        if chaos is not None:
            require_chaos()
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.executor = executor if executor is not None else LocalProcessExecutor()
        self.n_shards = n_shards
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_restarts = max_restarts
        self.base_backoff_s = base_backoff_s
        self.backoff = backoff
        self.jitter = jitter
        self.poll_interval_s = poll_interval_s
        self.task_timeout_s = task_timeout_s
        self.retry = retry
        self.durability = durability
        self.chaos = chaos
        self.restart_failed_shards = restart_failed_shards
        self.max_wall_clock_s = max_wall_clock_s
        self.expected_digest = expected_digest
        self.trace = trace
        self._rng = random.Random(rng_seed)

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    def shard_dir(self, index: int) -> Path:
        return self.out_dir / "shards" / f"shard-{index}"

    def _launch_spec(self, index: int, dispatches: int) -> ShardLaunch:
        chaos = self.chaos.with_salt(dispatches) if self.chaos is not None else None
        return ShardLaunch(
            spec_path=self.out_dir / "spec.json",
            shard_dir=self.shard_dir(index),
            index=index,
            n_shards=self.n_shards,
            heartbeat_path=self.shard_dir(index) / HEARTBEAT_FILENAME,
            task_timeout_s=self.task_timeout_s,
            retry=self.retry,
            durability=self.durability,
            chaos=chaos,
            trace=self.trace,
        )

    def _backoff_delay(self, restart_number: int) -> float:
        """Pause before re-dispatch ``restart_number`` (1-based), jittered."""
        base = self.base_backoff_s * self.backoff ** (restart_number - 1)
        return base * (1.0 + self.jitter * self._rng.random())

    def _heartbeat_age(self, index: int, dispatched_at: float) -> float:
        """Seconds since the shard last showed life (beat or dispatch)."""
        heartbeat = self.shard_dir(index) / HEARTBEAT_FILENAME
        last = dispatched_at
        try:
            last = max(last, heartbeat.stat().st_mtime)
        except OSError:
            pass
        return time.time() - last

    # ------------------------------------------------------------------
    # supervision loop
    # ------------------------------------------------------------------
    def run(self) -> SupervisionReport:
        """Supervise every shard to a terminal state and merge the output.

        Returns the :class:`SupervisionReport`; raises
        :class:`SupervisionError` only on coordinator-level failures
        (wall-clock exhaustion, digest mismatch) — poisoned shards are
        *reported*, not raised, so callers can salvage partial results.
        """
        started = time.monotonic()
        out_store = open_store(
            self.out_dir,
            durability=self.durability if self.durability is not None else self.spec.durability,
            default_backend=self.spec.store,
        )
        out_store.initialize(self.spec)

        campaign = self.spec.name
        dispatch_counter = _M_SHARD_DISPATCHES.labels(campaign)
        restart_counter = _M_SHARD_RESTARTS.labels(campaign)
        stale_counter = _M_SHARD_STALE_KILLS.labels(campaign)

        reports = [ShardReport(index=i) for i in range(self.n_shards)]
        handles: Dict[int, ShardHandle] = {}
        dispatched_at: Dict[int, float] = {}
        next_dispatch: Dict[int, float] = {i: 0.0 for i in range(self.n_shards)}

        def terminal(report: ShardReport) -> bool:
            return report.status in ("landed", "landed-with-failures", "poisoned")

        def land(report: ShardReport, status: str) -> None:
            report.status = status
            obs.event("shard_landed", shard=report.index, status=status)
            merge_shards(
                self.out_dir, [self.shard_dir(report.index)], durability=self.durability
            )

        def crash(report: ShardReport) -> None:
            if report.restarts >= self.max_restarts:
                # Quarantine, but salvage whatever rows the shard stored
                # across its dispatches — they are valid, resumable work.
                report.status = "poisoned"
                _M_SHARD_QUARANTINED.labels(campaign).inc()
                obs.event("shard_quarantined", shard=report.index)
                if (self.shard_dir(report.index) / "spec.json").exists():
                    merge_shards(
                        self.out_dir,
                        [self.shard_dir(report.index)],
                        durability=self.durability,
                    )
                return
            report.restarts += 1
            restart_counter.inc()
            next_dispatch[report.index] = time.monotonic() + self._backoff_delay(
                report.restarts
            )

        with contextlib.ExitStack() as scope:
            if self.trace:
                scope.enter_context(obs.tracing(self.out_dir / obs.TRACE_FILENAME))
            supervise_span = scope.enter_context(
                obs.span("supervise", campaign=campaign, n_shards=self.n_shards)
            )
            while not all(terminal(r) for r in reports):
                now = time.monotonic()
                if self.max_wall_clock_s is not None and now - started > self.max_wall_clock_s:
                    for handle in handles.values():
                        handle.kill()
                    raise SupervisionError(
                        f"supervision of campaign {self.spec.name!r} exceeded its "
                        f"{self.max_wall_clock_s:g}s wall-clock bound with "
                        f"{sum(not terminal(r) for r in reports)} shard(s) unfinished"
                    )
                progressed = False
                for report in reports:
                    index = report.index
                    if terminal(report):
                        continue
                    if index not in handles:
                        if now >= next_dispatch[index]:
                            handles[index] = self.executor.launch(
                                self._launch_spec(index, report.dispatches)
                            )
                            report.dispatches += 1
                            dispatch_counter.inc()
                            obs.event(
                                "shard_dispatch",
                                shard=index,
                                dispatch=report.dispatches,
                            )
                            dispatched_at[index] = time.time()
                            progressed = True
                        continue
                    code = handles[index].poll()
                    if code is not None:
                        del handles[index]
                        report.exit_codes.append(code)
                        progressed = True
                        obs.event("shard_exit", shard=index, code=code)
                        if code == 0:
                            land(report, "landed")
                        elif code == 1 and not self.restart_failed_shards:
                            land(report, "landed-with-failures")
                        else:
                            crash(report)
                    else:
                        age = self._heartbeat_age(index, dispatched_at[index])
                        _M_HEARTBEAT_AGE.labels(campaign, str(index)).set(age)
                        if age > self.heartbeat_timeout_s:
                            handles[index].kill()
                            del handles[index]
                            report.exit_codes.append(None)
                            report.stale_kills += 1
                            stale_counter.inc()
                            obs.event("shard_stale_kill", shard=index, age_s=age)
                            progressed = True
                            crash(report)
                if not progressed:
                    time.sleep(self.poll_interval_s)

            records = campaign_records(self.spec, out_store.rows())
            digest = campaign_digest(records)
            supervise_span.set(digest=digest[:12])
        # The merged directory gets its own registry snapshot, so
        # `repro campaign metrics <out_dir>` covers supervised runs too.
        with contextlib.suppress(OSError):
            obs.get_registry().write_snapshot(self.out_dir / obs.METRICS_FILENAME)
        report = SupervisionReport(
            campaign=self.spec.name,
            n_shards=self.n_shards,
            shards=reports,
            digest=digest,
            status_counts=out_store.status_counts(),
            wall_time_s=time.monotonic() - started,
        )
        if (
            self.expected_digest is not None
            and not report.poisoned
            and digest != self.expected_digest
        ):
            raise SupervisionError(
                f"supervised campaign {self.spec.name!r} landed every shard but its "
                f"digest {digest[:12]} differs from the serial reference "
                f"{self.expected_digest[:12]} — merged store is not equivalent"
            )
        return report
