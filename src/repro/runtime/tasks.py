"""Task construction and execution for experiment campaigns.

A task payload (produced by :meth:`repro.runtime.spec.CampaignSpec.task_payloads`)
is a plain dict, so it pickles cheaply across the scheduler's worker pool.
:func:`execute_task` is a *pure function* of that payload — the instance is
generated from the payload's derived seed, the oracle comes from the
registry, and the reduction itself is deterministic — so the result row is
byte-identical no matter which process runs it.  Only the wall-time fields
(and the ``instance_cache_hit`` flag, which depends on execution order)
vary between runs; the aggregation layer excludes them from its digest.

Instance generation is memoized per process by :class:`InstanceCache`:
the cache key is the exact generator call signature — family, size, the
coordinates the family's generator actually consumes, and the derived
instance seed — so grid points that differ only in oracle or λ (which
share an instance seed, see :func:`instance_key`) build their hypergraph
once per worker and reuse it for every oracle swept over it.
"""

from __future__ import annotations

import contextlib
import hashlib
import signal
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.exceptions import CampaignError, ReproError, TaskTimeout
from repro.hypergraph import (
    Hypergraph,
    almost_uniform_hypergraph,
    colorable_almost_uniform_hypergraph,
    random_interval_hypergraph,
    uniform_random_hypergraph,
)
from repro.hypergraph.io import hypergraph_to_json, reduction_result_to_dict

#: Hypergraph families a campaign can sweep over.  Each maps the spec's
#: ``(n, m, k, epsilon, seed)`` coordinates onto one generator from
#: :mod:`repro.hypergraph.generators`.
FAMILIES = ("uniform", "almost-uniform", "colorable", "interval")

#: Prefix selecting the λ-capped variant of a registry oracle (the
#: worst-case multi-phase regime of ``repro bench reduction``).
CAPPED_PREFIX = "capped:"

#: Families whose generator consumes the palette size ``k`` (as edge size
#: or uniformity parameter) / the almost-uniformity slack ``epsilon``.
#: Coordinates a generator ignores are excluded from the instance key, so
#: e.g. interval tasks with different ``k`` share one instance.
_K_FAMILIES = ("uniform", "almost-uniform", "colorable")
_EPSILON_FAMILIES = ("almost-uniform", "colorable")


def instance_key(
    family: str, n: int, m: int, k: int, epsilon: float, replicate: int
) -> str:
    """Stable identifier of a task's *instance* (the seed-derivation key).

    Unlike the task key, the instance key deliberately excludes the oracle
    and λ (they never influence instance generation) and the per-family
    coordinates the generator ignores.  Tasks that differ only in those
    axes therefore derive the *same* instance seed — every oracle of a
    campaign is evaluated on identical instances, and the per-worker
    :class:`InstanceCache` can serve repeated grid points from memory.
    """
    parts = [f"family={family}", f"n={n}", f"m={m}"]
    if family in _K_FAMILIES or family not in FAMILIES:
        parts.append(f"k={k}")
    if family in _EPSILON_FAMILIES or family not in FAMILIES:
        parts.append(f"eps={epsilon:g}")
    parts.append(f"rep={replicate}")
    return " ".join(parts)


def instance_cache_key(
    family: str, n: int, m: int, k: int, epsilon: float, seed: int
) -> Tuple:
    """The memoization key of :class:`InstanceCache`: the generator call signature.

    Coordinates the family's generator ignores are normalized to ``None``
    so they cannot split cache entries that would build identical
    hypergraphs (matching the exclusions of :func:`instance_key`).
    """
    return (
        family,
        n,
        m,
        k if family in _K_FAMILIES or family not in FAMILIES else None,
        epsilon if family in _EPSILON_FAMILIES or family not in FAMILIES else None,
        seed,
    )


class InstanceCache:
    """Per-process memo of generated hypergraph instances, with hit/miss stats.

    Reductions never mutate their input (``run`` copies the hypergraph
    first), so one cached instance can safely serve every task that shares
    its cache key.  The cache is bounded (FIFO eviction) and process-local:
    pool workers each hold their own copy, and a persistent
    :class:`~repro.runtime.scheduler.WorkerPool` keeps those worker caches
    warm across ``run_campaign`` calls.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise CampaignError(f"instance cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, Hypergraph]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self.hits = 0
        self.misses = 0
        self._entries.clear()

    def get_or_build(
        self, family: str, n: int, m: int, k: int, epsilon: float, seed: int
    ) -> Tuple[Hypergraph, bool]:
        """Return ``(instance, cache_hit)``, building and caching on a miss."""
        key = instance_cache_key(family, n, m, k, epsilon, seed)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached, True
        self.misses += 1
        with obs.span("instance_build", family=family, n=n, m=m):
            hypergraph = build_instance(
                family=family, n=n, m=m, k=k, epsilon=epsilon, seed=seed
            )
        self._entries[key] = hypergraph
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return hypergraph, False


#: The process-level cache :func:`execute_task` builds instances through.
INSTANCE_CACHE = InstanceCache()


def validate_oracle_name(oracle: str) -> None:
    """Raise :class:`CampaignError` unless ``oracle`` resolves against the registry."""
    from repro.maxis import available_approximators

    if not isinstance(oracle, str) or not oracle:
        raise CampaignError(f"oracle name must be a non-empty string, got {oracle!r}")
    base = oracle[len(CAPPED_PREFIX):] if oracle.startswith(CAPPED_PREFIX) else oracle
    known = available_approximators()
    if base not in known:
        raise CampaignError(
            f"unknown oracle {oracle!r}; known registry names: {sorted(known)} "
            f"(prefix with {CAPPED_PREFIX!r} for the λ-capped variant)"
        )


def resolve_oracle(oracle: str, lam: float):
    """Resolve an oracle spec string to an approximator.

    ``capped:<name>`` wraps the registry oracle ``<name>`` with
    :func:`repro.bench.capped_oracle` at the task's λ — an oracle that only
    achieves its worst-case guarantee, which is what makes the paper's
    ``ρ = λ·ln m + 1`` multi-phase regime observable.
    """
    from repro.bench import capped_oracle
    from repro.maxis import get_approximator

    if oracle.startswith(CAPPED_PREFIX):
        return capped_oracle(oracle[len(CAPPED_PREFIX):], lam=lam)
    return get_approximator(oracle)


def build_instance(
    family: str, n: int, m: int, k: int, epsilon: float, seed: int
) -> Hypergraph:
    """Generate the task's hypergraph instance from its grid coordinates."""
    if family == "uniform":
        return uniform_random_hypergraph(n=n, m=m, edge_size=k, seed=seed)
    if family == "almost-uniform":
        return almost_uniform_hypergraph(n=n, m=m, k=k, epsilon=epsilon, seed=seed)
    if family == "colorable":
        hypergraph, _planted = colorable_almost_uniform_hypergraph(
            n=n, m=m, k=k, epsilon=epsilon, seed=seed
        )
        return hypergraph
    if family == "interval":
        return random_interval_hypergraph(n_points=n, n_intervals=m, seed=seed)
    raise CampaignError(f"unknown hypergraph family {family!r}; known: {sorted(FAMILIES)}")


def instance_digest(hypergraph: Hypergraph) -> str:
    """Content digest of an instance (stored per task; catches seed drift)."""
    return hashlib.sha256(hypergraph_to_json(hypergraph).encode("utf-8")).hexdigest()


@contextlib.contextmanager
def watchdog(timeout_s: Optional[float]):
    """Arm a per-task watchdog that raises :class:`TaskTimeout` after ``timeout_s``.

    Implemented with ``SIGALRM`` + ``setitimer``, so it interrupts pure
    Python and C-level sleeps alike — which is what turns a wedged oracle
    (or an injected chaos hang) into a recoverable ``timeout`` row
    instead of a stalled worker.  Armed only when a deadline is given,
    the platform has ``SIGALRM``, and we are on the process's main thread
    (worker processes of a ``multiprocessing`` pool qualify; threads
    cannot install signal handlers, so there the watchdog degrades to a
    no-op and the supervisor's heartbeat deadline is the backstop).
    """
    if (
        not timeout_s
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TaskTimeout(f"task exceeded its {timeout_s:g}s watchdog deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one campaign task and return its result row (never raises).

    The row always carries ``task_key``, ``status`` and the (digest-
    excluded, like timing) ``attempt`` counter; on success it adds the
    instance digest, the serialized :class:`ReductionResult`, the timing
    fields and the (order-dependent, digest-excluded)
    ``instance_cache_hit`` flag, on failure the error type and message.
    Library errors (infeasible grid coordinates, oracle violations, …)
    become ``status="failed"`` rows so one bad grid point cannot take down
    a campaign; a task that outlives the payload's ``task_timeout_s``
    watchdog becomes a terminal ``status="timeout"`` row; everything else
    propagates, because it indicates a bug.

    When the payload carries a ``chaos`` fault plan (see
    :mod:`repro.runtime.faults`), the plan's decision for this
    ``(task_key, attempt)`` fires first: a synthetic failure raises (and
    is recorded) like a library error, a hang blocks until the watchdog
    or the supervisor cuts it short, and a kill terminates the worker
    process outright — no row is written at all, which is precisely the
    failure the shard coordinator's heartbeats exist to detect.
    """
    start = time.perf_counter()
    attempt = payload.get("attempt", 1)
    row: Dict[str, Any] = {
        "task_key": payload["task_key"],
        "family": payload["family"],
        "k": payload["k"],
        "oracle": payload["oracle"],
        "lam": payload["lam"],
        "instance_seed": payload["instance_seed"],
        "attempt": attempt,
    }
    task_span = obs.span("task", task_key=payload["task_key"], attempt=attempt)
    task_span.__enter__()
    try:
        from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS

        with watchdog(payload.get("task_timeout_s")):
            if payload.get("chaos") is not None:
                from repro.runtime.faults import inject_fault

                inject_fault(payload["chaos"], payload["task_key"], attempt)
            hypergraph, cache_hit = INSTANCE_CACHE.get_or_build(
                family=payload["family"],
                n=payload["n"],
                m=payload["m"],
                k=payload["k"],
                epsilon=payload["epsilon"],
                seed=payload["instance_seed"],
            )
            oracle = resolve_oracle(payload["oracle"], payload["lam"])
            reduction = ConflictFreeMulticoloringViaMaxIS(
                k=payload["k"], approximator=oracle, lam=payload["lam"]
            )
            result = reduction.run(hypergraph)
        row.update(
            {
                "status": "done",
                "n": hypergraph.num_vertices(),
                "m": hypergraph.num_edges(),
                "peak_triples": payload["k"] * hypergraph.total_edge_size(),
                "instance_digest": instance_digest(hypergraph),
                "result": reduction_result_to_dict(result),
                "wall_time_s": time.perf_counter() - start,
                "happy_check_wall_time_s": reduction.last_happy_check_wall_time_s,
                "instance_cache_hit": cache_hit,
            }
        )
    except TaskTimeout as exc:
        row.update(
            {
                "status": "timeout",
                "error_type": type(exc).__name__,
                "error": str(exc),
                "task_timeout_s": payload.get("task_timeout_s"),
                "wall_time_s": time.perf_counter() - start,
            }
        )
    except ReproError as exc:
        row.update(
            {
                "status": "failed",
                "error_type": type(exc).__name__,
                "error": str(exc),
                "wall_time_s": time.perf_counter() - start,
            }
        )
    finally:
        # Explicit enter/exit (not `with`): an injected chaos kill exits
        # the process inside the body, and the span must not swallow or
        # reorder the except clauses above that build the result row.
        task_span.set(status=row.get("status", "crashed"))
        task_span.__exit__(None, None, None)
    return row
