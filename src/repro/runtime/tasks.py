"""Task construction and execution for experiment campaigns.

A task payload (produced by :meth:`repro.runtime.spec.CampaignSpec.task_payloads`)
is a plain dict, so it pickles cheaply across the scheduler's worker pool.
:func:`execute_task` is a *pure function* of that payload — the instance is
generated from the payload's derived seed, the oracle comes from the
registry, and the reduction itself is deterministic — so the result row is
byte-identical no matter which process runs it.  Only the wall-time fields
vary between runs; the aggregation layer excludes them from its digest.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict

from repro.exceptions import CampaignError, ReproError
from repro.hypergraph import (
    Hypergraph,
    almost_uniform_hypergraph,
    colorable_almost_uniform_hypergraph,
    random_interval_hypergraph,
    uniform_random_hypergraph,
)
from repro.hypergraph.io import hypergraph_to_json, reduction_result_to_dict

#: Hypergraph families a campaign can sweep over.  Each maps the spec's
#: ``(n, m, k, epsilon, seed)`` coordinates onto one generator from
#: :mod:`repro.hypergraph.generators`.
FAMILIES = ("uniform", "almost-uniform", "colorable", "interval")

#: Prefix selecting the λ-capped variant of a registry oracle (the
#: worst-case multi-phase regime of ``repro bench reduction``).
CAPPED_PREFIX = "capped:"


def validate_oracle_name(oracle: str) -> None:
    """Raise :class:`CampaignError` unless ``oracle`` resolves against the registry."""
    from repro.maxis import available_approximators

    if not isinstance(oracle, str) or not oracle:
        raise CampaignError(f"oracle name must be a non-empty string, got {oracle!r}")
    base = oracle[len(CAPPED_PREFIX):] if oracle.startswith(CAPPED_PREFIX) else oracle
    known = available_approximators()
    if base not in known:
        raise CampaignError(
            f"unknown oracle {oracle!r}; known registry names: {sorted(known)} "
            f"(prefix with {CAPPED_PREFIX!r} for the λ-capped variant)"
        )


def resolve_oracle(oracle: str, lam: float):
    """Resolve an oracle spec string to an approximator.

    ``capped:<name>`` wraps the registry oracle ``<name>`` with
    :func:`repro.bench.capped_oracle` at the task's λ — an oracle that only
    achieves its worst-case guarantee, which is what makes the paper's
    ``ρ = λ·ln m + 1`` multi-phase regime observable.
    """
    from repro.bench import capped_oracle
    from repro.maxis import get_approximator

    if oracle.startswith(CAPPED_PREFIX):
        return capped_oracle(oracle[len(CAPPED_PREFIX):], lam=lam)
    return get_approximator(oracle)


def build_instance(
    family: str, n: int, m: int, k: int, epsilon: float, seed: int
) -> Hypergraph:
    """Generate the task's hypergraph instance from its grid coordinates."""
    if family == "uniform":
        return uniform_random_hypergraph(n=n, m=m, edge_size=k, seed=seed)
    if family == "almost-uniform":
        return almost_uniform_hypergraph(n=n, m=m, k=k, epsilon=epsilon, seed=seed)
    if family == "colorable":
        hypergraph, _planted = colorable_almost_uniform_hypergraph(
            n=n, m=m, k=k, epsilon=epsilon, seed=seed
        )
        return hypergraph
    if family == "interval":
        return random_interval_hypergraph(n_points=n, n_intervals=m, seed=seed)
    raise CampaignError(f"unknown hypergraph family {family!r}; known: {sorted(FAMILIES)}")


def instance_digest(hypergraph: Hypergraph) -> str:
    """Content digest of an instance (stored per task; catches seed drift)."""
    return hashlib.sha256(hypergraph_to_json(hypergraph).encode("utf-8")).hexdigest()


def execute_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one campaign task and return its result row (never raises).

    The row always carries ``task_key`` and ``status``; on success it adds
    the instance digest, the serialized :class:`ReductionResult` and the
    timing fields, on failure the error type and message.  Library errors
    (infeasible grid coordinates, oracle violations, …) become
    ``status="failed"`` rows so one bad grid point cannot take down a
    campaign; everything else propagates, because it indicates a bug.
    """
    start = time.perf_counter()
    row: Dict[str, Any] = {
        "task_key": payload["task_key"],
        "family": payload["family"],
        "k": payload["k"],
        "oracle": payload["oracle"],
        "lam": payload["lam"],
        "instance_seed": payload["instance_seed"],
    }
    try:
        from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS

        hypergraph = build_instance(
            family=payload["family"],
            n=payload["n"],
            m=payload["m"],
            k=payload["k"],
            epsilon=payload["epsilon"],
            seed=payload["instance_seed"],
        )
        oracle = resolve_oracle(payload["oracle"], payload["lam"])
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=payload["k"], approximator=oracle, lam=payload["lam"]
        )
        result = reduction.run(hypergraph)
        row.update(
            {
                "status": "done",
                "n": hypergraph.num_vertices(),
                "m": hypergraph.num_edges(),
                "peak_triples": payload["k"] * hypergraph.total_edge_size(),
                "instance_digest": instance_digest(hypergraph),
                "result": reduction_result_to_dict(result),
                "wall_time_s": time.perf_counter() - start,
                "happy_check_wall_time_s": reduction.last_happy_check_wall_time_s,
            }
        )
    except ReproError as exc:
        row.update(
            {
                "status": "failed",
                "error_type": type(exc).__name__,
                "error": str(exc),
                "wall_time_s": time.perf_counter() - start,
            }
        )
    return row
