"""SLOCAL model simulator: engine, restricted views, persistent state, algorithms."""

from repro.slocal.engine import SLOCALAlgorithm, SLOCALEngine, SLOCALResult
from repro.slocal.state import NodeState, StateMap
from repro.slocal.view import LocalView
from repro.slocal.orderings import (
    adversarial_orders,
    bfs_order,
    degree_order,
    random_order,
    sorted_order,
    validate_order,
)
from repro.slocal.algorithms import (
    SLOCALDistanceColoring,
    SLOCALGreedyColoring,
    SLOCALMIS,
    SLOCALRuling,
    slocal_distance_coloring,
    slocal_greedy_coloring,
    slocal_mis,
    slocal_ruling_set,
)
from repro.slocal.hypergraph_algorithms import (
    slocal_primal_conflict_free_coloring,
    slocal_unique_witness_coloring,
)

__all__ = [
    "SLOCALAlgorithm",
    "SLOCALEngine",
    "SLOCALResult",
    "NodeState",
    "StateMap",
    "LocalView",
    "adversarial_orders",
    "bfs_order",
    "degree_order",
    "random_order",
    "sorted_order",
    "validate_order",
    "SLOCALDistanceColoring",
    "SLOCALGreedyColoring",
    "SLOCALMIS",
    "SLOCALRuling",
    "slocal_distance_coloring",
    "slocal_greedy_coloring",
    "slocal_mis",
    "slocal_ruling_set",
    "slocal_primal_conflict_free_coloring",
    "slocal_unique_witness_coloring",
]
