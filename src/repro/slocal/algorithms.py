"""Concrete SLOCAL algorithms from the paper's introduction and related work.

* :class:`SLOCALMIS` — the locality-1 maximal-independent-set algorithm the
  paper describes verbatim: iterate through the nodes in an arbitrary order
  and join the set if no already-processed neighbor has joined.
* :class:`SLOCALGreedyColoring` — the locality-1 greedy (Δ+1)-coloring.
* :class:`SLOCALDistanceColoring` — greedy coloring of the distance-r power
  graph with locality r (used by the network-decomposition substrate).
* :func:`slocal_mis`, :func:`slocal_greedy_coloring` — convenience wrappers
  returning plain Python structures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Set

from repro.graphs.graph import Graph
from repro.slocal.engine import SLOCALAlgorithm, SLOCALEngine
from repro.slocal.state import NodeState
from repro.slocal.view import LocalView

Vertex = Hashable


class SLOCALMIS(SLOCALAlgorithm):
    """Maximal independent set with locality 1 (the paper's introductory example).

    Output per node: ``True`` if the node joins the independent set.
    """

    locality = 1
    name = "slocal-mis"

    def process(self, view: LocalView, state: NodeState) -> bool:
        for u in view.neighbors(view.center):
            if view.is_processed(u) and view.output_of(u) is True:
                return False
        return True


class SLOCALGreedyColoring(SLOCALAlgorithm):
    """Greedy (Δ+1)-vertex-coloring with locality 1.

    Output per node: the smallest color (a non-negative integer) not used
    by an already-processed neighbor.
    """

    locality = 1
    name = "slocal-greedy-coloring"

    def process(self, view: LocalView, state: NodeState) -> int:
        used: Set[int] = set()
        for u in view.neighbors(view.center):
            if view.is_processed(u):
                used.add(view.output_of(u))
        color = 0
        while color in used:
            color += 1
        return color


class SLOCALDistanceColoring(SLOCALAlgorithm):
    """Greedy coloring of the distance-``d`` power graph, with locality ``d``.

    Two nodes within hop distance ``d`` receive different colors.  Used as
    the clustering primitive of the network-decomposition substrate: the
    color classes of a distance-(2r+1) coloring can be grown into clusters
    of radius r that form a proper cluster coloring.
    """

    name = "slocal-distance-coloring"

    def __init__(self, distance: int) -> None:
        if distance < 1:
            raise ValueError(f"distance must be at least 1, got {distance}")
        self.distance = distance
        self.locality = distance

    def process(self, view: LocalView, state: NodeState) -> int:
        used: Set[int] = set()
        for u in view.vertices:
            if u != view.center and view.is_processed(u):
                used.add(view.output_of(u))
        color = 0
        while color in used:
            color += 1
        return color


class SLOCALRuling(SLOCALAlgorithm):
    """Compute a (2, r)-ruling-set-style dominating set with locality ``r``.

    A node joins iff no already-processed node within distance ``r`` has
    joined.  For ``r = 1`` this coincides with :class:`SLOCALMIS`.
    """

    name = "slocal-ruling-set"

    def __init__(self, radius: int = 1) -> None:
        if radius < 1:
            raise ValueError(f"radius must be at least 1, got {radius}")
        self.radius = radius
        self.locality = radius

    def process(self, view: LocalView, state: NodeState) -> bool:
        for u in view.vertices:
            if u != view.center and view.is_processed(u) and view.output_of(u) is True:
                return False
        return True


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def slocal_mis(graph: Graph, order: Optional[Sequence[Vertex]] = None) -> Set[Vertex]:
    """Run :class:`SLOCALMIS` and return the selected vertex set."""
    result = SLOCALEngine(graph).run(SLOCALMIS(), order=order)
    return {v for v, joined in result.outputs.items() if joined}


def slocal_greedy_coloring(
    graph: Graph, order: Optional[Sequence[Vertex]] = None
) -> Dict[Vertex, int]:
    """Run :class:`SLOCALGreedyColoring` and return the coloring."""
    result = SLOCALEngine(graph).run(SLOCALGreedyColoring(), order=order)
    return dict(result.outputs)


def slocal_distance_coloring(
    graph: Graph, distance: int, order: Optional[Sequence[Vertex]] = None
) -> Dict[Vertex, int]:
    """Run :class:`SLOCALDistanceColoring` and return the coloring."""
    result = SLOCALEngine(graph).run(SLOCALDistanceColoring(distance), order=order)
    return dict(result.outputs)


def slocal_ruling_set(
    graph: Graph, radius: int = 1, order: Optional[Sequence[Vertex]] = None
) -> Set[Vertex]:
    """Run :class:`SLOCALRuling` and return the selected vertex set."""
    result = SLOCALEngine(graph).run(SLOCALRuling(radius), order=order)
    return {v for v, joined in result.outputs.items() if joined}
