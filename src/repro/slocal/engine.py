"""The SLOCAL execution engine.

An SLOCAL algorithm with locality ``r`` processes the nodes of the network
graph one by one, in an arbitrary order.  When node ``v`` is processed it
may inspect the current state of its ``r``-hop neighborhood (topology,
identifiers, previously written state and outputs) and must then fix its
own output; it may additionally write auxiliary state readable by nodes
processed later.  The class :class:`SLOCALEngine` executes such algorithms
and accounts for the locality actually used.

An algorithm is given either as

* a callable ``rule(view, state) -> output`` together with a declared
  ``locality`` — ``view`` is a :class:`~repro.slocal.view.LocalView`
  restricted to the declared radius and ``state`` is the
  :class:`~repro.slocal.state.NodeState` of the processed node — or
* a subclass of :class:`SLOCALAlgorithm` overriding :meth:`SLOCALAlgorithm.process`.

The engine *enforces* the declared locality: reads outside the radius
raise :class:`~repro.exceptions.LocalityViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.exceptions import ModelError
from repro.graphs.graph import Graph
from repro.slocal.orderings import sorted_order, validate_order
from repro.slocal.state import NodeState, StateMap
from repro.slocal.view import LocalView

Vertex = Hashable
Rule = Callable[[LocalView, NodeState], Any]


class SLOCALAlgorithm:
    """Base class for SLOCAL algorithms.

    Subclasses set :attr:`locality` and implement :meth:`process`.
    """

    #: The locality (radius) r of the algorithm.
    locality: int = 1

    #: Human-readable name used in reports.
    name: str = "slocal-algorithm"

    def process(self, view: LocalView, state: NodeState) -> Any:
        """Compute the output of ``view.center`` from its restricted view.

        Must be overridden by subclasses.
        """
        raise NotImplementedError

    def finalize(self, outputs: Dict[Vertex, Any]) -> Dict[Vertex, Any]:
        """Optional post-processing hook applied to the full output map.

        The default implementation returns the outputs unchanged.  This
        hook exists purely for presentation (e.g. renaming labels); it must
        not be used to perform non-local computation that changes the
        solution, and the engine calls it exactly once after all nodes have
        been processed.
        """
        return outputs


@dataclass
class SLOCALResult:
    """The result of one SLOCAL execution.

    Attributes
    ----------
    outputs:
        Mapping from every vertex to its output.
    locality:
        The locality the algorithm declared (and was restricted to).
    order:
        The processing order that was used.
    ball_sizes:
        For each vertex, the number of vertices in the ball it inspected;
        useful to report the work/volume of an execution.
    """

    outputs: Dict[Vertex, Any]
    locality: int
    order: List[Vertex]
    ball_sizes: Dict[Vertex, int] = field(default_factory=dict)

    def max_ball_size(self) -> int:
        """Return the largest inspected ball (0 for empty graphs)."""
        return max(self.ball_sizes.values(), default=0)


class SLOCALEngine:
    """Executes SLOCAL algorithms on a network graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def run(
        self,
        algorithm,
        order: Optional[Sequence[Vertex]] = None,
        locality: Optional[int] = None,
    ) -> SLOCALResult:
        """Run ``algorithm`` over the graph and return an :class:`SLOCALResult`.

        Parameters
        ----------
        algorithm:
            Either an :class:`SLOCALAlgorithm` instance or a callable
            ``rule(view, state) -> output``.
        order:
            Processing order; defaults to the deterministic sorted order.
            Any permutation of the vertex set is accepted — correctness of
            an SLOCAL algorithm must not depend on the order.
        locality:
            Required when ``algorithm`` is a bare callable; ignored (the
            declared :attr:`SLOCALAlgorithm.locality` wins) otherwise.
        """
        if isinstance(algorithm, SLOCALAlgorithm):
            rule: Rule = algorithm.process
            radius = algorithm.locality
            finalize = algorithm.finalize
        else:
            if locality is None:
                raise ModelError("a bare rule requires an explicit locality")
            rule = algorithm
            radius = locality
            finalize = lambda outputs: outputs  # noqa: E731 - trivial default hook
        if radius < 0:
            raise ModelError(f"locality must be non-negative, got {radius}")

        if order is None:
            order_list = sorted_order(self.graph)
        else:
            order_list = validate_order(self.graph, order)

        state = StateMap(self.graph.vertices)
        ball_sizes: Dict[Vertex, int] = {}
        for v in order_list:
            view = LocalView(self.graph, state, v, radius)
            ball_sizes[v] = len(view.vertices)
            node_state = state[v]
            output = rule(view, node_state)
            node_state.output = output
            node_state.processed = True

        outputs = finalize(state.outputs())
        if set(outputs) != self.graph.vertices:
            raise ModelError("finalize() must preserve the set of output vertices")
        return SLOCALResult(
            outputs=outputs,
            locality=radius,
            order=order_list,
            ball_sizes=ball_sizes,
        )

    def run_over_orders(
        self,
        algorithm,
        orders: Sequence[Sequence[Vertex]],
        locality: Optional[int] = None,
    ) -> List[SLOCALResult]:
        """Run the algorithm once per order in ``orders`` (fresh state each time)."""
        return [self.run(algorithm, order=o, locality=locality) for o in orders]
