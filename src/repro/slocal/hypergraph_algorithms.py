"""SLOCAL algorithms for hypergraph problems via their primal graph.

Hypergraph problems are brought into the (graph-based) SLOCAL model the
same way the paper's reduction does: a node of the hypergraph talks to all
vertices it shares a hyperedge with, i.e. the communication graph is the
primal (2-section) graph of ``H``.  Two algorithms are provided:

* :func:`slocal_primal_conflict_free_coloring` — the locality-1 baseline:
  every vertex picks a color different from all already-processed primal
  neighbors, which yields a proper coloring of the primal graph and hence a
  conflict-free coloring of ``H`` with at most ``Δ_primal + 1`` colors.
* :func:`slocal_unique_witness_coloring` — the locality-1 frugal variant:
  a vertex only takes a (fresh, smallest-available) color if some incident
  hyperedge still lacks a uniquely colored member among the processed
  vertices; otherwise it stays uncolored.  It typically uses far fewer
  colored vertices than the baseline while remaining conflict-free for all
  hyperedges whose members are all processed — i.e. for the whole
  hypergraph once every node has been processed.

Both demonstrate how the library's SLOCAL engine, hypergraph substrate and
conflict-free verification interoperate; benchmarks and tests compare them
with the reduction's ``k·ρ`` budget.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Set

from repro.coloring.conflict_free import UNCOLORED
from repro.hypergraph.hypergraph import Hypergraph
from repro.slocal.engine import SLOCALAlgorithm, SLOCALEngine
from repro.slocal.state import NodeState
from repro.slocal.view import LocalView

Vertex = Hashable


class _PrimalProperColoring(SLOCALAlgorithm):
    """Greedy proper coloring of the primal graph (locality 1)."""

    locality = 1
    name = "slocal-primal-cf-coloring"

    def process(self, view: LocalView, state: NodeState) -> int:
        used: Set[int] = set()
        for u in view.neighbors(view.center):
            if view.is_processed(u):
                used.add(view.output_of(u))
        color = 1
        while color in used:
            color += 1
        return color


class _UniqueWitnessColoring(SLOCALAlgorithm):
    """Frugal conflict-free coloring: color only when some incident edge needs it.

    The algorithm is defined relative to a fixed hypergraph; the network
    graph it runs on must be the hypergraph's primal graph, so that the
    1-hop view of a vertex contains every co-member of every incident edge.
    """

    locality = 1
    name = "slocal-unique-witness-coloring"

    def __init__(self, hypergraph: Hypergraph) -> None:
        self.hypergraph = hypergraph

    def _edge_has_unique_processed_witness(self, view: LocalView, members) -> bool:
        counts: Dict[int, int] = {}
        for u in members:
            if u == view.center or not view.is_processed(u):
                continue
            color = view.output_of(u)
            if color is UNCOLORED:
                continue
            counts[color] = counts.get(color, 0) + 1
        return any(count == 1 for count in counts.values())

    def process(self, view: LocalView, state: NodeState) -> Optional[int]:
        center = view.center
        needy = False
        for edge_id in self.hypergraph.edges_containing(center):
            members = self.hypergraph.edge(edge_id)
            if not self._edge_has_unique_processed_witness(view, members):
                needy = True
                break
        if not needy:
            return UNCOLORED
        # Take the smallest color not used by any processed co-member; that
        # keeps the new color unique inside every incident edge at this point
        # in the order, and colors assigned later are distinct from it within
        # those edges by the same rule.
        used: Set[int] = set()
        for u in view.neighbors(center):
            if view.is_processed(u) and view.output_of(u) is not UNCOLORED:
                used.add(view.output_of(u))
        color = 1
        while color in used:
            color += 1
        return color


def slocal_primal_conflict_free_coloring(
    hypergraph: Hypergraph, order: Optional[Sequence[Vertex]] = None
) -> Dict[Vertex, int]:
    """Conflict-free coloring of ``H`` by SLOCAL proper coloring of its primal graph."""
    primal = hypergraph.primal_graph()
    result = SLOCALEngine(primal).run(_PrimalProperColoring(), order=order)
    return dict(result.outputs)


def slocal_unique_witness_coloring(
    hypergraph: Hypergraph, order: Optional[Sequence[Vertex]] = None
) -> Dict[Vertex, int]:
    """Frugal SLOCAL conflict-free coloring of ``H`` (uncolored vertices omitted)."""
    primal = hypergraph.primal_graph()
    result = SLOCALEngine(primal).run(_UniqueWitnessColoring(hypergraph), order=order)
    return {v: c for v, c in result.outputs.items() if c is not UNCOLORED}
