"""Processing orders for SLOCAL executions.

The SLOCAL model quantifies over *arbitrary* (adversarial) processing
orders: an algorithm is correct only if it produces a valid output for
every order.  The helpers here produce deterministic, random and simple
adversarial orders so tests can exercise algorithms across many orders.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Union

from repro.exceptions import ModelError
from repro.graphs.graph import Graph

Vertex = Hashable


def _rng(seed: Optional[Union[int, random.Random]]) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def sorted_order(graph: Graph) -> List[Vertex]:
    """Deterministic order by ``repr`` of the vertices."""
    return sorted(graph.vertices, key=repr)


def random_order(graph: Graph, seed: Optional[Union[int, random.Random]] = None) -> List[Vertex]:
    """Uniformly random processing order."""
    order = sorted(graph.vertices, key=repr)
    _rng(seed).shuffle(order)
    return order


def degree_order(graph: Graph, descending: bool = True) -> List[Vertex]:
    """Order by degree (ties broken by ``repr``); high-degree first by default."""
    return sorted(
        graph.vertices,
        key=lambda v: ((-graph.degree(v)) if descending else graph.degree(v), repr(v)),
    )


def bfs_order(graph: Graph, root: Optional[Vertex] = None) -> List[Vertex]:
    """BFS order, restarting from an arbitrary vertex in each component."""
    from repro.graphs.traversal import bfs_distances

    remaining = set(graph.vertices)
    order: List[Vertex] = []
    while remaining:
        start = root if root in remaining else min(remaining, key=repr)
        dist = bfs_distances(graph, start)
        component = sorted((d, repr(v), v) for v, d in dist.items() if v in remaining)
        order.extend(v for _, _, v in component)
        remaining -= set(dist)
    return order


def validate_order(graph: Graph, order: Sequence[Vertex]) -> List[Vertex]:
    """Check that ``order`` is a permutation of the vertex set and return it as a list.

    Raises
    ------
    ModelError
        If the order misses vertices, contains duplicates or foreign vertices.
    """
    order_list = list(order)
    order_set = set(order_list)
    if len(order_set) != len(order_list):
        raise ModelError("processing order contains duplicate vertices")
    vertices = graph.vertices
    if order_set != vertices:
        missing = vertices - order_set
        extra = order_set - vertices
        raise ModelError(
            f"processing order is not a permutation of V "
            f"(missing {len(missing)}, extra {len(extra)})"
        )
    return order_list


def adversarial_orders(
    graph: Graph, n_random: int = 3, seed: Optional[int] = None
) -> List[List[Vertex]]:
    """Return a small battery of orders used by tests to probe order-sensitivity.

    Includes the sorted order, its reverse, a high-degree-first order, a
    low-degree-first order, a BFS order, and ``n_random`` random orders.
    """
    rng = _rng(seed)
    orders = [
        sorted_order(graph),
        list(reversed(sorted_order(graph))),
        degree_order(graph, descending=True),
        degree_order(graph, descending=False),
        bfs_order(graph),
    ]
    for _ in range(n_random):
        orders.append(random_order(graph, seed=rng))
    return orders
