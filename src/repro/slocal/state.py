"""Per-node persistent state used by the SLOCAL execution engine.

In the SLOCAL model a node, when processed, may write information into its
own state; nodes processed later can read that state (within their
locality radius).  :class:`NodeState` models this as a small key/value
store plus the node's final output, and records whether the node has been
processed yet so that the engine can enforce the model's sequencing rules.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.exceptions import ModelError

Vertex = Hashable


class NodeState:
    """The persistent state of a single node in an SLOCAL execution.

    Attributes
    ----------
    vertex:
        The node this state belongs to.
    processed:
        Whether the node has already been processed by the engine.
    output:
        The node's final output (``None`` until processed, unless the
        algorithm explicitly outputs ``None``).
    """

    def __init__(self, vertex: Vertex) -> None:
        self.vertex = vertex
        self.processed = False
        self.output: Any = None
        self._store: Dict[str, Any] = {}

    def write(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in this node's state."""
        self._store[key] = value

    def read(self, key: str, default: Any = None) -> Any:
        """Read the value stored under ``key`` (or ``default``)."""
        return self._store.get(key, default)

    def keys(self):
        """Return the stored keys."""
        return self._store.keys()

    def as_dict(self) -> Dict[str, Any]:
        """Return a copy of the key/value store."""
        return dict(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "processed" if self.processed else "pending"
        return f"NodeState({self.vertex!r}, {status}, output={self.output!r})"


class StateMap:
    """The collection of all node states in one SLOCAL execution."""

    def __init__(self, vertices) -> None:
        self._states: Dict[Vertex, NodeState] = {v: NodeState(v) for v in vertices}

    def __getitem__(self, vertex: Vertex) -> NodeState:
        if vertex not in self._states:
            raise ModelError(f"no state for vertex {vertex!r}")
        return self._states[vertex]

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._states

    def __iter__(self):
        return iter(self._states)

    def outputs(self) -> Dict[Vertex, Any]:
        """Return the mapping ``vertex -> output`` over all processed nodes."""
        return {v: s.output for v, s in self._states.items() if s.processed}

    def processed_vertices(self) -> set:
        """Return the set of already processed vertices."""
        return {v for v, s in self._states.items() if s.processed}

    def get_output(self, vertex: Vertex) -> Optional[Any]:
        """Return the output of ``vertex`` (``None`` if unprocessed)."""
        return self[vertex].output
