"""Restricted r-hop views handed to SLOCAL algorithms.

The central rule of the SLOCAL model is that, when node ``v`` is processed
with locality ``r``, the algorithm may inspect *only* the ``r``-hop
neighborhood of ``v``: its topology, the identifiers of the nodes in it,
and the current state (including outputs) of those nodes.  :class:`LocalView`
is the capability object that enforces this: any attempt to read a vertex
outside the ball raises :class:`~repro.exceptions.LocalityViolation`, which
is how the engine measures/validates the locality of an algorithm.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Set

from repro.exceptions import LocalityViolation
from repro.graphs.graph import Graph
from repro.graphs.traversal import ball
from repro.slocal.state import StateMap

Vertex = Hashable


class LocalView:
    """Read-only window onto the ``radius``-ball around ``center``.

    Parameters
    ----------
    graph:
        The full network graph (never exposed directly).
    state:
        The global state map (reads are restricted to the ball).
    center:
        The node currently being processed.
    radius:
        The locality of the algorithm.
    """

    def __init__(self, graph: Graph, state: StateMap, center: Vertex, radius: int) -> None:
        self._graph = graph
        self._state = state
        self.center = center
        self.radius = radius
        self._ball: Set[Vertex] = ball(graph, center, radius)
        self._subgraph = graph.subgraph(self._ball)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Set[Vertex]:
        """The vertices visible in this view (the ``radius``-ball)."""
        return set(self._ball)

    def subgraph(self) -> Graph:
        """The subgraph induced on the visible ball (a copy)."""
        return self._subgraph.copy()

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Neighbors of ``vertex`` *within the view*.

        Note that for vertices on the boundary of the ball this may be a
        strict subset of their true neighborhood — exactly as in the model,
        where edges leaving the ball are invisible.
        """
        self._check_visible(vertex)
        return self._subgraph.neighbors(vertex)

    def degree_in_view(self, vertex: Vertex) -> int:
        """Degree of ``vertex`` restricted to the view."""
        self._check_visible(vertex)
        return self._subgraph.degree(vertex)

    def true_degree(self, vertex: Vertex) -> int:
        """The true degree of ``vertex`` in the whole graph.

        Only available for vertices at distance ≤ ``radius - 1`` from the
        center (their full neighborhood lies inside the ball); for boundary
        vertices the true degree is not locally determined and requesting it
        raises :class:`LocalityViolation`.  The center's own true degree is
        always available when ``radius ≥ 1``.
        """
        self._check_visible(vertex)
        if self.radius == 0 and vertex == self.center:
            raise LocalityViolation(
                "a radius-0 view cannot see any neighbors, so no degree is available"
            )
        full_neighbors = self._graph.neighbors(vertex)
        if not full_neighbors <= self._ball:
            raise LocalityViolation(
                f"the full neighborhood of {vertex!r} is not contained in the "
                f"{self.radius}-ball around {self.center!r}"
            )
        return len(full_neighbors)

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def is_processed(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` (visible in the view) has already been processed."""
        self._check_visible(vertex)
        return self._state[vertex].processed

    def output_of(self, vertex: Vertex) -> Any:
        """The output of an already-processed visible vertex."""
        self._check_visible(vertex)
        return self._state[vertex].output

    def read_state(self, vertex: Vertex, key: str, default: Any = None) -> Any:
        """Read a key from the persistent state of a visible vertex."""
        self._check_visible(vertex)
        return self._state[vertex].read(key, default)

    def processed_vertices(self) -> Set[Vertex]:
        """The visible vertices that have already been processed."""
        return {v for v in self._ball if self._state[v].processed}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_visible(self, vertex: Vertex) -> None:
        if vertex not in self._ball:
            raise LocalityViolation(
                f"vertex {vertex!r} is outside the {self.radius}-hop view of {self.center!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalView(center={self.center!r}, radius={self.radius}, "
            f"|ball|={len(self._ball)})"
        )
