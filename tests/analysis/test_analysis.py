"""Tests for the analysis helpers: decay curves, metrics, table rendering."""

from __future__ import annotations

import pytest

from repro.analysis import (
    approximator_quality_table,
    conflict_graph_scaling_row,
    decay_curve,
    effective_lambda,
    format_records,
    format_table,
    geometric_fit_rate,
    mis_model_comparison,
    observed_removal_fractions,
    phase_summary,
    phases_needed_at_rate,
    run_summary,
)
from repro.core import solve_conflict_free_multicoloring
from repro.exceptions import ReproError
from repro.graphs import cycle_graph, erdos_renyi_graph
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.maxis import get_approximator


@pytest.fixture(scope="module")
def reduction_result():
    hypergraph, _ = colorable_almost_uniform_hypergraph(n=24, m=14, k=3, seed=19)
    result = solve_conflict_free_multicoloring(
        hypergraph, k=3, approximator=get_approximator("luby-best-of-5"), lam=6.0
    )
    return hypergraph, result


class TestPhaseStats:
    def test_decay_curve_shape(self, reduction_result):
        hypergraph, result = reduction_result
        curve = decay_curve(result)
        assert len(curve.observed) == len(curve.guaranteed) == result.num_phases + 1
        assert curve.observed[0] == hypergraph.num_edges()
        assert curve.observed[-1] == 0

    def test_removal_fractions_positive(self, reduction_result):
        _, result = reduction_result
        fractions = observed_removal_fractions(result)
        assert fractions
        assert all(0 < f <= 1 for f in fractions)

    def test_effective_lambda_at_least_one(self, reduction_result):
        _, result = reduction_result
        assert effective_lambda(result) >= 1.0

    def test_phase_summary_rows(self, reduction_result):
        _, result = reduction_result
        rows = phase_summary(result)
        assert len(rows) == result.num_phases
        assert all("removal_fraction" in row for row in rows)

    def test_run_summary_keys_and_flags(self, reduction_result):
        _, result = reduction_result
        summary = run_summary(result)
        assert summary["phases"] == result.num_phases
        assert summary["within_color_bound"] == 1.0

    def test_geometric_fit_rate(self):
        assert geometric_fit_rate([100, 50, 25]) == pytest.approx(0.5)
        assert geometric_fit_rate([10, 0]) == 0.0
        with pytest.raises(ReproError):
            geometric_fit_rate([5])

    def test_phases_needed_at_rate(self):
        assert phases_needed_at_rate(100, 0.5) == 7
        assert phases_needed_at_rate(1, 0.5) == 1
        assert phases_needed_at_rate(0, 0.5) == 0
        assert phases_needed_at_rate(100, 0.0) == 1
        with pytest.raises(ReproError):
            phases_needed_at_rate(10, 1.0)


class TestMetrics:
    def test_approximator_quality_table(self):
        g = erdos_renyi_graph(16, 0.3, seed=21)
        rows = approximator_quality_table(g, names=["exact", "greedy-min-degree"])
        by_name = {row["approximator"]: row for row in rows}
        assert by_name["exact"]["measured_ratio"] == pytest.approx(1.0)
        assert by_name["greedy-min-degree"]["measured_ratio"] >= 1.0

    def test_mis_model_comparison_row(self):
        row = mis_model_comparison(cycle_graph(10), seed=2)
        assert row["slocal_valid"] == 1.0 and row["luby_valid"] == 1.0

    def test_conflict_graph_scaling_row(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=15, m=8, k=2, seed=22)
        row = conflict_graph_scaling_row(hypergraph, k=2)
        assert row["cg_vertices"] == row["cg_vertices_formula"]
        assert row["cg_edges"] <= row["cg_edges_upper_bound"]


class TestTables:
    def test_format_table_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_format_table_float_precision(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_format_records(self):
        text = format_records([{"a": 1, "b": True}, {"a": 2, "b": False}])
        assert "yes" in text and "no" in text

    def test_format_records_empty(self):
        assert format_records([]) == "(no rows)"
