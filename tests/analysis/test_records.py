"""Tests for machine-readable experiment records."""

from __future__ import annotations

import pytest

from repro.analysis.records import (
    ExperimentRecord,
    read_records,
    record_model_gap,
    record_oracle_quality,
    record_phase_decay,
    write_records,
)
from repro.exceptions import ReproError
from repro.graphs import cycle_graph, erdos_renyi_graph
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.maxis import get_approximator


class TestRecordModel:
    def test_add_row_and_column(self):
        record = ExperimentRecord(experiment="X", description="demo")
        record.add_row(a=1, b=2)
        record.add_row(a=3)
        assert record.column("a") == [1, 3]
        assert record.column("b") == [2, None]

    def test_json_round_trip(self):
        record = ExperimentRecord(
            experiment="X", description="demo", rows=[{"a": 1}], metadata={"seed": 7}
        )
        back = ExperimentRecord.from_json(record.to_json())
        assert back == record

    def test_from_dict_requires_mandatory_fields(self):
        with pytest.raises(ReproError):
            ExperimentRecord.from_dict({"experiment": "X", "rows": []})

    def test_file_round_trip(self, tmp_path):
        records = [
            ExperimentRecord(experiment="A", description="one", rows=[{"x": 1}]),
            ExperimentRecord(experiment="B", description="two", rows=[]),
        ]
        path = tmp_path / "records.json"
        write_records(records, str(path))
        back = read_records(str(path))
        assert back == records

    def test_read_rejects_non_list_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ReproError):
            read_records(str(path))


class TestRunners:
    def test_record_phase_decay(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=20, m=12, k=2, seed=91)
        record = record_phase_decay(
            hypergraph, k=2, approximator=get_approximator("greedy-min-degree"), lam=4.0,
            label="unit-test",
        )
        assert record.experiment == "E3"
        assert record.metadata["m"] == 12
        assert record.rows
        assert record.rows[-1]["edges_after"] == 0
        # JSON-serializable end to end.
        ExperimentRecord.from_json(record.to_json())

    def test_record_oracle_quality(self):
        graph = erdos_renyi_graph(14, 0.3, seed=92)
        record = record_oracle_quality(graph, names=["exact", "greedy-min-degree"])
        assert {row["approximator"] for row in record.rows} == {"exact", "greedy-min-degree"}

    def test_record_model_gap(self):
        record = record_model_gap([("cycle", cycle_graph(12))], seed=5)
        assert record.rows[0]["graph"] == "cycle"
        assert record.rows[0]["slocal_valid"] == 1.0
