"""Tests for the greedy and interval conflict-free coloring baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    greedy_conflict_free_coloring,
    interval_color_bound,
    interval_conflict_free_coloring,
    is_interval_hypergraph,
    num_colors_used,
    proper_coloring_of_primal_graph,
    unique_maximum_coloring_bound,
    verify_conflict_free_coloring,
)
from repro.coloring.interval import canonical_point_order, divide_and_conquer_coloring
from repro.exceptions import ColoringError
from repro.hypergraph import (
    Hypergraph,
    random_interval_hypergraph,
    sunflower_hypergraph,
    uniform_random_hypergraph,
)

from tests.conftest import hypergraphs


class TestPrimalBaseline:
    def test_primal_coloring_is_conflict_free(self, small_hypergraph):
        coloring = proper_coloring_of_primal_graph(small_hypergraph)
        verify_conflict_free_coloring(small_hypergraph, coloring, require_total=True)

    def test_primal_coloring_respects_bound(self, small_hypergraph):
        coloring = proper_coloring_of_primal_graph(small_hypergraph)
        assert num_colors_used(coloring) <= unique_maximum_coloring_bound(small_hypergraph)

    @given(hypergraphs())
    @settings(max_examples=25, deadline=None)
    def test_primal_coloring_property(self, h):
        coloring = proper_coloring_of_primal_graph(h)
        verify_conflict_free_coloring(h, coloring)


class TestGreedyCF:
    def test_greedy_result_is_conflict_free(self, small_hypergraph):
        coloring = greedy_conflict_free_coloring(small_hypergraph)
        verify_conflict_free_coloring(small_hypergraph, coloring)

    def test_greedy_on_sunflower(self):
        h = sunflower_hypergraph(n_petals=5, petal_size=2, core_size=1)
        coloring = greedy_conflict_free_coloring(h)
        verify_conflict_free_coloring(h, coloring)

    def test_greedy_respects_cap(self):
        h = uniform_random_hypergraph(20, 12, 4, seed=3)
        with pytest.raises(ColoringError):
            greedy_conflict_free_coloring(h, max_colors=0)

    def test_greedy_on_edgeless_hypergraph_uses_no_colors(self):
        h = Hypergraph(vertices=[0, 1])
        assert greedy_conflict_free_coloring(h) == {}

    @given(hypergraphs(max_n=10, max_m=6))
    @settings(max_examples=25, deadline=None)
    def test_greedy_property(self, h):
        coloring = greedy_conflict_free_coloring(h)
        verify_conflict_free_coloring(h, coloring)


class TestIntervalColoring:
    def test_divide_and_conquer_color_count_bound(self):
        order = list(range(31))
        coloring = divide_and_conquer_coloring(order)
        assert max(coloring.values()) <= interval_color_bound(31)
        assert set(coloring) == set(order)

    def test_interval_coloring_is_conflict_free(self):
        h = random_interval_hypergraph(30, 20, seed=4)
        order = canonical_point_order(h)
        coloring = interval_conflict_free_coloring(h, order)
        verify_conflict_free_coloring(h, coloring, require_total=True)
        assert num_colors_used(coloring) <= interval_color_bound(30)

    def test_non_interval_hypergraph_rejected(self):
        h = Hypergraph.from_edge_list([[0, 2]])  # skips point 1 -> not contiguous
        h.add_vertex(1)
        with pytest.raises(ColoringError):
            interval_conflict_free_coloring(h, [0, 1, 2])

    def test_is_interval_hypergraph_predicate(self):
        h = Hypergraph.from_edge_list([[0, 1], [1, 2, 3]])
        assert is_interval_hypergraph(h, [0, 1, 2, 3])
        assert not is_interval_hypergraph(h, [0, 2, 1, 3])

    def test_interval_color_bound_values(self):
        assert interval_color_bound(0) == 0
        assert interval_color_bound(1) == 1
        assert interval_color_bound(7) == 3
        with pytest.raises(ColoringError):
            interval_color_bound(-1)

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_interval_coloring_property(self, n_points, n_intervals, seed):
        h = random_interval_hypergraph(n_points, n_intervals, seed=seed)
        order = canonical_point_order(h)
        coloring = interval_conflict_free_coloring(h, order)
        verify_conflict_free_coloring(h, coloring)
        assert num_colors_used(coloring) <= interval_color_bound(n_points)
