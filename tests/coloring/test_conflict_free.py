"""Tests for conflict-free colorings: happiness, verification, partial colorings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    UNCOLORED,
    color_of,
    colors_used,
    happy_edges,
    is_conflict_free,
    is_happy,
    num_colors_used,
    restrict_coloring,
    unhappy_edges,
    unique_color_vertices,
    verify_conflict_free_coloring,
)
from repro.exceptions import ColoringError
from repro.hypergraph import Hypergraph

from tests.conftest import colorable_hypergraphs


@pytest.fixture
def triangle_hypergraph() -> Hypergraph:
    """Three vertices, one hyperedge containing all of them."""
    return Hypergraph.from_edge_list([[0, 1, 2]])


class TestHappiness:
    def test_unique_color_makes_edge_happy(self, triangle_hypergraph):
        assert is_happy(triangle_hypergraph, {0: 1, 1: 2, 2: 2}, 0)

    def test_all_same_color_is_unhappy(self, triangle_hypergraph):
        assert not is_happy(triangle_hypergraph, {0: 1, 1: 1, 2: 1}, 0)

    def test_uncolored_vertices_do_not_count(self, triangle_hypergraph):
        # Only vertex 0 is colored, and its color is unique among colored ones.
        assert is_happy(triangle_hypergraph, {0: 1}, 0)
        # No vertex colored: unhappy.
        assert not is_happy(triangle_hypergraph, {}, 0)

    def test_unique_color_vertices_identifies_witnesses(self, triangle_hypergraph):
        witnesses = unique_color_vertices(triangle_hypergraph, {0: 1, 1: 2, 2: 2}, 0)
        assert witnesses == {0}

    def test_happy_and_unhappy_partition_edges(self, small_hypergraph):
        coloring = {0: 1, 1: 1, 2: 2, 3: 1, 4: 2}
        happy = happy_edges(small_hypergraph, coloring)
        unhappy = unhappy_edges(small_hypergraph, coloring)
        assert happy | unhappy == set(small_hypergraph.edge_ids)
        assert not happy & unhappy

    def test_singleton_edge_happy_once_colored(self):
        h = Hypergraph.from_edge_list([[7]])
        assert not is_happy(h, {}, 0)
        assert is_happy(h, {7: 3}, 0)


class TestVerification:
    def test_valid_coloring_accepted(self, triangle_hypergraph):
        verify_conflict_free_coloring(triangle_hypergraph, {0: 1, 1: 2, 2: 3}, k=3)

    def test_unhappy_edge_rejected(self, triangle_hypergraph):
        with pytest.raises(ColoringError):
            verify_conflict_free_coloring(triangle_hypergraph, {0: 1, 1: 1, 2: 1})

    def test_color_budget_enforced(self, triangle_hypergraph):
        with pytest.raises(ColoringError):
            verify_conflict_free_coloring(triangle_hypergraph, {0: 1, 1: 2, 2: 3}, k=2)

    def test_totality_enforced_when_requested(self, triangle_hypergraph):
        with pytest.raises(ColoringError):
            verify_conflict_free_coloring(
                triangle_hypergraph, {0: 1}, require_total=True
            )

    def test_foreign_vertices_rejected(self, triangle_hypergraph):
        with pytest.raises(ColoringError):
            verify_conflict_free_coloring(triangle_hypergraph, {0: 1, 99: 2})

    def test_is_conflict_free_boolean(self, triangle_hypergraph):
        assert is_conflict_free(triangle_hypergraph, {0: 1})
        assert not is_conflict_free(triangle_hypergraph, {0: 1, 1: 1, 2: 1})


class TestHelpers:
    def test_color_of_defaults_to_uncolored(self):
        assert color_of({}, 5) is UNCOLORED
        assert color_of({5: 2}, 5) == 2

    def test_colors_used_ignores_uncolored(self):
        assert colors_used({0: 1, 1: UNCOLORED, 2: 2}) == {1, 2}
        assert num_colors_used({0: 1, 1: 1}) == 1

    def test_restrict_coloring(self):
        restricted = restrict_coloring({0: 1, 1: 2, 2: UNCOLORED}, {1, 2})
        assert restricted == {1: 2}


class TestPlantedColoringsProperty:
    @given(colorable_hypergraphs())
    @settings(max_examples=30, deadline=None)
    def test_planted_coloring_is_conflict_free_with_k_colors(self, instance):
        hypergraph, planted, k = instance
        verify_conflict_free_coloring(hypergraph, planted, k=k, require_total=True)
        assert num_colors_used(planted) <= k

    @given(colorable_hypergraphs(), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_removing_colors_only_hurts_monotonically(self, instance, seed):
        import random as _random

        hypergraph, planted, _ = instance
        rng = _random.Random(seed)
        partial = {v: c for v, c in planted.items() if rng.random() < 0.5}
        # Every edge happy under the partial coloring is also happy under the
        # full planted coloring?  Not in general (adding colors can break
        # uniqueness) — but the reverse direction of *unhappiness* holds for
        # the edges whose unique witness was removed.  The invariant we do
        # check: happiness is determined per edge and the partition is total.
        happy = happy_edges(hypergraph, partial)
        unhappy = unhappy_edges(hypergraph, partial)
        assert happy | unhappy == set(hypergraph.edge_ids)
