"""Edge-case coverage for `repro.coloring.conflict_free` / `multicoloring`:
empty hypergraphs, single-vertex edges, and the unhappy-edge complement
identity on randomized instances (including the shared-computation /
precomputed-`happy` fast paths)."""

from __future__ import annotations

import random

import pytest

from repro.coloring import conflict_free as cf
from repro.coloring import multicoloring as mc
from repro.hypergraph import Hypergraph, uniform_random_hypergraph


class TestEmptyHypergraph:
    def test_single_coloring_functions(self):
        h = Hypergraph()
        assert cf.happy_edges(h, {}) == set()
        assert cf.happy_edges_incident(h, {}) == set()
        assert cf.unhappy_edges(h, {}) == set()
        assert cf.is_conflict_free(h, {})
        cf.verify_conflict_free_coloring(h, {}, require_total=True)

    def test_vertices_but_no_edges(self):
        h = Hypergraph(vertices=range(4))
        coloring = {0: 1, 1: 2}
        assert cf.happy_edges(h, coloring) == set()
        assert cf.happy_edges_incident(h, coloring) == set()
        assert cf.is_conflict_free(h, coloring)

    def test_multicoloring_functions(self):
        h = Hypergraph()
        empty = mc.Multicoloring()
        assert mc.happy_edges(h, empty) == set()
        assert mc.unhappy_edges(h, empty) == set()
        assert mc.is_conflict_free_multicoloring(h, empty)
        mc.verify_conflict_free_multicoloring(h, empty, max_total_colors=0)


class TestSingleVertexEdges:
    def test_single_vertex_edge_happy_iff_colored(self):
        h = Hypergraph(edges=[("loop", [0])])
        assert cf.happy_edges(h, {}) == set()
        assert cf.unhappy_edges(h, {}) == {"loop"}
        assert cf.happy_edges(h, {0: 1}) == {"loop"}
        assert cf.happy_edges_incident(h, {0: 1}) == {"loop"}
        assert cf.happy_edges(h, {0: None}) == set()

    def test_single_vertex_edges_in_multicoloring(self):
        h = Hypergraph(edges=[("a", [0]), ("b", [0, 1]), ("c", [1])])
        coloring = mc.Multicoloring({0: [1], 1: [1]})
        # Edge "b" sees color 1 twice; the singletons each see it once.
        assert mc.happy_edges(h, coloring) == {"a", "c"}
        assert mc.unhappy_edges(h, coloring) == {"b"}
        assert not mc.is_conflict_free_multicoloring(h, coloring)
        coloring.add_color(1, 2)
        assert mc.happy_edges(h, coloring) == {"a", "b", "c"}
        mc.verify_conflict_free_multicoloring(h, coloring)


class TestUnhappyComplementIdentity:
    @pytest.mark.parametrize("seed", range(40))
    def test_complement_identity_randomized(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 12)
        h = uniform_random_hypergraph(
            n=n,
            m=rng.randint(0, 9),
            edge_size=rng.randint(1, n),
            seed=rng.randrange(10_000),
        )
        coloring = {
            v: rng.randint(1, 3) for v in h.vertices if rng.random() < 0.7
        }
        happy = cf.happy_edges(h, coloring)
        unhappy = cf.unhappy_edges(h, coloring)
        assert happy | unhappy == set(h.edge_ids), f"[seed={seed}]"
        assert happy & unhappy == set(), f"[seed={seed}]"
        # The precomputed-happy fast path answers identically.
        assert cf.unhappy_edges(h, coloring, happy=happy) == unhappy
        assert cf.is_conflict_free(h, coloring, happy=happy) == (not unhappy)
        assert cf.happy_edges_incident(h, coloring) == happy

    @pytest.mark.parametrize("seed", range(20))
    def test_multicoloring_complement_identity(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 10)
        h = uniform_random_hypergraph(
            n=n,
            m=rng.randint(0, 8),
            edge_size=rng.randint(1, n),
            seed=rng.randrange(10_000),
        )
        coloring = mc.Multicoloring(
            {
                v: [rng.randint(1, 3) for _ in range(rng.randint(1, 2))]
                for v in h.vertices
                if rng.random() < 0.7
            }
        )
        happy = mc.happy_edges(h, coloring)
        unhappy = mc.unhappy_edges(h, coloring)
        assert happy | unhappy == set(h.edge_ids), f"[seed={seed}]"
        assert happy & unhappy == set(), f"[seed={seed}]"
        assert mc.unhappy_edges(h, coloring, happy=happy) == unhappy
        assert mc.is_conflict_free_multicoloring(h, coloring, happy=happy) == (
            not unhappy
        )
