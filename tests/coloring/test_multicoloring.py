"""Tests for conflict-free multicolorings."""

from __future__ import annotations

import pytest

from repro.coloring import (
    Multicoloring,
    edge_color_census,
    is_conflict_free_multicoloring,
    is_edge_happy,
    single_coloring_as_multicoloring,
    verify_conflict_free_multicoloring,
)
from repro.exceptions import ColoringError
from repro.hypergraph import Hypergraph


@pytest.fixture
def pair_hypergraph() -> Hypergraph:
    return Hypergraph.from_edge_list([[0, 1, 2], [1, 2, 3]])


class TestMulticoloringContainer:
    def test_add_and_query_colors(self):
        mc = Multicoloring()
        mc.add_color(0, "a")
        mc.add_color(0, "b")
        mc.add_color(1, "a")
        assert mc.colors_of(0) == {"a", "b"}
        assert mc.colors_of(2) == set()
        assert mc.all_colors() == {"a", "b"}
        assert mc.num_colors() == 2
        assert mc.max_colors_per_vertex() == 2
        assert mc.colored_vertices() == {0, 1}

    def test_none_color_rejected(self):
        with pytest.raises(ColoringError):
            Multicoloring().add_color(0, None)

    def test_constructor_from_assignment(self):
        mc = Multicoloring({0: ["x"], 1: ["x", "y"]})
        assert mc.colors_of(1) == {"x", "y"}

    def test_merge_single_coloring_skips_uncolored(self):
        mc = Multicoloring()
        mc.merge_single_coloring({0: 1, 1: None})
        assert mc.colors_of(0) == {1}
        assert mc.colors_of(1) == set()

    def test_equality_and_snapshot(self):
        a = Multicoloring({0: [1]})
        b = single_coloring_as_multicoloring({0: 1})
        assert a == b
        assert a.as_dict() == {0: frozenset({1})}


class TestHappiness:
    def test_unique_color_in_edge_makes_it_happy(self, pair_hypergraph):
        mc = Multicoloring({0: ["r"], 1: ["r"], 2: ["g"], 3: ["g"]})
        # Edge 0 = {0,1,2}: 'r' appears twice, 'g' once -> happy via vertex 2.
        assert is_edge_happy(pair_hypergraph, mc, 0)
        # Edge 1 = {1,2,3}: 'r' once (vertex 1) -> happy.
        assert is_edge_happy(pair_hypergraph, mc, 1)
        assert is_conflict_free_multicoloring(pair_hypergraph, mc)

    def test_census_counts_multicolor_vertices_once_per_color(self, pair_hypergraph):
        mc = Multicoloring({1: ["r", "g"], 2: ["r"]})
        census = edge_color_census(pair_hypergraph, mc, 0)
        assert census == {"r": 2, "g": 1}

    def test_all_shared_colors_is_unhappy(self, pair_hypergraph):
        mc = Multicoloring({0: ["r"], 1: ["r"], 2: ["r"], 3: ["r"]})
        assert not is_edge_happy(pair_hypergraph, mc, 0)
        assert not is_conflict_free_multicoloring(pair_hypergraph, mc)


class TestVerification:
    def test_valid_multicoloring_accepted(self, pair_hypergraph):
        mc = Multicoloring({0: [1], 1: [2], 2: [3], 3: [1]})
        verify_conflict_free_multicoloring(pair_hypergraph, mc)

    def test_unhappy_edge_rejected(self, pair_hypergraph):
        mc = Multicoloring({0: [1], 1: [1], 2: [1], 3: [1]})
        with pytest.raises(ColoringError):
            verify_conflict_free_multicoloring(pair_hypergraph, mc)

    def test_color_budget_enforced(self, pair_hypergraph):
        mc = Multicoloring({0: [1], 1: [2], 2: [3], 3: [4]})
        with pytest.raises(ColoringError):
            verify_conflict_free_multicoloring(pair_hypergraph, mc, max_total_colors=2)

    def test_foreign_vertices_rejected(self, pair_hypergraph):
        mc = Multicoloring({99: [1]})
        with pytest.raises(ColoringError):
            verify_conflict_free_multicoloring(pair_hypergraph, mc)
