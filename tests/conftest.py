"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graphs import Graph, erdos_renyi_graph
from repro.hypergraph import Hypergraph, colorable_almost_uniform_hypergraph


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def small_graph() -> Graph:
    """A fixed 6-vertex graph with a known structure (two triangles joined by an edge)."""
    g = Graph()
    g.add_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    return g


@pytest.fixture
def random_graph() -> Graph:
    """A fixed-seed G(30, 0.15) instance."""
    return erdos_renyi_graph(30, 0.15, seed=7)


@pytest.fixture
def small_hypergraph() -> Hypergraph:
    """A fixed 5-vertex hypergraph with 4 edges."""
    return Hypergraph.from_edge_list([[0, 1, 2], [2, 3], [1, 3, 4], [0, 4]])


@pytest.fixture
def colorable_instance():
    """A colorable almost-uniform hypergraph together with its planted coloring."""
    return colorable_almost_uniform_hypergraph(n=24, m=15, k=3, epsilon=0.5, seed=11)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def graphs(max_n: int = 12, max_p: float = 0.6):
    """Strategy producing small random graphs (decided by a seed + parameters)."""

    @st.composite
    def _build(draw):
        n = draw(st.integers(min_value=0, max_value=max_n))
        p = draw(st.floats(min_value=0.0, max_value=max_p))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        return erdos_renyi_graph(n, p, seed=seed)

    return _build()


def hypergraphs(max_n: int = 12, max_m: int = 8, max_edge: int = 4):
    """Strategy producing small random hypergraphs."""

    @st.composite
    def _build(draw):
        n = draw(st.integers(min_value=1, max_value=max_n))
        m = draw(st.integers(min_value=0, max_value=max_m))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        rng = random.Random(seed)
        h = Hypergraph(vertices=range(n))
        for i in range(m):
            size = rng.randint(1, min(max_edge, n))
            h.add_edge(rng.sample(range(n), size), edge_id=i)
        return h

    return _build()


def colorable_hypergraphs(max_n: int = 20, max_m: int = 10, max_k: int = 3):
    """Strategy producing (hypergraph, planted CF coloring, k) triples."""

    @st.composite
    def _build(draw):
        k = draw(st.integers(min_value=1, max_value=max_k))
        n = draw(st.integers(min_value=2 * k + 1, max_value=max_n))
        m = draw(st.integers(min_value=1, max_value=max_m))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        h, planted = colorable_almost_uniform_hypergraph(
            n=n, m=m, k=k, epsilon=1.0, seed=seed
        )
        return h, planted, k

    return _build()
