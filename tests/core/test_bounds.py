"""Tests for the closed-form bounds used by the reduction's analysis."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    color_budget,
    conflict_graph_edge_count_upper_bound,
    conflict_graph_vertex_count,
    expected_remaining_edges,
    is_polylog,
    minimum_lambda_for_phase_count,
    per_phase_removal_fraction,
    phase_budget,
)
from repro.exceptions import ReductionError


class TestPhaseBudget:
    def test_matches_paper_formula_up_to_ceiling(self):
        assert phase_budget(2.0, 100) == math.ceil(2.0 * math.log(100)) + 1

    def test_tiny_edge_counts(self):
        assert phase_budget(3.0, 0) == 1
        assert phase_budget(3.0, 1) == 1

    def test_lambda_one_still_needs_log_phases_by_formula(self):
        # With a perfect oracle the formula still allocates ~ln(m)+1 phases;
        # the actual run finishes after one phase, which is within budget.
        assert phase_budget(1.0, 50) >= 1

    def test_monotone_in_lambda_and_m(self):
        assert phase_budget(4.0, 100) >= phase_budget(2.0, 100)
        assert phase_budget(2.0, 1000) >= phase_budget(2.0, 10)

    def test_invalid_inputs(self):
        with pytest.raises(ReductionError):
            phase_budget(0.5, 10)
        with pytest.raises(ReductionError):
            phase_budget(2.0, -1)

    @given(st.floats(min_value=1.0, max_value=50.0), st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_budget_suffices_for_geometric_decay(self, lam, m):
        # (1 - 1/λ)^ρ · m < 1 — the inequality the paper's proof rests on.
        rho = phase_budget(lam, m)
        assert expected_remaining_edges(m, lam, rho) < 1.0


class TestColorBudget:
    def test_color_budget_is_k_times_rho(self):
        assert color_budget(5, 2.0, 100) == 5 * phase_budget(2.0, 100)

    def test_invalid_k(self):
        with pytest.raises(ReductionError):
            color_budget(0, 2.0, 10)

    def test_polylog_check(self):
        n = 1024
        k = 4
        lam = math.log2(n)
        assert is_polylog(color_budget(k, lam, n), n, exponent=3.0, constant=16.0)

    def test_is_polylog_small_n(self):
        assert is_polylog(1e9, 1)


class TestDecayHelpers:
    def test_expected_remaining_edges_decreases(self):
        values = [expected_remaining_edges(100, 2.0, i) for i in range(5)]
        assert values == sorted(values, reverse=True)
        assert values[0] == 100

    def test_per_phase_removal_fraction(self):
        assert per_phase_removal_fraction(4.0) == 0.25
        with pytest.raises(ReductionError):
            per_phase_removal_fraction(0.9)

    def test_expected_remaining_invalid_inputs(self):
        with pytest.raises(ReductionError):
            expected_remaining_edges(10, 0.5, 1)
        with pytest.raises(ReductionError):
            expected_remaining_edges(10, 2.0, -1)
        with pytest.raises(ReductionError):
            expected_remaining_edges(-1, 2.0, 1)

    def test_minimum_lambda_inverts_phase_budget(self):
        m = 200
        lam = minimum_lambda_for_phase_count(m, phases=30)
        assert phase_budget(lam, m) <= 31  # ceiling slack of one phase

    def test_minimum_lambda_edge_cases(self):
        assert minimum_lambda_for_phase_count(1, 5) == float("inf")
        assert minimum_lambda_for_phase_count(100, 1) == 1.0
        with pytest.raises(ReductionError):
            minimum_lambda_for_phase_count(10, 0)


class TestConflictGraphSizeBounds:
    def test_vertex_count_formula(self):
        assert conflict_graph_vertex_count(12, 3) == 36

    def test_edge_count_upper_bound(self):
        assert conflict_graph_edge_count_upper_bound(4, 2) == 8 * 8 // 2

    def test_invalid_inputs(self):
        with pytest.raises(ReductionError):
            conflict_graph_vertex_count(5, 0)
        with pytest.raises(ReductionError):
            conflict_graph_vertex_count(-1, 2)

    def test_measured_sizes_respect_bounds(self, colorable_instance):
        from repro.core import ConflictGraph

        hypergraph, _ = colorable_instance
        k = 3
        cg = ConflictGraph(hypergraph, k)
        total = hypergraph.total_edge_size()
        assert cg.num_vertices() == conflict_graph_vertex_count(total, k)
        assert cg.num_edges() <= conflict_graph_edge_count_upper_bound(total, k)
