"""Tests for the conflict graph construction G_k (Section 2 of the paper)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConflictGraph, ConflictVertex, build_conflict_graph, conflict_vertices
from repro.core.conflict_graph import classify_conflict_edge
from repro.exceptions import ReductionError
from repro.hypergraph import Hypergraph, colorable_almost_uniform_hypergraph

from tests.conftest import hypergraphs


@pytest.fixture
def tiny_hypergraph() -> Hypergraph:
    """Two overlapping edges: e0 = {0, 1}, e1 = {1, 2}."""
    return Hypergraph.from_edge_list([[0, 1], [1, 2]])


class TestVertexSet:
    def test_vertex_count_formula(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        assert cg.num_vertices() == 2 * (2 + 2)
        assert cg.num_vertices() == cg.expected_num_vertices()

    def test_triples_enumeration(self, tiny_hypergraph):
        triples = conflict_vertices(tiny_hypergraph, 2)
        assert ConflictVertex(0, 0, 1) in triples
        assert ConflictVertex(1, 2, 2) in triples
        # Vertex 1 appears in both edges, so it contributes 2 * k triples.
        assert sum(1 for t in triples if t.vertex == 1) == 4

    def test_invalid_k_rejected(self, tiny_hypergraph):
        with pytest.raises(ReductionError):
            ConflictGraph(tiny_hypergraph, k=0)
        with pytest.raises(ReductionError):
            conflict_vertices(tiny_hypergraph, 0)

    def test_triples_of_edge_and_vertex(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        assert len(cg.triples_of_edge(0)) == 2 * 2
        assert len(cg.triples_of_vertex(1)) == 2 * 2
        assert all(t.edge == 0 for t in cg.triples_of_edge(0))
        assert all(t.vertex == 1 for t in cg.triples_of_vertex(1))

    def test_build_conflict_graph_convenience(self, tiny_hypergraph):
        cg = build_conflict_graph(tiny_hypergraph, 2)
        assert isinstance(cg, ConflictGraph)


class TestEdgeRelations:
    def test_e_vertex_joins_same_vertex_different_colors(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        a = ConflictVertex(0, 1, 1)
        b = ConflictVertex(1, 1, 2)
        assert "vertex" in cg.edge_kinds(a, b)
        assert cg.graph.has_edge(a, b)

    def test_e_vertex_same_color_not_vertex_related(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        a = ConflictVertex(0, 1, 1)
        b = ConflictVertex(1, 1, 1)
        assert "vertex" not in cg.edge_kinds(a, b)

    def test_e_edge_joins_triples_of_same_hyperedge(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        a = ConflictVertex(0, 0, 1)
        b = ConflictVertex(0, 1, 2)
        assert "edge" in cg.edge_kinds(a, b)
        assert cg.graph.has_edge(a, b)

    def test_e_edge_makes_each_hyperedge_a_clique(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        triples = cg.triples_of_edge(0)
        assert cg.graph.is_clique(triples)

    def test_e_color_joins_same_color_across_shared_edge(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        # Vertices 0 and 1 are both in hyperedge 0, so (e0, 0, c) ~ (e1, 1, c).
        a = ConflictVertex(0, 0, 1)
        b = ConflictVertex(1, 1, 1)
        assert "color" in cg.edge_kinds(a, b)
        assert cg.graph.has_edge(a, b)

    def test_e_color_requires_distinct_vertices(self, tiny_hypergraph):
        # Same vertex, same color, different edges: NOT adjacent (the paper's
        # Lemma 2.1(a) proof requires u != v; see DESIGN.md).
        cg = ConflictGraph(tiny_hypergraph, k=2)
        a = ConflictVertex(0, 1, 1)
        b = ConflictVertex(1, 1, 1)
        assert cg.edge_kinds(a, b) == set()
        assert not cg.graph.has_edge(a, b)

    def test_e_color_requires_witnessing_edge_among_the_two(self):
        # Vertices 0 and 2 never share a hyperedge; their same-color triples
        # must not be adjacent even though both share edges with vertex 1.
        h = Hypergraph.from_edge_list([[0, 1], [1, 2]])
        cg = ConflictGraph(h, k=1)
        a = ConflictVertex(0, 0, 1)
        b = ConflictVertex(1, 2, 1)
        assert cg.edge_kinds(a, b) == set()
        assert not cg.graph.has_edge(a, b)

    def test_non_adjacent_triples(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        a = ConflictVertex(0, 0, 1)
        b = ConflictVertex(1, 2, 2)
        assert cg.edge_kinds(a, b) == set()
        assert not cg.graph.has_edge(a, b)

    def test_classify_self_pair_is_empty(self, tiny_hypergraph):
        a = ConflictVertex(0, 0, 1)
        assert classify_conflict_edge(a, a, tiny_hypergraph) == set()

    def test_relations_can_overlap(self, tiny_hypergraph):
        cg = ConflictGraph(tiny_hypergraph, k=2)
        # Same hyperedge and same color: both E_edge and E_color apply.
        a = ConflictVertex(0, 0, 1)
        b = ConflictVertex(0, 1, 1)
        kinds = cg.edge_kinds(a, b)
        assert "edge" in kinds and "color" in kinds


class TestStructuralInvariants:
    def test_every_graph_edge_is_classified(self, colorable_instance):
        hypergraph, _ = colorable_instance
        cg = ConflictGraph(hypergraph, k=3)
        for a, b in cg.graph.edges():
            assert cg.edge_kinds(a, b), f"edge ({a}, {b}) has no defining relation"

    def test_host_assignment_maps_each_triple_to_its_vertex(self, colorable_instance):
        hypergraph, _ = colorable_instance
        cg = ConflictGraph(hypergraph, k=2)
        for triple, host in cg.host_assignment().items():
            assert host == triple.vertex

    @given(hypergraphs(max_n=8, max_m=5, max_edge=3), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_adjacency_matches_classification_exactly(self, h, k):
        cg = ConflictGraph(h, k)
        triples = sorted(cg.graph.vertices, key=repr)
        for i, a in enumerate(triples):
            for b in triples[i + 1:]:
                expected = bool(classify_conflict_edge(a, b, h))
                assert cg.graph.has_edge(a, b) == expected

    @given(hypergraphs(max_n=10, max_m=6, max_edge=4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_vertex_count_formula_property(self, h, k):
        cg = ConflictGraph(h, k)
        assert cg.num_vertices() == k * h.total_edge_size()

    def test_conflict_graph_of_edgeless_hypergraph_is_empty(self):
        h = Hypergraph(vertices=[0, 1, 2])
        cg = ConflictGraph(h, k=3)
        assert cg.num_vertices() == 0
        assert cg.num_edges() == 0
