"""Property tests: the bucketed conflict-graph builder vs. the edge oracle.

The bucketed builder in :mod:`repro.core.conflict_graph` emits adjacency
directly from the E_vertex / E_edge / E_color bucket structure.  These
tests check it on ~50 random small hypergraphs for every palette size
k ∈ {1, 2, 3} against two independent references:

* the :func:`classify_conflict_edge` oracle (pairwise definition of the
  paper's three relations), and
* the retained legacy pairwise-emit builder from the seed.

They also pin the closed-form vertex count, the canonical interning order
and determinism across rebuilds.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ConflictGraph,
    classify_conflict_edge,
    conflict_vertices,
    legacy_build_graph,
)
from repro.hypergraph import Hypergraph

N_INSTANCES = 50


def _random_hypergraph(rng: random.Random) -> Hypergraph:
    n = rng.randint(1, 10)
    m = rng.randint(0, 7)
    h = Hypergraph(vertices=range(n))
    for i in range(m):
        size = rng.randint(1, min(4, n))
        h.add_edge(rng.sample(range(n), size), edge_id=i)
    return h


def _instances():
    rng = random.Random(20260727)
    return [(i, _random_hypergraph(rng)) for i in range(N_INSTANCES)]


@pytest.mark.parametrize("k", [1, 2, 3])
def test_builder_matches_classification_oracle(k):
    for idx, h in _instances():
        cg = ConflictGraph(h, k)
        triples = conflict_vertices(h, k)
        assert list(cg.graph) == triples, f"instance {idx}: interning order drifted"
        assert cg.num_vertices() == cg.expected_num_vertices() == k * h.total_edge_size()
        expected_edges = set()
        for i, a in enumerate(triples):
            for b in triples[i + 1:]:
                if classify_conflict_edge(a, b, h):
                    expected_edges.add(frozenset((a, b)))
        actual_edges = {frozenset(e) for e in cg.graph.edges()}
        assert actual_edges == expected_edges, f"instance {idx} (k={k}): edge set differs"


@pytest.mark.parametrize("k", [1, 2, 3])
def test_builder_matches_legacy_builder(k):
    for idx, h in _instances():
        cg = ConflictGraph(h, k)
        assert cg.graph == legacy_build_graph(h, k), f"instance {idx} (k={k})"


def test_builder_is_deterministic_across_rebuilds():
    for _idx, h in _instances()[:10]:
        first = ConflictGraph(h, 3)
        second = ConflictGraph(h, 3)
        assert list(first.graph) == list(second.graph)
        assert list(first.graph.edges()) == list(second.graph.edges())
        frozen_a, frozen_b = first.frozen(), second.frozen()
        assert frozen_a.labels() == frozen_b.labels()
        assert frozen_a.bitsets() == frozen_b.bitsets()


def test_frozen_view_is_cached_and_consistent():
    h = Hypergraph.from_edge_list([[0, 1, 2], [2, 3], [1, 3, 4]])
    cg = ConflictGraph(h, 2)
    frozen = cg.frozen()
    assert frozen is cg.frozen()
    assert frozen.num_edges() == cg.num_edges()
    assert frozen.labels() == tuple(conflict_vertices(h, 2))
