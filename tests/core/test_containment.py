"""Tests for the containment-direction companion: cluster-by-cluster SLOCAL MaxIS."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clusterwise_maxis
from repro.core.containment import is_maximal
from repro.decomposition import ball_carving_decomposition
from repro.exceptions import ReductionError
from repro.graphs import (
    Graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    independence_number,
    is_maximal_independent_set,
    path_graph,
    verify_independent_set,
)

from tests.conftest import graphs


class TestClusterwiseMaxIS:
    def test_result_is_maximal_independent_set(self, random_graph):
        result = clusterwise_maxis(random_graph)
        verify_independent_set(random_graph, result.independent_set)
        assert is_maximal(random_graph, result)

    def test_empty_graph(self):
        result = clusterwise_maxis(Graph())
        assert result.independent_set == set()
        assert result.locality == 0

    def test_path_graph_is_solved_optimally(self):
        g = path_graph(9)
        result = clusterwise_maxis(g)
        # Path graphs are easy: every cluster solve is exact, and since the
        # decomposition covers the whole path the selection is near-optimal;
        # at minimum it is maximal and at least half the optimum.
        assert len(result.independent_set) * 2 >= independence_number(g)

    def test_quality_on_small_random_graphs(self):
        for seed in range(3):
            g = erdos_renyi_graph(20, 0.2, seed=seed)
            result = clusterwise_maxis(g)
            alpha = independence_number(g)
            # The cluster-by-cluster optimum never does worse than the trivial
            # (Δ+1) maximality guarantee and usually much better.
            assert len(result.independent_set) * (g.max_degree() + 1) >= alpha

    def test_respects_given_decomposition(self):
        g = grid_graph(4, 4)
        decomposition = ball_carving_decomposition(g, radius=1)
        result = clusterwise_maxis(g, decomposition=decomposition)
        assert result.decomposition is decomposition
        assert is_maximal_independent_set(g, result.independent_set)

    def test_cluster_contributions_sum_to_set_size(self, random_graph):
        result = clusterwise_maxis(random_graph)
        assert sum(result.cluster_contributions.values()) == len(result.independent_set)

    def test_locality_reflects_cluster_diameter(self):
        g = cycle_graph(16)
        decomposition = ball_carving_decomposition(g, radius=2)
        result = clusterwise_maxis(g, decomposition=decomposition)
        assert result.locality <= 2 * 2 + 1

    def test_greedy_fallback_for_large_clusters(self):
        g = erdos_renyi_graph(30, 0.15, seed=9)
        result = clusterwise_maxis(g, cluster_size_limit=2)
        assert is_maximal_independent_set(g, result.independent_set)

    def test_uncolored_cluster_rejected(self):
        g = path_graph(4)
        decomposition = ball_carving_decomposition(g, radius=1)
        decomposition.cluster_colors.clear()
        with pytest.raises(ReductionError):
            clusterwise_maxis(g, decomposition=decomposition)

    @given(graphs(max_n=12), st.integers(min_value=0, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_always_maximal_property(self, g, radius):
        decomposition = ball_carving_decomposition(g, radius=radius)
        result = clusterwise_maxis(g, decomposition=decomposition)
        assert is_maximal_independent_set(g, result.independent_set)
