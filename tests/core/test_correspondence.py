"""Tests for the Lemma 2.1 correspondence between colorings and independent sets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConflictGraph,
    ConflictVertex,
    coloring_to_independent_set,
    happy_edges_of_independent_set,
    independent_set_to_coloring,
    maximum_independent_set_size_bound,
    verify_lemma_21a,
    verify_lemma_21b,
)
from repro.exceptions import ColoringError, IndependenceError, ReductionError
from repro.graphs import independence_number, verify_independent_set
from repro.hypergraph import Hypergraph, colorable_almost_uniform_hypergraph
from repro.maxis import get_approximator

from tests.conftest import colorable_hypergraphs


@pytest.fixture
def instance():
    hypergraph, planted = colorable_almost_uniform_hypergraph(n=20, m=10, k=3, seed=17)
    return hypergraph, planted, ConflictGraph(hypergraph, 3)


class TestLemma21a:
    def test_induced_set_has_size_m_and_is_independent(self, instance):
        hypergraph, planted, cg = instance
        witness = verify_lemma_21a(cg, planted)
        assert len(witness) == hypergraph.num_edges()
        verify_independent_set(cg.graph, witness)

    def test_one_triple_per_hyperedge(self, instance):
        hypergraph, planted, cg = instance
        witness = coloring_to_independent_set(cg, planted)
        assert {t.edge for t in witness} == set(hypergraph.edge_ids)

    def test_triples_respect_the_coloring(self, instance):
        _, planted, cg = instance
        for t in coloring_to_independent_set(cg, planted):
            assert planted[t.vertex] == t.color

    def test_non_conflict_free_coloring_rejected_in_strict_mode(self):
        h = Hypergraph.from_edge_list([[0, 1]])
        cg = ConflictGraph(h, 1)
        with pytest.raises(ColoringError):
            coloring_to_independent_set(cg, {0: 1, 1: 1})

    def test_partial_mode_skips_unhappy_edges(self):
        h = Hypergraph.from_edge_list([[0, 1], [2, 3]])
        cg = ConflictGraph(h, 1)
        witness = coloring_to_independent_set(
            cg, {0: 1, 1: 1, 2: 1}, require_conflict_free=False
        )
        assert {t.edge for t in witness} == {1}

    def test_out_of_palette_color_rejected(self):
        h = Hypergraph.from_edge_list([[0, 1]])
        cg = ConflictGraph(h, 1)
        with pytest.raises(ColoringError):
            coloring_to_independent_set(cg, {0: 5, 1: 1})

    def test_maximum_size_bound_is_m(self, instance):
        hypergraph, _, cg = instance
        assert maximum_independent_set_size_bound(cg) == hypergraph.num_edges()

    def test_no_independent_set_exceeds_m_on_small_instance(self):
        hypergraph, planted = colorable_almost_uniform_hypergraph(n=8, m=4, k=2, seed=23)
        cg = ConflictGraph(hypergraph, 2)
        alpha = independence_number(cg.graph)
        assert alpha == hypergraph.num_edges()

    @given(colorable_hypergraphs(max_n=14, max_m=6, max_k=3))
    @settings(max_examples=20, deadline=None)
    def test_lemma_21a_property(self, triple):
        hypergraph, planted, k = triple
        cg = ConflictGraph(hypergraph, k)
        witness = verify_lemma_21a(cg, planted)
        assert len(witness) == hypergraph.num_edges()


class TestLemma21b:
    def test_induced_coloring_well_defined(self, instance):
        _, _, cg = instance
        approx = get_approximator("greedy-min-degree")
        independent_set = approx(cg.graph)
        coloring = independent_set_to_coloring(cg, independent_set)
        # One color per vertex and all colors within the palette.
        for v, c in coloring.items():
            assert 1 <= c <= cg.k

    def test_happy_edges_at_least_independent_set_size(self, instance):
        _, _, cg = instance
        for name in ("greedy-min-degree", "luby-best-of-5", "clique-cover"):
            independent_set = get_approximator(name)(cg.graph)
            happy = verify_lemma_21b(cg, independent_set)
            assert len(happy) >= len(independent_set)

    def test_selected_edges_are_happy(self, instance):
        _, _, cg = instance
        independent_set = get_approximator("greedy-min-degree")(cg.graph)
        happy = happy_edges_of_independent_set(cg, independent_set)
        assert {t.edge for t in independent_set} <= happy

    def test_empty_independent_set_gives_empty_coloring(self, instance):
        _, _, cg = instance
        assert independent_set_to_coloring(cg, set()) == {}
        assert happy_edges_of_independent_set(cg, set()) == set()

    def test_non_independent_input_rejected(self, instance):
        _, _, cg = instance
        triples = sorted(cg.graph.vertices, key=repr)
        a = triples[0]
        neighbor = next(iter(cg.graph.neighbors(a)))
        with pytest.raises(IndependenceError):
            independent_set_to_coloring(cg, {a, neighbor})

    def test_non_triple_input_rejected(self, instance):
        _, _, cg = instance
        with pytest.raises(ReductionError):
            independent_set_to_coloring(cg, {"not-a-triple"})

    @given(colorable_hypergraphs(max_n=14, max_m=6, max_k=3),
           st.sampled_from(["greedy-min-degree", "luby-best-of-5"]))
    @settings(max_examples=20, deadline=None)
    def test_lemma_21b_property(self, triple, approximator_name):
        hypergraph, _, k = triple
        cg = ConflictGraph(hypergraph, k)
        if cg.graph.num_vertices() == 0:
            return
        independent_set = get_approximator(approximator_name)(cg.graph)
        happy = verify_lemma_21b(cg, independent_set)
        assert len(happy) >= len(independent_set)


class TestRoundTrip:
    def test_coloring_to_set_to_coloring_preserves_witnesses(self, instance):
        hypergraph, planted, cg = instance
        witness = coloring_to_independent_set(cg, planted)
        recovered = independent_set_to_coloring(cg, witness)
        # The recovered coloring is a restriction of the planted coloring to
        # the chosen witness vertices.
        for v, c in recovered.items():
            assert planted[v] == c
        # And it keeps every edge happy (each edge kept its unique witness).
        happy = happy_edges_of_independent_set(cg, witness)
        assert happy == set(hypergraph.edge_ids)
