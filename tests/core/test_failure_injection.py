"""Failure-injection tests: the reduction must reject misbehaving oracles loudly.

The reduction consumes an untrusted λ-approximation oracle.  These tests
feed it oracles that violate the contract in different ways — returning
non-independent sets, foreign vertices, empty sets, or nonsense objects —
and check that the error surfaces as a library exception instead of a
silently wrong multicoloring.
"""

from __future__ import annotations

import pytest

from repro.core import ConflictFreeMulticoloringViaMaxIS, ConflictVertex
from repro.exceptions import IndependenceError, ReductionError, ReproError
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.maxis import get_approximator


@pytest.fixture
def instance():
    hypergraph, _ = colorable_almost_uniform_hypergraph(n=18, m=10, k=2, seed=71)
    return hypergraph


def _reduction(oracle):
    return ConflictFreeMulticoloringViaMaxIS(k=2, approximator=oracle, lam=4.0)


class TestMisbehavingOracles:
    def test_non_independent_output_rejected(self, instance):
        def bad_oracle(graph):
            # Return an entire E_edge clique: maximally dependent.
            some_vertex = next(iter(graph.vertices))
            return {some_vertex} | graph.neighbors(some_vertex)

        with pytest.raises(IndependenceError):
            _reduction(bad_oracle).run(instance)

    def test_foreign_vertices_rejected(self, instance):
        def foreign_oracle(graph):
            return {ConflictVertex(edge="ghost", vertex="ghost", color=1)}

        with pytest.raises(ReproError):
            _reduction(foreign_oracle).run(instance)

    def test_empty_output_rejected(self, instance):
        with pytest.raises(ReductionError):
            _reduction(lambda graph: set()).run(instance)

    def test_non_triple_output_rejected(self, instance):
        with pytest.raises(ReproError):
            _reduction(lambda graph: {"not-a-triple"}).run(instance)

    def test_oracle_exceptions_propagate(self, instance):
        def exploding_oracle(graph):
            raise RuntimeError("oracle crashed")

        with pytest.raises(RuntimeError):
            _reduction(exploding_oracle).run(instance)

    def test_partial_progress_is_not_committed_on_failure(self, instance):
        calls = {"count": 0}

        def flaky_oracle(graph):
            calls["count"] += 1
            if calls["count"] == 1:
                # behave correctly once so phase 1 succeeds …
                return get_approximator("luby-best-of-5")(graph)
            raise RuntimeError("oracle crashed in phase 2")

        weak_first_phase = ConflictFreeMulticoloringViaMaxIS(
            k=2,
            approximator=lambda g: set(sorted(flaky_oracle(g), key=repr)[:2]),
            lam=8.0,
        )
        with pytest.raises(RuntimeError):
            weak_first_phase.run(instance)


class TestHonestOracleStillWorks:
    def test_honest_run_after_failures(self, instance):
        result = _reduction(get_approximator("greedy-min-degree")).run(instance)
        assert result.num_phases >= 1
        assert result.total_colors <= result.color_bound
