"""Property tests: incrementally maintained conflict graph vs. rebuilds.

The reduction's phase engine maintains one :class:`ConflictGraph` across
phases via :meth:`ConflictGraph.remove_hyperedges` instead of rebuilding
``G^i_k`` from scratch.  These tests simulate random phase histories on
~50 random hypergraphs for every palette size k ∈ {1, 2, 3} and, after
*every* deletion batch, compare the maintained instance against a
from-scratch ``ConflictGraph(H_i, k)`` rebuild on three axes:

* the vertex set and interning order (canonical triple order),
* the full edge set (mutable graph equality + frozen bitsets), and
* the maintained E_vertex/E_edge/E_color bucket structure.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ConflictGraph
from repro.core.conflict_graph import conflict_vertices
from repro.exceptions import ReductionError
from repro.graphs.indexed import iter_bits
from repro.hypergraph import Hypergraph

N_INSTANCES = 50


def _random_hypergraph(rng: random.Random) -> Hypergraph:
    n = rng.randint(1, 10)
    m = rng.randint(1, 7)
    h = Hypergraph(vertices=range(n))
    for i in range(m):
        size = rng.randint(1, min(4, n))
        h.add_edge(rng.sample(range(n), size), edge_id=i)
    return h


def _instances():
    rng = random.Random(20260728)
    return [(i, _random_hypergraph(rng), rng) for i in range(N_INSTANCES)]


def _assert_matches_rebuild(cg: ConflictGraph, h: Hypergraph, k: int, ctx: str) -> None:
    rebuilt = ConflictGraph(h, k)
    # Vertex set, canonical interning order, closed-form count.
    assert list(cg.graph) == conflict_vertices(h, k), f"{ctx}: interning order"
    assert cg.num_vertices() == rebuilt.num_vertices() == k * h.total_edge_size(), ctx
    # Edge set (mutable graph equality is label-based and order-free).
    assert cg.graph == rebuilt.graph, f"{ctx}: edge set"
    assert cg.num_edges() == rebuilt.num_edges(), ctx
    # Frozen view: alive subsequence of the original table == fresh table,
    # with identical masked adjacency under the order-preserving id map.
    view, fresh = cg.frozen(), rebuilt.frozen()
    ids = list(view.vertex_ids())
    assert [view.label(i) for i in ids] == list(fresh.labels()), f"{ctx}: frozen labels"
    pos = {orig: p for p, orig in enumerate(ids)}
    for p, orig in enumerate(ids):
        mapped = {pos[j] for j in iter_bits(view.neighbor_bitset(orig))}
        assert mapped == set(iter_bits(fresh.neighbor_bitset(p))), f"{ctx}: row {p}"
    # Maintained bucket structure == freshly built bucket structure.
    assert cg.bucket_structure() == rebuilt.bucket_structure(), f"{ctx}: buckets"


@pytest.mark.parametrize("k", [1, 2, 3])
def test_incremental_deletions_match_rebuilds(k):
    for idx, h, rng in _instances():
        working = h.copy()
        cg = ConflictGraph(working, k)
        _assert_matches_rebuild(cg, working, k, f"instance {idx} (k={k}) initial")
        step = 0
        while working.num_edges() > 0:
            step += 1
            ids = working.edge_ids
            batch = rng.sample(ids, rng.randint(1, len(ids)))
            working.remove_edges(batch)
            cg.remove_hyperedges(batch)
            _assert_matches_rebuild(
                cg, working, k, f"instance {idx} (k={k}) step {step}"
            )


def test_remove_unknown_edge_is_rejected_and_state_preserved():
    h = Hypergraph.from_edge_list([[0, 1], [1, 2]])
    cg = ConflictGraph(h, 2)
    before = cg.bucket_structure()
    with pytest.raises(ReductionError):
        cg.remove_hyperedges([0, "missing"])
    assert cg.bucket_structure() == before
    assert cg.num_vertices() == 2 * h.total_edge_size()


def test_remove_with_duplicate_ids_behaves_like_single_removal():
    h = Hypergraph.from_edge_list([[0, 1, 2], [2, 3], [1, 3]])
    cg = ConflictGraph(h, 2)
    cg.remove_hyperedges([1, 1, 1])
    h.remove_edge(1)
    assert cg.graph == ConflictGraph(h, 2).graph
    assert cg.bucket_structure() == ConflictGraph(h, 2).bucket_structure()


def test_remove_all_edges_empties_the_graph():
    h = Hypergraph.from_edge_list([[0, 1, 2], [2, 3]])
    cg = ConflictGraph(h, 3)
    cg.remove_hyperedges([0, 1])
    h.remove_edges([0, 1])
    assert cg.num_vertices() == 0
    assert cg.num_edges() == 0
    assert cg.graph.num_vertices() == 0
    assert cg.bucket_structure() == {
        "vertex_color": {},
        "by_vertex": {},
        "edge_blocks": {},
    }


def test_frozen_sorted_view_tracks_deletions():
    """frozen_sorted() after deletions == freeze_sorted of a fresh rebuild."""
    from repro.graphs.indexed import freeze_sorted

    h = Hypergraph.from_edge_list([[0, 1, 2], [2, 3], [1, 3, 4], [0, 4]])
    cg = ConflictGraph(h, 2)
    cg.frozen_sorted()  # materialize before deleting: masks must track
    cg.remove_hyperedges([1, 3])
    h.remove_edges([1, 3])
    view = cg.frozen_sorted()
    reference = freeze_sorted(ConflictGraph(h, 2).graph)
    ids = list(view.vertex_ids())
    assert [view.label(i) for i in ids] == list(reference.labels())
    pos = {orig: p for p, orig in enumerate(ids)}
    for p, orig in enumerate(ids):
        mapped = {pos[j] for j in iter_bits(view.neighbor_bitset(orig))}
        assert mapped == set(iter_bits(reference.neighbor_bitset(p)))


def test_frozen_sorted_created_after_deletions():
    h = Hypergraph.from_edge_list([[0, 1, 2], [2, 3], [1, 3, 4]])
    cg = ConflictGraph(h, 2)
    cg.remove_hyperedges([0])
    h.remove_edges([0])
    from repro.graphs.indexed import freeze_sorted

    view = cg.frozen_sorted()
    reference = freeze_sorted(ConflictGraph(h, 2).graph)
    assert [view.label(i) for i in view.vertex_ids()] == list(reference.labels())
    assert view.num_edges() == reference.num_edges()
