"""Tests for the phase-based reduction of Theorem 1.1 and its certificates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import is_conflict_free_multicoloring, verify_conflict_free_multicoloring
from repro.core import (
    ConflictFreeMulticoloringViaMaxIS,
    phase_budget,
    solve_conflict_free_multicoloring,
    verify_reduction_result,
)
from repro.core.certificates import check_decay, check_phase_accounting
from repro.exceptions import ReductionError, VerificationError
from repro.hypergraph import Hypergraph, colorable_almost_uniform_hypergraph, sunflower_hypergraph
from repro.maxis import get_approximator

from tests.conftest import colorable_hypergraphs


def _weak_oracle(fraction_of_max: float):
    """An intentionally weak oracle returning roughly a fraction of the greedy set.

    Used to exercise multi-phase behaviour: the reduction must still finish
    (every phase removes at least one edge) but needs more phases.
    """

    def solve(graph):
        full = get_approximator("greedy-min-degree")(graph)
        target = max(1, int(len(full) * fraction_of_max))
        return set(sorted(full, key=repr)[:target])

    return solve


class TestBasicRuns:
    def test_greedy_oracle_run_is_conflict_free_and_within_budget(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        verify_conflict_free_multicoloring(hypergraph, result.multicoloring)
        assert result.within_phase_bound()
        assert result.within_color_bound()
        assert result.phase_bound == phase_budget(4.0, hypergraph.num_edges())

    def test_exact_oracle_finishes_in_one_phase_on_colorable_instance(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=12, m=6, k=2, seed=31)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=2, approximator=get_approximator("exact"), lam=1.0
        )
        assert result.num_phases == 1
        assert result.total_colors <= 2

    def test_weak_oracle_needs_more_phases_but_still_finishes(self, colorable_instance):
        hypergraph, _ = colorable_instance
        strong = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        weak = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=_weak_oracle(0.3), lam=4.0
        )
        assert is_conflict_free_multicoloring(hypergraph, weak.multicoloring)
        assert weak.num_phases >= strong.num_phases
        assert weak.total_colors >= strong.total_colors

    def test_edgeless_hypergraph_trivially_solved(self):
        hypergraph = Hypergraph(vertices=[0, 1, 2])
        result = solve_conflict_free_multicoloring(
            hypergraph, k=2, approximator=get_approximator("greedy-min-degree"), lam=2.0
        )
        # No phase runs on an edgeless input: the phase list is empty (no
        # synthetic all-zero record) and the empty multicoloring is
        # vacuously conflict-free.
        assert result.total_colors == 0
        assert result.num_phases == 0
        assert result.phases == []
        assert result.remaining_edges_series() == []
        assert result.within_phase_bound() and result.within_color_bound()

    def test_sunflower_instance(self):
        hypergraph = sunflower_hypergraph(n_petals=6, petal_size=2, core_size=1)
        result = solve_conflict_free_multicoloring(
            hypergraph, k=2, approximator=get_approximator("greedy-min-degree"), lam=3.0
        )
        verify_conflict_free_multicoloring(hypergraph, result.multicoloring)


class TestPhaseRecords:
    def test_phase_accounting_is_consistent(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=_weak_oracle(0.4), lam=5.0
        )
        assert check_phase_accounting(result) == []
        series = result.remaining_edges_series()
        assert series[0] == hypergraph.num_edges()
        assert series[-1] == 0
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_each_phase_uses_a_private_palette(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=_weak_oracle(0.4), lam=5.0
        )
        for color in result.multicoloring.all_colors():
            phase, palette_color = color
            assert 1 <= phase <= result.num_phases
            assert 1 <= palette_color <= 3

    def test_total_colors_bounded_by_k_times_phases(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=_weak_oracle(0.5), lam=5.0
        )
        assert result.total_colors <= 3 * result.num_phases

    def test_phase_records_report_conflict_graph_sizes(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        first = result.phases[0]
        assert first.conflict_graph_vertices == 3 * hypergraph.total_edge_size()
        assert first.conflict_graph_edges > 0
        assert first.removal_fraction > 0


class TestParameterValidation:
    def test_invalid_k_and_lambda(self):
        with pytest.raises(ReductionError):
            ConflictFreeMulticoloringViaMaxIS(k=0, approximator=lambda g: set(), lam=2.0)
        with pytest.raises(ReductionError):
            ConflictFreeMulticoloringViaMaxIS(k=2, approximator=lambda g: set(), lam=0.5)

    def test_empty_oracle_output_detected(self, colorable_instance):
        hypergraph, _ = colorable_instance
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=3, approximator=lambda graph: set(), lam=2.0
        )
        with pytest.raises(ReductionError):
            reduction.run(hypergraph)

    def test_max_phases_cap_enforced(self, colorable_instance):
        hypergraph, _ = colorable_instance
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=3, approximator=_weak_oracle(0.05), lam=1.0, max_phases=1
        )
        with pytest.raises(ReductionError):
            reduction.run(hypergraph)

    def test_strict_mode_raises_when_budget_exceeded(self, colorable_instance):
        hypergraph, _ = colorable_instance
        # λ = 1 allocates very few phases; the deliberately weak oracle cannot
        # keep that pace, so strict mode must flag the violation.
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=3, approximator=_weak_oracle(0.05), lam=1.0, strict=True
        )
        with pytest.raises(ReductionError):
            reduction.run(hypergraph)


class TestCertificates:
    def test_report_for_valid_run(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        report = verify_reduction_result(hypergraph, result)
        assert report.conflict_free
        assert report.within_color_budget
        assert report.within_phase_budget
        assert report.all_ok

    def test_decay_check_flags_slow_phases(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=_weak_oracle(0.05), lam=1.0
        )
        # λ = 1 promises that every phase removes all edges; the weak oracle
        # cannot achieve that, so the decay check reports violations.
        assert check_decay(result)
        with pytest.raises(VerificationError):
            verify_reduction_result(hypergraph, result, require_decay=True)

    def test_certificate_rejects_tampered_multicoloring(self, colorable_instance):
        hypergraph, _ = colorable_instance
        result = solve_conflict_free_multicoloring(
            hypergraph, k=3, approximator=get_approximator("greedy-min-degree"), lam=4.0
        )
        # Remove all colors to break conflict-freeness.
        from repro.coloring import Multicoloring

        result.multicoloring = Multicoloring()
        with pytest.raises(VerificationError):
            verify_reduction_result(hypergraph, result)


class TestProperties:
    @given(colorable_hypergraphs(max_n=16, max_m=8, max_k=3),
           st.sampled_from(["greedy-min-degree", "luby-best-of-5", "clique-cover"]))
    @settings(max_examples=20, deadline=None)
    def test_reduction_always_produces_conflict_free_multicoloring(self, triple, oracle_name):
        hypergraph, _, k = triple
        result = solve_conflict_free_multicoloring(
            hypergraph, k=k, approximator=get_approximator(oracle_name), lam=8.0
        )
        verify_conflict_free_multicoloring(hypergraph, result.multicoloring)
        assert check_phase_accounting(result) == []

    @given(colorable_hypergraphs(max_n=14, max_m=7, max_k=2))
    @settings(max_examples=15, deadline=None)
    def test_exact_oracle_respects_lemma_guarantee(self, triple):
        hypergraph, _, k = triple
        result = solve_conflict_free_multicoloring(
            hypergraph, k=k, approximator=get_approximator("exact"), lam=1.0
        )
        # With λ = 1 and a colorable instance, Lemma 2.1(a) forces one phase.
        assert result.num_phases == 1
        assert result.within_phase_bound()
