"""End-to-end equality: the incremental phase engine vs. rebuild-per-phase.

``ConflictFreeMulticoloringViaMaxIS.run`` (build/freeze once, alive-mask
views per phase, in-place edge removal) must produce exactly the same
:class:`ReductionResult` as the retained ``run_rebuild`` reference path
(fresh hypergraph restriction + conflict-graph rebuild every phase):
identical phase records (including happy-edge sets and conflict-graph
sizes), identical multicoloring, identical bounds — for every registered
oracle, for λ-capped oracles that force the multi-phase worst-case
regime, and for plain-callable oracles that bypass the frozen fast path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import capped_oracle
from repro.coloring import verify_conflict_free_multicoloring
from repro.core import ConflictFreeMulticoloringViaMaxIS
from repro.hypergraph import Hypergraph, colorable_almost_uniform_hypergraph
from repro.maxis import available_approximators, get_approximator

from tests.conftest import colorable_hypergraphs


def _assert_results_identical(a, b):
    assert a.phases == b.phases  # PhaseRecord dataclass equality: all fields
    assert a.multicoloring == b.multicoloring
    assert (a.k, a.lam, a.phase_bound, a.color_bound) == (
        b.k,
        b.lam,
        b.phase_bound,
        b.color_bound,
    )


class TestEngineEqualsRebuild:
    @pytest.mark.parametrize("oracle_name", sorted(available_approximators()))
    def test_every_registered_oracle(self, oracle_name):
        # Kept small enough that the exponential exact oracle stays fast.
        n, m = (12, 6) if oracle_name == "exact" else (18, 9)
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=n, m=m, k=3, seed=11)
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=3, approximator=get_approximator(oracle_name), lam=4.0
        )
        _assert_results_identical(
            reduction.run(hypergraph), reduction.run_rebuild(hypergraph)
        )

    @pytest.mark.parametrize("base", ["greedy-first-fit", "greedy-min-degree"])
    def test_capped_oracles_multi_phase_regime(self, base):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=40, m=25, k=3, seed=23)
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=3, approximator=capped_oracle(base, 4.0), lam=4.0
        )
        result = reduction.run(hypergraph)
        assert result.num_phases >= 3  # genuinely exercises the engine
        _assert_results_identical(result, reduction.run_rebuild(hypergraph))
        verify_conflict_free_multicoloring(hypergraph, result.multicoloring)

    def test_plain_callable_oracle_bypasses_frozen_fast_path(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=20, m=10, k=3, seed=5)

        calls = []

        def oracle(graph):
            from repro.graphs.graph import Graph

            calls.append(type(graph))
            full = sorted(get_approximator("greedy-first-fit")(graph), key=repr)
            return set(full[: max(1, len(full) // 3)])

        reduction = ConflictFreeMulticoloringViaMaxIS(k=3, approximator=oracle, lam=6.0)
        result = reduction.run(hypergraph)
        # Plain callables keep receiving the mutable Graph, exactly as before.
        from repro.graphs.graph import Graph

        assert calls and all(t is Graph for t in calls)
        _assert_results_identical(result, reduction.run_rebuild(hypergraph))

    def test_graph_only_approximator_works_by_default(self):
        # accepts_frozen defaults to False: a custom approximator written
        # against the pre-incremental mutable-Graph contract (``.vertices``
        # does not exist on a frozen view) must keep working unchanged.
        from repro.maxis import MaxISApproximator

        hypergraph, _ = colorable_almost_uniform_hypergraph(n=16, m=8, k=2, seed=17)

        def graph_only_solve(graph):
            return {min(graph.vertices, key=repr)}

        oracle = MaxISApproximator(name="graph-only-tmp", solve=graph_only_solve)
        assert not oracle.accepts_frozen
        reduction = ConflictFreeMulticoloringViaMaxIS(k=2, approximator=oracle, lam=8.0)
        _assert_results_identical(
            reduction.run(hypergraph), reduction.run_rebuild(hypergraph)
        )

    def test_builtins_opt_into_frozen_fast_path(self):
        assert all(a.accepts_frozen for a in available_approximators().values())

    def test_capped_oracle_honours_fractional_lambda(self):
        from repro.graphs import Graph

        g = Graph(vertices=range(10))  # edgeless: first-fit selects all 10
        assert len(capped_oracle("greedy-first-fit", 2.5)(g)) == 4  # ceil(10/2.5)
        assert len(capped_oracle("greedy-first-fit", 1.5)(g)) == 7  # ceil(10/1.5)

    def test_input_hypergraph_is_not_mutated(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=16, m=8, k=2, seed=3)
        snapshot = hypergraph.copy()
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=2, approximator=get_approximator("greedy-first-fit"), lam=4.0
        )
        reduction.run(hypergraph)
        assert hypergraph == snapshot

    def test_edgeless_input_produces_no_phases_on_both_paths(self):
        hypergraph = Hypergraph(vertices=[0, 1, 2])
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=2, approximator=get_approximator("greedy-first-fit"), lam=2.0
        )
        a, b = reduction.run(hypergraph), reduction.run_rebuild(hypergraph)
        _assert_results_identical(a, b)
        assert a.phases == [] and a.total_colors == 0

    @given(
        colorable_hypergraphs(max_n=14, max_m=7, max_k=3),
        st.sampled_from(
            ["greedy-min-degree", "greedy-first-fit", "luby-best-of-5", "clique-cover"]
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_instances(self, triple, oracle_name):
        hypergraph, _, k = triple
        reduction = ConflictFreeMulticoloringViaMaxIS(
            k=k, approximator=get_approximator(oracle_name), lam=8.0
        )
        result = reduction.run(hypergraph)
        _assert_results_identical(result, reduction.run_rebuild(hypergraph))
        verify_conflict_free_multicoloring(hypergraph, result.multicoloring)
