"""Tests for dominating-set verification, greedy approximation and the SLOCAL algorithm."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering import (
    closed_neighborhood,
    domination_number,
    exact_minimum_dominating_set,
    greedy_dominating_set,
    is_dominating_set,
    slocal_dominating_set,
    verify_dominating_set,
)
from repro.exceptions import GraphError, VerificationError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)

from tests.conftest import graphs


class TestVerification:
    def test_accepts_valid_dominating_set(self):
        g = star_graph(5)
        verify_dominating_set(g, {0})
        assert is_dominating_set(g, {0})

    def test_rejects_non_dominating_set(self):
        g = path_graph(5)
        with pytest.raises(VerificationError):
            verify_dominating_set(g, {0})

    def test_rejects_foreign_vertices(self):
        g = path_graph(3)
        with pytest.raises(VerificationError):
            verify_dominating_set(g, {99})

    def test_empty_set_dominates_empty_graph(self):
        verify_dominating_set(Graph(), set())

    def test_closed_neighborhood(self):
        g = path_graph(4)
        assert closed_neighborhood(g, 1) == {0, 1, 2}


class TestExactAndGreedy:
    def test_known_domination_numbers(self):
        assert domination_number(star_graph(6)) == 1
        assert domination_number(complete_graph(5)) == 1
        assert domination_number(path_graph(3)) == 1
        assert domination_number(path_graph(6)) == 2
        assert domination_number(cycle_graph(9)) == 3

    def test_exact_refuses_large_instances(self):
        with pytest.raises(GraphError):
            exact_minimum_dominating_set(erdos_renyi_graph(40, 0.1, seed=1), size_limit=10)

    def test_exact_on_empty_graph(self):
        assert exact_minimum_dominating_set(Graph()) == set()

    def test_greedy_is_dominating(self):
        for seed in range(4):
            g = erdos_renyi_graph(24, 0.15, seed=seed)
            verify_dominating_set(g, greedy_dominating_set(g))

    def test_greedy_handles_isolated_vertices(self):
        g = Graph(vertices=[0, 1, 2], edges=[(0, 1)])
        result = greedy_dominating_set(g)
        verify_dominating_set(g, result)
        assert 2 in result

    def test_greedy_within_logarithmic_factor(self):
        for seed in range(3):
            g = erdos_renyi_graph(18, 0.25, seed=seed)
            greedy = greedy_dominating_set(g)
            optimum = domination_number(g)
            bound = (math.log(g.max_degree() + 1) + 2) * max(optimum, 1)
            assert len(greedy) <= bound

    @given(graphs(max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_greedy_always_dominates(self, g):
        verify_dominating_set(g, greedy_dominating_set(g))

    @given(graphs(max_n=10))
    @settings(max_examples=20, deadline=None)
    def test_exact_never_larger_than_greedy(self, g):
        assert domination_number(g) <= len(greedy_dominating_set(g))


class TestSLOCALDominatingSet:
    def test_output_dominates(self, random_graph):
        verify_dominating_set(random_graph, slocal_dominating_set(random_graph))

    def test_grid_instance(self):
        g = grid_graph(5, 5)
        verify_dominating_set(g, slocal_dominating_set(g))

    def test_every_order_yields_a_dominating_set(self):
        from repro.slocal import adversarial_orders

        g = erdos_renyi_graph(20, 0.15, seed=5)
        for order in adversarial_orders(g, n_random=2, seed=6):
            verify_dominating_set(g, slocal_dominating_set(g, order=order))

    @given(graphs(max_n=12), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_slocal_dominating_set_property(self, g, seed):
        from repro.slocal import random_order

        order = random_order(g, seed=seed)
        verify_dominating_set(g, slocal_dominating_set(g, order=order))
