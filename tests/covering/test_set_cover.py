"""Tests for the set-cover instance model, greedy approximation, and bridges."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covering import (
    SetCoverInstance,
    dominating_set_as_set_cover,
    exact_minimum_set_cover,
    greedy_set_cover,
    harmonic_number,
    hypergraph_vertex_cover_as_set_cover,
    is_set_cover,
    logarithmic_reference,
    set_cover_optimum,
    verify_set_cover,
)
from repro.covering.dominating_set import domination_number
from repro.exceptions import VerificationError
from repro.graphs import path_graph, star_graph
from repro.hypergraph import Hypergraph


@pytest.fixture
def simple_instance() -> SetCoverInstance:
    instance = SetCoverInstance(universe={1, 2, 3, 4, 5})
    instance.add_set("a", {1, 2, 3})
    instance.add_set("b", {3, 4})
    instance.add_set("c", {4, 5})
    instance.add_set("d", {5})
    return instance


class TestInstanceModel:
    def test_add_set_grows_universe(self):
        instance = SetCoverInstance()
        instance.add_set("x", {1, 2})
        assert instance.universe == {1, 2}

    def test_duplicate_set_id_rejected(self, simple_instance):
        with pytest.raises(VerificationError):
            simple_instance.add_set("a", {9})

    def test_coverable_and_max_size(self, simple_instance):
        assert simple_instance.coverable()
        assert simple_instance.max_set_size() == 3

    def test_uncoverable_instance_detected(self):
        instance = SetCoverInstance(universe={1, 2, 99})
        instance.add_set("a", {1, 2})
        assert not instance.coverable()

    def test_greedy_guarantee_is_harmonic(self, simple_instance):
        assert simple_instance.greedy_guarantee() == pytest.approx(harmonic_number(3))


class TestVerification:
    def test_valid_cover_accepted(self, simple_instance):
        verify_set_cover(simple_instance, ["a", "c"])
        assert is_set_cover(simple_instance, ["a", "c"])

    def test_incomplete_cover_rejected(self, simple_instance):
        with pytest.raises(VerificationError):
            verify_set_cover(simple_instance, ["a", "b"])

    def test_unknown_set_id_rejected(self, simple_instance):
        with pytest.raises(VerificationError):
            verify_set_cover(simple_instance, ["nope"])


class TestGreedyAndExact:
    def test_greedy_finds_a_cover(self, simple_instance):
        cover = greedy_set_cover(simple_instance)
        verify_set_cover(simple_instance, cover)

    def test_greedy_on_uncoverable_instance_raises(self):
        instance = SetCoverInstance(universe={1, 2, 3})
        instance.add_set("a", {1})
        with pytest.raises(VerificationError):
            greedy_set_cover(instance)

    def test_exact_optimum(self, simple_instance):
        assert set_cover_optimum(simple_instance) == 2

    def test_exact_refuses_large_families(self):
        instance = SetCoverInstance()
        for i in range(25):
            instance.add_set(i, {i})
        with pytest.raises(VerificationError):
            exact_minimum_set_cover(instance, limit=20)

    def test_greedy_within_harmonic_factor(self, simple_instance):
        greedy = greedy_set_cover(simple_instance)
        optimum = set_cover_optimum(simple_instance)
        assert len(greedy) <= harmonic_number(simple_instance.max_set_size()) * optimum + 1e-9

    def test_harmonic_and_log_reference(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)
        assert logarithmic_reference(0) == 1.0
        assert logarithmic_reference(1) == pytest.approx(1.0)

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=25, deadline=None)
    def test_greedy_property_random_instances(self, n_elements, n_sets, seed):
        import random as _random

        rng = _random.Random(seed)
        instance = SetCoverInstance(universe=set(range(n_elements)))
        # Guarantee coverability with singleton sets, then add random ones.
        for i in range(n_elements):
            instance.add_set(("single", i), {i})
        for j in range(n_sets):
            members = {e for e in range(n_elements) if rng.random() < 0.5}
            if members:
                instance.add_set(("rand", j), members)
        cover = greedy_set_cover(instance)
        verify_set_cover(instance, cover)


class TestBridges:
    def test_dominating_set_bridge(self):
        g = star_graph(4)
        instance = dominating_set_as_set_cover(g)
        assert instance.universe == g.vertices
        assert set_cover_optimum(instance) == domination_number(g) == 1

    def test_dominating_set_bridge_on_path(self):
        g = path_graph(6)
        instance = dominating_set_as_set_cover(g)
        assert set_cover_optimum(instance) == domination_number(g)

    def test_hypergraph_vertex_cover_bridge(self):
        h = Hypergraph.from_edge_list([[0, 1], [1, 2], [2, 3]])
        instance = hypergraph_vertex_cover_as_set_cover(h)
        assert instance.universe == set(h.edge_ids)
        cover = greedy_set_cover(instance)
        # The chosen vertices must together touch every hyperedge.
        touched = set()
        for v in cover:
            touched |= h.edges_containing(v)
        assert touched == set(h.edge_ids)
