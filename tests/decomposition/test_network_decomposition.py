"""Tests for the network-decomposition substrate."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition import (
    Clustering,
    NetworkDecomposition,
    ball_carving_decomposition,
    cluster_graph,
    decomposition_quality,
    polylog_decomposition,
    verify_network_decomposition,
    weak_diameter,
)
from repro.exceptions import ModelError, VerificationError
from repro.graphs import Graph, cycle_graph, erdos_renyi_graph, grid_graph, path_graph

from tests.conftest import graphs


class TestClustering:
    def test_clusters_grouping(self):
        clustering = Clustering(cluster_of={0: "a", 1: "a", 2: "b"})
        assert clustering.clusters() == {"a": {0, 1}, "b": {2}}
        assert clustering.num_clusters() == 2

    def test_verify_partition_detects_missing_and_foreign(self):
        g = path_graph(3)
        with pytest.raises(ModelError):
            Clustering(cluster_of={0: "a"}).verify_partition(g)
        with pytest.raises(ModelError):
            Clustering(cluster_of={0: "a", 1: "a", 2: "a", 9: "a"}).verify_partition(g)

    def test_weak_diameter_uses_host_graph_paths(self):
        g = cycle_graph(6)
        # Vertices 0 and 3 are opposite; weak diameter uses the host distance 3.
        assert weak_diameter(g, {0, 3}) == 3

    def test_weak_diameter_disconnected_raises(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(ModelError):
            weak_diameter(g, {0, 1})

    def test_cluster_graph_adjacency(self):
        g = path_graph(4)
        clustering = Clustering(cluster_of={0: "a", 1: "a", 2: "b", 3: "b"})
        quotient = cluster_graph(g, clustering)
        assert quotient.has_edge("a", "b")
        assert quotient.num_vertices() == 2


class TestBallCarving:
    def test_radius_zero_gives_singletons(self):
        g = path_graph(5)
        decomposition = ball_carving_decomposition(g, radius=0)
        assert decomposition.clustering.num_clusters() == 5
        verify_network_decomposition(g, decomposition, max_diameter=0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ModelError):
            ball_carving_decomposition(path_graph(3), radius=-1)

    def test_decomposition_is_valid_partition_with_proper_coloring(self, random_graph):
        decomposition = ball_carving_decomposition(random_graph, radius=2)
        verify_network_decomposition(random_graph, decomposition)

    def test_cluster_weak_diameter_bounded_by_twice_radius(self):
        g = grid_graph(5, 5)
        radius = 2
        decomposition = ball_carving_decomposition(g, radius=radius)
        verify_network_decomposition(g, decomposition, max_diameter=2 * radius)

    def test_polylog_decomposition_quality(self):
        g = erdos_renyi_graph(40, 0.1, seed=12)
        decomposition = polylog_decomposition(g)
        verify_network_decomposition(g, decomposition)
        colors, diameter = decomposition_quality(g, decomposition)
        n = g.num_vertices()
        assert colors <= n
        assert diameter <= 2 * math.ceil(math.log2(n)) + 1

    @given(graphs(max_n=14), st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_ball_carving_always_valid(self, g, radius):
        decomposition = ball_carving_decomposition(g, radius=radius)
        verify_network_decomposition(g, decomposition, max_diameter=2 * radius)


class TestVerification:
    def test_adjacent_clusters_must_differ_in_color(self):
        g = path_graph(4)
        clustering = Clustering(cluster_of={0: "a", 1: "a", 2: "b", 3: "b"})
        bad = NetworkDecomposition(clustering=clustering, cluster_colors={"a": 0, "b": 0})
        with pytest.raises(VerificationError):
            verify_network_decomposition(g, bad)

    def test_color_budget_enforced(self):
        g = path_graph(4)
        clustering = Clustering(cluster_of={0: "a", 1: "a", 2: "b", 3: "b"})
        decomposition = NetworkDecomposition(clustering=clustering, cluster_colors={"a": 0, "b": 1})
        verify_network_decomposition(g, decomposition, max_colors=2)
        with pytest.raises(VerificationError):
            verify_network_decomposition(g, decomposition, max_colors=1)

    def test_diameter_budget_enforced(self):
        g = path_graph(6)
        clustering = Clustering(cluster_of={v: "all" for v in g.vertices})
        decomposition = NetworkDecomposition(clustering=clustering, cluster_colors={"all": 0})
        verify_network_decomposition(g, decomposition, max_diameter=5)
        with pytest.raises(VerificationError):
            verify_network_decomposition(g, decomposition, max_diameter=2)

    def test_missing_cluster_color_rejected(self):
        g = path_graph(2)
        clustering = Clustering(cluster_of={0: "a", 1: "b"})
        decomposition = NetworkDecomposition(clustering=clustering, cluster_colors={"a": 0})
        with pytest.raises(VerificationError):
            verify_network_decomposition(g, decomposition)

    def test_unassigned_vertex_rejected(self):
        g = path_graph(3)
        clustering = Clustering(cluster_of={0: "a", 1: "a"})
        decomposition = NetworkDecomposition(clustering=clustering, cluster_colors={"a": 0})
        with pytest.raises(VerificationError):
            verify_network_decomposition(g, decomposition)
