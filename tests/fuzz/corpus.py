"""Seeded corpus generator for the differential-fuzzing harness.

Every instance is a deterministic function of one integer seed: the seed
drives the choice of hypergraph family, its size parameters, the palette
size ``k`` and the MaxIS oracle.  Tests parametrize over seed ranges, so
a failing case is reproduced by ``make_instance(<seed>)`` — the seed is
part of both the pytest id and every assertion message.

The central helper is :func:`assert_equivalent_run`: the incremental
phase engine (`run`, with the incidence-driven happiness tracker and the
maintained conflict graph) must agree bit for bit with the from-scratch
`run_rebuild` path — phases, colorings and per-phase happy sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench import capped_oracle
from repro.coloring.multicoloring import verify_conflict_free_multicoloring
from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS, ReductionResult
from repro.hypergraph import (
    Hypergraph,
    almost_uniform_hypergraph,
    colorable_almost_uniform_hypergraph,
    random_interval_hypergraph,
    sunflower_hypergraph,
    uniform_random_hypergraph,
)
from repro.maxis import get_approximator

FAMILIES = (
    "uniform",
    "almost-uniform",
    "colorable",
    "interval",
    "sunflower",
    "duplicate-heavy",
)

#: Oracle pool: the two greedy kernels, the batched Luby kernel and the
#: λ-capped oracle (the multi-phase worst-case regime of the benchmark).
ORACLES = (
    "greedy-first-fit",
    "greedy-min-degree",
    "luby-batch-of-8",
    "capped-first-fit",
)


@dataclass(frozen=True)
class Instance:
    """One corpus entry; fully determined by ``seed``."""

    seed: int
    family: str
    hypergraph: Hypergraph
    k: int
    oracle_name: str

    @property
    def label(self) -> str:
        return (
            f"seed={self.seed} family={self.family} n={self.hypergraph.num_vertices()} "
            f"m={self.hypergraph.num_edges()} k={self.k} oracle={self.oracle_name}"
        )


def _duplicate_heavy_hypergraph(rng: random.Random) -> Hypergraph:
    """A hypergraph stressing duplicate member sets and overlapping edges."""
    n = rng.randint(4, 10)
    h = Hypergraph(vertices=range(n))
    universe = list(range(n))
    next_id = 0
    for _ in range(rng.randint(1, 4)):
        members = rng.sample(universe, rng.randint(1, min(4, n)))
        h.add_edge(members, edge_id=next_id)
        next_id += 1
        # Duplicate the member set under fresh ids (multi-hypergraph) and
        # add an overlapping superset edge.
        for _ in range(rng.randint(1, 2)):
            h.add_edge(members, edge_id=next_id)
            next_id += 1
        if len(members) < n:
            extra = rng.choice([v for v in universe if v not in members])
            h.add_edge(list(members) + [extra], edge_id=next_id)
            next_id += 1
    return h


def make_hypergraph(family: str, rng: random.Random) -> Hypergraph:
    """Build the ``family`` member selected by ``rng`` (small, fast sizes)."""
    if family == "uniform":
        n = rng.randint(4, 12)
        return uniform_random_hypergraph(
            n=n, m=rng.randint(0, 8), edge_size=rng.randint(1, min(4, n)), seed=rng
        )
    if family == "almost-uniform":
        k = rng.randint(1, 3)
        n = rng.randint(2 * k + 2, 14)
        return almost_uniform_hypergraph(
            n=n, m=rng.randint(1, 8), k=k, epsilon=1.0, seed=rng
        )
    if family == "colorable":
        k = rng.randint(1, 3)
        n = rng.randint(2 * k + 2, 14)
        hypergraph, _planted = colorable_almost_uniform_hypergraph(
            n=n, m=rng.randint(1, 8), k=k, epsilon=1.0, seed=rng
        )
        return hypergraph
    if family == "interval":
        return random_interval_hypergraph(
            n_points=rng.randint(4, 12), n_intervals=rng.randint(1, 8), seed=rng
        )
    if family == "sunflower":
        return sunflower_hypergraph(
            n_petals=rng.randint(1, 5),
            petal_size=rng.randint(1, 3),
            core_size=rng.randint(1, 2),
        )
    if family == "duplicate-heavy":
        return _duplicate_heavy_hypergraph(rng)
    raise ValueError(f"unknown corpus family {family!r}")


def make_oracle(name: str):
    """Resolve an :data:`ORACLES` entry to an approximator."""
    if name == "capped-first-fit":
        return capped_oracle("greedy-first-fit", lam=2.0)
    return get_approximator(name)


def make_instance(seed: int) -> Instance:
    """Deterministically derive one corpus instance from ``seed``."""
    rng = random.Random(seed)
    family = rng.choice(FAMILIES)
    k = rng.randint(1, 3)
    oracle_name = rng.choice(ORACLES)
    return Instance(
        seed=seed,
        family=family,
        hypergraph=make_hypergraph(family, rng),
        k=k,
        oracle_name=oracle_name,
    )


def corpus(count: int, base_seed: int = 0):
    """Yield ``count`` instances with seeds ``base_seed .. base_seed+count-1``."""
    return [make_instance(base_seed + i) for i in range(count)]


def assert_equivalent_run(instance: Instance, lam: float = 2.0) -> ReductionResult:
    """Assert ``run == run_rebuild`` on ``instance`` (phases, colorings, happy sets).

    Returns the (verified conflict-free) incremental result so callers can
    pile on further checks.  Every assertion message leads with the
    reproducing seed.
    """
    reduction = ConflictFreeMulticoloringViaMaxIS(
        k=instance.k, approximator=make_oracle(instance.oracle_name), lam=lam
    )
    fast = reduction.run(instance.hypergraph)
    reference = reduction.run_rebuild(instance.hypergraph)
    ctx = f"[{instance.label}]"
    assert fast.multicoloring == reference.multicoloring, (
        f"{ctx} incremental and rebuild multicolorings differ"
    )
    assert len(fast.phases) == len(reference.phases), (
        f"{ctx} phase counts differ: {len(fast.phases)} != {len(reference.phases)}"
    )
    for fp, rp in zip(fast.phases, reference.phases):
        assert fp.happy_edges == rp.happy_edges, (
            f"{ctx} phase {fp.phase} happy sets differ: "
            f"{sorted(fp.happy_edges, key=repr)} != {sorted(rp.happy_edges, key=repr)}"
        )
        assert fp == rp, f"{ctx} phase {fp.phase} records differ"
    assert (fast.phase_bound, fast.color_bound) == (
        reference.phase_bound,
        reference.color_bound,
    ), f"{ctx} bounds differ"
    verify_conflict_free_multicoloring(instance.hypergraph, fast.multicoloring)
    return fast
