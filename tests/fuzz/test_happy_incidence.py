"""Differential fuzzing of the incidence-driven happiness kernel.

The full-scan :func:`repro.coloring.conflict_free.happy_edges` is the
equality oracle for both :func:`happy_edges_incident` and the stateful
:class:`repro.core.happiness.HappinessTracker`, across random partial
colorings and random edge removals (including batches with duplicate ids
and hypergraphs with duplicate/overlapping edges).
"""

from __future__ import annotations

import random

import pytest

from repro.coloring.conflict_free import happy_edges, happy_edges_incident
from repro.core.happiness import HappinessTracker
from repro.exceptions import ReductionError
from repro.hypergraph import Hypergraph
from tests.fuzz.corpus import make_hypergraph, FAMILIES

SEED_COUNT = 110


def _random_partial_coloring(hypergraph, rng, k=3):
    coloring = {}
    for v in sorted(hypergraph.vertices, key=repr):
        roll = rng.random()
        if roll < 0.4:
            continue  # uncolored
        if roll < 0.45:
            coloring[v] = None  # explicit UNCOLORED entry
        else:
            coloring[v] = rng.randint(1, k)
    return coloring


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_incident_kernel_matches_full_scan(seed):
    rng = random.Random(seed)
    hypergraph = make_hypergraph(rng.choice(FAMILIES), rng)
    coloring = _random_partial_coloring(hypergraph, rng)
    expected = happy_edges(hypergraph, coloring)
    got = happy_edges_incident(hypergraph, coloring)
    assert got == expected, f"[seed={seed}] incident {got!r} != full-scan {expected!r}"


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_tracker_matches_full_scan_across_removals(seed):
    """Tracker commits equal the full scan before and after edge removals."""
    rng = random.Random(seed)
    hypergraph = make_hypergraph(rng.choice(FAMILIES), rng)
    tracker = HappinessTracker(hypergraph)
    for _round in range(3):
        coloring = _random_partial_coloring(hypergraph, rng)
        expected = happy_edges(hypergraph, coloring)
        got = tracker.commit(coloring)
        assert got == expected, (
            f"[seed={seed}] round {_round}: tracker {got!r} != full-scan {expected!r}"
        )
        edge_ids = hypergraph.edge_ids
        if not edge_ids:
            break
        batch = rng.sample(edge_ids, rng.randint(1, len(edge_ids)))
        # Duplicate ids in the batch must be tolerated (dedup semantics,
        # mirroring ConflictGraph.remove_hyperedges).
        batch = batch + batch[: rng.randint(0, len(batch))]
        hypergraph.remove_edges(set(batch))
        tracker.remove_edges(batch)
        assert tracker.num_edges() == hypergraph.num_edges(), f"[seed={seed}]"


class TestTrackerDuplicateOverlapRegression:
    """Happiness-state analogue of the PR 2 `remove_hyperedges` dedup fix."""

    def _instance(self):
        # Two identical member sets under distinct ids plus overlapping
        # supersets — the shapes that corrupted naive index maintenance.
        return Hypergraph(
            edges=[
                ("a", [0, 1, 2]),
                ("a-dup", [0, 1, 2]),
                ("b", [0, 1, 2, 3]),
                ("c", [3, 4]),
            ]
        )

    def test_duplicate_ids_in_removal_batch_do_not_corrupt_state(self):
        h = self._instance()
        tracker = HappinessTracker(h)
        happy = tracker.commit({0: 1, 1: 2, 2: 2})
        # Both duplicates are happy together (identical censuses).
        assert {"a", "a-dup"} <= happy
        tracker.remove_edges(["a", "a", "a", "a-dup"])
        h.remove_edges({"a", "a-dup"})
        assert tracker.num_edges() == h.num_edges() == 2
        # The index entry for vertex 0 must still know edge "b".
        assert tracker.edges_containing(0) == {"b"}
        assert happy_edges(h, {3: 1}) == tracker.commit({3: 1})

    def test_removed_edges_leave_the_happy_state(self):
        h = self._instance()
        tracker = HappinessTracker(h)
        tracker.commit({4: 1})
        assert tracker.happy == {"c"}
        tracker.remove_edges(["c"])
        assert tracker.happy == set()
        assert tracker.edges_containing(4) == set()

    def test_unknown_edge_raises_without_mutating(self):
        h = self._instance()
        tracker = HappinessTracker(h)
        with pytest.raises(ReductionError):
            tracker.remove_edges(["a", "missing"])
        assert tracker.num_edges() == 4
        assert tracker.edges_containing(0) == {"a", "a-dup", "b"}

    def test_overlapping_edges_diverge_after_superset_removal(self):
        h = self._instance()
        tracker = HappinessTracker(h)
        tracker.remove_edges(["b"])
        h.remove_edges(["b"])
        # Vertex 3 now only touches "c"; a coloring of vertex 3 must not
        # resurrect the removed superset edge.
        got = tracker.commit({3: 1})
        assert got == happy_edges(h, {3: 1}) == {"c"}
