"""Differential fuzzing of the bit-parallel batched Luby kernel.

The scalar reference is :func:`repro.graphs.independent_sets.luby_mis`;
trial ``t`` of :func:`repro.maxis.luby_batch_mis_ids` must reproduce it
bit for bit under the shared per-trial seeds of
:func:`repro.maxis.luby_trial_seeds`, on full graphs and on alive-mask
subgraph views.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import erdos_renyi_graph
from repro.graphs.independent_sets import is_maximal_independent_set, luby_mis
from repro.graphs.indexed import freeze_sorted
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.core.conflict_graph import ConflictGraph
from repro.maxis import (
    get_approximator,
    luby_batch_mis,
    luby_batch_mis_ids,
    luby_trial_seeds,
)

SEED_COUNT = 110


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_every_batched_trial_matches_scalar_reference(seed):
    rng = random.Random(seed)
    n = rng.randint(0, 14)
    g = erdos_renyi_graph(n, rng.uniform(0.0, 0.6), seed=rng.randrange(10_000))
    frozen = freeze_sorted(g)
    trials = rng.randint(1, 9)
    per_trial = luby_batch_mis_ids(frozen, trials, seed=seed)
    seeds = luby_trial_seeds(seed, trials)
    assert len(per_trial) == trials
    for t in range(trials):
        got = {frozen.label(i) for i in per_trial[t]}
        expected = luby_mis(g, seed=seeds[t])
        assert got == expected, (
            f"[seed={seed}] trial {t}: batch {sorted(got, key=repr)!r} != "
            f"scalar {sorted(expected, key=repr)!r}"
        )
        if n:
            assert is_maximal_independent_set(g, got), f"[seed={seed}] trial {t}"


@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 5))
def test_best_of_batch_keeps_first_maximum(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 14)
    g = erdos_renyi_graph(n, rng.uniform(0.0, 0.6), seed=rng.randrange(10_000))
    trials = 5
    best = luby_batch_mis(g, trials=trials, seed=seed)
    scalar_best = set()
    for s in luby_trial_seeds(seed, trials):
        candidate = luby_mis(g, seed=s)
        if len(candidate) > len(scalar_best):
            scalar_best = candidate
    assert best == scalar_best, f"[seed={seed}]"


@pytest.mark.parametrize("seed", range(0, SEED_COUNT, 10))
def test_batch_on_view_matches_dense_rebuild(seed):
    """On a conflict-graph view the batch equals a rebuilt-subgraph batch."""
    hypergraph, _ = colorable_almost_uniform_hypergraph(
        n=16, m=10, k=2, epsilon=0.5, seed=seed
    )
    cg = ConflictGraph(hypergraph, 2)
    first = get_approximator("greedy-first-fit")(cg.frozen_sorted())
    happy = sorted({t.edge for t in first}, key=repr)
    cg.remove_hyperedges(happy[: max(1, len(happy) // 2)])
    view = cg.frozen_sorted()
    via_view = luby_batch_mis(view, trials=4, seed=seed)
    dense = freeze_sorted(view.to_graph())
    via_dense = luby_batch_mis(dense, trials=4, seed=seed)
    assert via_view == via_dense, f"[seed={seed}]"


def test_registry_luby_batch_agrees_on_frozen_and_mutable():
    hypergraph, _ = colorable_almost_uniform_hypergraph(
        n=20, m=12, k=3, epsilon=0.5, seed=3
    )
    cg = ConflictGraph(hypergraph, 3)
    approx = get_approximator("luby-batch-of-8")
    assert approx(cg.frozen_sorted()) == approx(cg.graph)
