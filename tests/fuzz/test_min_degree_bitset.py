"""Differential fuzzing of the bitset-only residual-degree greedy kernel.

The reference path is the plain-graph
:func:`repro.graphs.independent_sets.greedy_min_degree_independent_set`;
the production kernel :func:`repro.graphs.indexed.min_degree_greedy_ids`
must match it bit for bit on full graphs and on alive-mask subgraph views
— and must never materialize the lazy CSR arrays of a fresh frozen
snapshot (the regression that used to cost ~30 ms per reduction run).
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import erdos_renyi_graph
from repro.graphs.independent_sets import greedy_min_degree_independent_set
from repro.graphs.indexed import freeze_sorted, min_degree_greedy_ids
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.core.conflict_graph import ConflictGraph
from repro.maxis import get_approximator

SEED_COUNT = 110


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_bitset_kernel_matches_reference(seed):
    rng = random.Random(seed)
    n = rng.randint(0, 16)
    g = erdos_renyi_graph(n, rng.uniform(0.0, 0.6), seed=rng.randrange(10_000))
    frozen = freeze_sorted(g)
    got = {frozen.label(i) for i in min_degree_greedy_ids(frozen)}
    expected = greedy_min_degree_independent_set(g)
    assert got == expected, f"[seed={seed}] kernel {got!r} != reference {expected!r}"


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_bitset_and_csr_paths_agree(seed):
    """The two internal walks (lazy-bitset vs materialized-CSR) select identically."""
    from repro.graphs.indexed import IndexedGraph

    rng = random.Random(seed)
    n = rng.randint(0, 16)
    g = erdos_renyi_graph(n, rng.uniform(0.0, 0.6), seed=rng.randrange(10_000))
    with_csr = freeze_sorted(g)  # Graph.freeze builds the CSR arrays eagerly
    assert n == 0 or with_csr._indptr is not None
    fresh = IndexedGraph._from_bitsets(with_csr.labels(), list(with_csr.bitsets()))
    assert fresh._indptr is None
    assert min_degree_greedy_ids(fresh) == min_degree_greedy_ids(with_csr), (
        f"[seed={seed}] bitset and CSR kernels disagree"
    )
    assert fresh._indptr is None, f"[seed={seed}] bitset path materialized CSR"


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_view_kernel_matches_dense_rebuild(seed):
    """On a subgraph view the kernel equals a from-scratch rebuild of the subgraph."""
    rng = random.Random(seed)
    n = rng.randint(1, 14)
    g = erdos_renyi_graph(n, rng.uniform(0.0, 0.6), seed=rng.randrange(10_000))
    frozen = freeze_sorted(g)
    alive = rng.getrandbits(n) & frozen.alive_mask()
    view = frozen.subgraph_view(alive)
    got = {frozen.label(i) for i in min_degree_greedy_ids(view)}
    dense = freeze_sorted(view.to_graph()) if alive else None
    expected = (
        {dense.label(i) for i in min_degree_greedy_ids(dense)} if alive else set()
    )
    assert got == expected, f"[seed={seed}] view {got!r} != dense {expected!r}"


class TestNoCsrMaterialization:
    """`greedy-min-degree` must stay bitset-only on fresh frozen snapshots."""

    def _conflict_graph(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(
            n=24, m=15, k=3, epsilon=0.5, seed=11
        )
        return ConflictGraph(hypergraph, 3)

    def test_kernel_on_fresh_snapshot_keeps_csr_lazy(self):
        cg = self._conflict_graph()
        frozen = cg.frozen_sorted()
        assert frozen._indptr is None, "snapshot should start without CSR"
        min_degree_greedy_ids(frozen)
        assert frozen._indptr is None, (
            "min_degree_greedy_ids materialized the CSR arrays on a fresh snapshot"
        )

    def test_registry_oracle_on_view_keeps_csr_lazy(self):
        cg = self._conflict_graph()
        first = get_approximator("greedy-first-fit")(cg.frozen_sorted())
        happy = {t.edge for t in first}
        cg.remove_hyperedges(set(list(happy)[:3]))
        view = cg.frozen_sorted()
        result = get_approximator("greedy-min-degree")(view)
        assert result  # non-empty on a non-empty view
        base = view._parent if hasattr(view, "_parent") else view
        assert base._indptr is None, (
            "greedy-min-degree on an alive-mask view materialized CSR"
        )

    def test_reference_equality_still_holds_without_csr(self):
        cg = self._conflict_graph()
        frozen = cg.frozen_sorted()
        got = {frozen.label(i) for i in min_degree_greedy_ids(frozen)}
        expected = greedy_min_degree_independent_set(cg.graph)
        assert got == expected
