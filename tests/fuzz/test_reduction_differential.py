"""End-to-end differential fuzzing: incremental engine vs rebuild path.

120 seeded corpus instances (hypergraph families × k × oracle) through
``assert_equivalent_run`` — the one helper every kernel rewrite must keep
green.  The pytest id carries the reproducing seed.
"""

from __future__ import annotations

import pytest

from tests.fuzz.corpus import FAMILIES, ORACLES, assert_equivalent_run, corpus, make_instance

SEED_COUNT = 120


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_run_equals_run_rebuild(seed):
    assert_equivalent_run(make_instance(seed))


def test_corpus_covers_every_family_and_oracle():
    """The seed range actually exercises all families and oracles."""
    instances = corpus(SEED_COUNT)
    assert {i.family for i in instances} == set(FAMILIES)
    assert {i.oracle_name for i in instances} == set(ORACLES)


def test_corpus_is_deterministic():
    a = make_instance(7)
    b = make_instance(7)
    assert a.family == b.family and a.k == b.k and a.oracle_name == b.oracle_name
    assert a.hypergraph == b.hypergraph


def test_edgeless_instance_runs_empty():
    """Edgeless inputs run zero phases identically on both paths."""
    from repro.hypergraph import Hypergraph
    from tests.fuzz.corpus import Instance

    instance = Instance(
        seed=-1,
        family="edgeless",
        hypergraph=Hypergraph(vertices=range(5)),
        k=2,
        oracle_name="greedy-first-fit",
    )
    result = assert_equivalent_run(instance)
    assert result.phases == []
    assert result.multicoloring.num_colors() == 0
