"""Tests for proper vertex colorings of simple graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exceptions import ColoringError, GraphError
from repro.graphs import (
    color_classes,
    coloring_from_classes,
    complete_graph,
    cycle_graph,
    defective_edges,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
    path_graph,
    star_graph,
    verify_proper_coloring,
)

from tests.conftest import graphs


class TestVerification:
    def test_valid_coloring_passes(self):
        g = path_graph(3)
        verify_proper_coloring(g, {0: 0, 1: 1, 2: 0})

    def test_monochromatic_edge_rejected(self):
        g = path_graph(2)
        with pytest.raises(ColoringError):
            verify_proper_coloring(g, {0: 0, 1: 0})

    def test_missing_vertex_rejected(self):
        g = path_graph(3)
        with pytest.raises(ColoringError):
            verify_proper_coloring(g, {0: 0, 1: 1})

    def test_foreign_vertex_rejected(self):
        g = path_graph(2)
        with pytest.raises(ColoringError):
            verify_proper_coloring(g, {0: 0, 1: 1, 7: 2})

    def test_boolean_wrapper(self):
        g = path_graph(2)
        assert is_proper_coloring(g, {0: 0, 1: 1})
        assert not is_proper_coloring(g, {0: 0, 1: 0})


class TestGreedy:
    def test_uses_at_most_delta_plus_one_colors(self, random_graph):
        coloring = greedy_coloring(random_graph)
        verify_proper_coloring(random_graph, coloring)
        assert num_colors(coloring) <= random_graph.max_degree() + 1

    def test_complete_graph_needs_n_colors(self):
        g = complete_graph(5)
        assert num_colors(greedy_coloring(g)) == 5

    def test_star_graph_needs_two_colors(self):
        assert num_colors(greedy_coloring(star_graph(8))) == 2

    def test_even_cycle_two_colors(self):
        assert num_colors(greedy_coloring(cycle_graph(6))) == 2

    def test_bad_order_rejected(self):
        with pytest.raises(GraphError):
            greedy_coloring(path_graph(3), order=[0, 1])

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_greedy_always_proper_and_bounded(self, g):
        coloring = greedy_coloring(g)
        assert is_proper_coloring(g, coloring)
        if g.num_vertices():
            assert num_colors(coloring) <= g.max_degree() + 1


class TestClassesAndDefects:
    def test_color_classes_round_trip(self):
        coloring = {0: 0, 1: 1, 2: 0}
        assert coloring_from_classes(color_classes(coloring)) == coloring

    def test_coloring_from_overlapping_classes_raises(self):
        with pytest.raises(ColoringError):
            coloring_from_classes({0: [1, 2], 1: [2]})

    def test_defective_edges_counts_monochromatic_only(self):
        g = path_graph(4)
        bad = defective_edges(g, {0: 1, 1: 1, 2: 2, 3: 2})
        assert bad == {frozenset({0, 1}), frozenset({2, 3})}

    def test_defective_edges_ignores_uncolored(self):
        g = path_graph(3)
        assert defective_edges(g, {0: 1}) == set()
