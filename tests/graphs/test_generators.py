"""Tests for the deterministic and random graph generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    empty_graph,
    erdos_renyi_graph,
    grid_graph,
    is_connected,
    path_graph,
    random_regular_graph,
    random_tree,
    star_graph,
)


class TestDeterministicGenerators:
    def test_empty_graph(self):
        g = empty_graph(4)
        assert g.num_vertices() == 4 and g.num_edges() == 0

    def test_empty_graph_negative_raises(self):
        with pytest.raises(GraphError):
            empty_graph(-1)

    def test_complete_graph_edge_count(self):
        g = complete_graph(6)
        assert g.num_edges() == 15
        assert g.max_degree() == 5

    def test_path_and_cycle(self):
        assert path_graph(5).num_edges() == 4
        assert cycle_graph(5).num_edges() == 5
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert all(g.degree(leaf) == 1 for leaf in range(1, 8))

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges() == 12
        assert g.max_degree() == 4

    def test_grid_graph_size(self):
        g = grid_graph(3, 5)
        assert g.num_vertices() == 15
        assert g.num_edges() == 3 * 4 + 5 * 2

    def test_grid_graph_zero_dimension(self):
        assert grid_graph(0, 5).num_vertices() == 0


class TestRandomGenerators:
    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=1).num_edges() == 0
        assert erdos_renyi_graph(10, 1.0, seed=1).num_edges() == 45

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)

    def test_erdos_renyi_reproducible_with_seed(self):
        a = erdos_renyi_graph(20, 0.3, seed=42)
        b = erdos_renyi_graph(20, 0.3, seed=42)
        assert a == b

    def test_erdos_renyi_accepts_random_instance(self):
        rng = random.Random(7)
        g = erdos_renyi_graph(10, 0.5, seed=rng)
        assert g.num_vertices() == 10

    def test_random_regular_graph_degrees(self):
        g = random_regular_graph(12, 3, seed=5)
        assert all(g.degree(v) == 3 for v in g.vertices)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_random_regular_degree_too_large(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)

    def test_random_tree_is_tree(self):
        g = random_tree(15, seed=3)
        assert g.num_edges() == 14
        assert is_connected(g)

    def test_random_tree_tiny_cases(self):
        assert random_tree(0).num_vertices() == 0
        assert random_tree(1).num_edges() == 0
        assert random_tree(2).num_edges() == 1

    @given(st.integers(min_value=3, max_value=30), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_random_tree_property(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.num_vertices() == n
        assert g.num_edges() == n - 1
        assert is_connected(g)


class TestDisjointUnion:
    def test_sizes_add_up(self):
        g = disjoint_union(complete_graph(3), path_graph(4))
        assert g.num_vertices() == 7
        assert g.num_edges() == 3 + 3

    def test_no_cross_edges(self):
        g = disjoint_union(complete_graph(3), complete_graph(3))
        assert not is_connected(g)
