"""Unit and property tests for the core Graph data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import Graph, complete_graph, erdos_renyi_graph

from tests.conftest import graphs


class TestConstruction:
    def test_empty_graph_has_no_vertices_or_edges(self):
        g = Graph()
        assert g.num_vertices() == 0
        assert g.num_edges() == 0
        assert len(g) == 0

    def test_add_vertex_is_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices() == 1

    def test_add_edge_adds_missing_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_add_edge_rejects_self_loops(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_constructor_accepts_vertices_and_edges(self):
        g = Graph(vertices=[5], edges=[(1, 2), (2, 3)])
        assert g.vertices == {1, 2, 3, 5}
        assert g.num_edges() == 2

    def test_duplicate_edge_is_not_double_counted(self):
        g = Graph(edges=[(1, 2), (2, 1)])
        assert g.num_edges() == 1

    def test_vertices_may_be_arbitrary_hashables(self):
        g = Graph(edges=[((1, "a"), frozenset({2}))])
        assert g.has_edge((1, "a"), frozenset({2}))


class TestRemoval:
    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_vertex(1)

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(GraphError):
            g.remove_edge(1, 3)

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_vertex(2)
        assert not g.has_vertex(2)
        assert g.num_edges() == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.remove_vertex("missing")


class TestQueries:
    def test_neighbors_returns_copy(self, small_graph):
        nbrs = small_graph.neighbors(1)
        nbrs.add("junk")
        assert "junk" not in small_graph.neighbors(1)

    def test_neighbors_of_missing_vertex_raises(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.neighbors("missing")

    def test_degree_and_max_degree(self, small_graph):
        assert small_graph.degree(2) == 3
        assert small_graph.max_degree() == 3

    def test_degree_of_missing_vertex_raises(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.degree(99)

    def test_edges_iterates_each_edge_once(self, small_graph):
        edges = list(small_graph.edges())
        assert len(edges) == small_graph.num_edges() == 7
        as_sets = [frozenset(e) for e in edges]
        assert len(set(as_sets)) == len(as_sets)

    def test_contains_and_iter(self, small_graph):
        assert 0 in small_graph
        assert set(iter(small_graph)) == small_graph.vertices

    def test_equality(self):
        a = Graph(edges=[(1, 2)])
        b = Graph(edges=[(2, 1)])
        assert a == b
        b.add_vertex(3)
        assert a != b


class TestDerivedGraphs:
    def test_copy_is_independent(self, small_graph):
        copy = small_graph.copy()
        copy.add_edge(0, 5)
        assert not small_graph.has_edge(0, 5)
        assert copy.has_edge(0, 5)

    def test_subgraph_keeps_only_internal_edges(self, small_graph):
        sub = small_graph.subgraph({0, 1, 2, 3})
        assert sub.vertices == {0, 1, 2, 3}
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_ignores_foreign_vertices(self, small_graph):
        sub = small_graph.subgraph({0, 1, "not-there"})
        assert sub.vertices == {0, 1}

    def test_complement_of_complete_graph_is_empty(self):
        comp = complete_graph(5).complement()
        assert comp.num_edges() == 0
        assert comp.num_vertices() == 5

    def test_is_independent_set_and_clique(self, small_graph):
        assert small_graph.is_independent_set({0, 4})
        assert not small_graph.is_independent_set({0, 1})
        assert small_graph.is_clique({3, 4, 5})
        assert not small_graph.is_clique({0, 1, 3})

    def test_is_independent_set_rejects_foreign_vertices(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.is_independent_set({0, "nope"})


class TestInterop:
    def test_networkx_round_trip(self, random_graph):
        nx_graph = random_graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == random_graph

    def test_dict_round_trip(self, small_graph):
        back = Graph.from_dict(small_graph.to_dict())
        assert back == small_graph


class TestProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.vertices) == 2 * g.num_edges()

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_complement_involution(self, g):
        assert g.complement().complement() == g

    @given(graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_subgraph_edge_subset(self, g, seed):
        import random as _random

        rng = _random.Random(seed)
        subset = {v for v in g.vertices if rng.random() < 0.5}
        sub = g.subgraph(subset)
        for u, v in sub.edges():
            assert g.has_edge(u, v)
        assert sub.vertices == subset

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_edge_count_matches_complement(self, g):
        n = g.num_vertices()
        assert g.num_edges() + g.complement().num_edges() == n * (n - 1) // 2


def test_repr_contains_sizes():
    g = erdos_renyi_graph(5, 0.5, seed=1)
    assert "Graph" in repr(g)
