"""Regression tests: incrementally maintained num_edges()/max_degree().

``Graph`` keeps an edge counter and a degree histogram so that
``num_edges()`` and ``max_degree()`` are O(1).  These tests drive random
mutation sequences and compare both values against a naive recount after
every single operation, so any bookkeeping drift is pinned to the exact
mutation that caused it.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph

from tests.conftest import graphs


def _naive_num_edges(g: Graph) -> int:
    return sum(len(g.neighbors(v)) for v in g.vertices) // 2


def _naive_max_degree(g: Graph) -> int:
    return max((g.degree(v) for v in g.vertices), default=0)


def _assert_counters_consistent(g: Graph) -> None:
    assert g.num_edges() == _naive_num_edges(g)
    assert g.max_degree() == _naive_max_degree(g)


class TestIncrementalCounters:
    def test_fresh_graph(self):
        _assert_counters_consistent(Graph())
        _assert_counters_consistent(Graph(vertices=[1, 2], edges=[(3, 4)]))

    def test_duplicate_edge_add_is_noop(self):
        g = Graph(edges=[(1, 2)])
        g.add_edge(2, 1)
        g.add_edge(1, 2)
        _assert_counters_consistent(g)
        assert g.num_edges() == 1

    def test_remove_edge_updates_counters(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_edge(1, 2)
        _assert_counters_consistent(g)
        assert g.max_degree() == 2

    def test_remove_vertex_updates_counters(self):
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (2, 3)])
        assert g.max_degree() == 3
        g.remove_vertex(0)
        _assert_counters_consistent(g)
        assert g.max_degree() == 1

    def test_max_degree_decays_through_gaps(self):
        # Degree histogram must walk down past empty buckets: one hub of
        # degree 5 among leaves of degree 1.
        g = Graph(edges=[(0, i) for i in range(1, 6)])
        assert g.max_degree() == 5
        g.remove_vertex(0)
        assert g.max_degree() == 0
        _assert_counters_consistent(g)

    def test_copy_and_subgraph_carry_consistent_counters(self, small_graph):
        _assert_counters_consistent(small_graph.copy())
        _assert_counters_consistent(small_graph.subgraph({0, 1, 2, 3}))
        _assert_counters_consistent(small_graph.subgraph(set()))

    def test_random_mutation_sequence(self):
        rng = random.Random(42)
        g = Graph()
        for step in range(400):
            op = rng.random()
            if op < 0.45:
                u, v = rng.sample(range(12), 2)
                g.add_edge(u, v)
            elif op < 0.6:
                g.add_vertex(rng.randrange(16))
            elif op < 0.8:
                edges = list(g.edges())
                if edges:
                    u, v = edges[rng.randrange(len(edges))]
                    g.remove_edge(u, v)
            else:
                verts = sorted(g.vertices)
                if verts:
                    g.remove_vertex(verts[rng.randrange(len(verts))])
            _assert_counters_consistent(g)

    @given(graphs(max_n=10), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_graphs_stay_consistent(self, g, seed):
        rng = random.Random(seed)
        _assert_counters_consistent(g)
        for _ in range(10):
            verts = sorted(g.vertices, key=repr)
            if verts and rng.random() < 0.5:
                g.remove_vertex(verts[rng.randrange(len(verts))])
            else:
                g.add_edge(rng.randrange(14), 14 + rng.randrange(2))
            _assert_counters_consistent(g)
