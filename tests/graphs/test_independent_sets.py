"""Tests for independent-set verification, greedy heuristics and the exact solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exceptions import GraphError, IndependenceError
from repro.graphs import (
    Graph,
    all_maximal_independent_sets,
    approximation_ratio,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    greedy_maximal_independent_set,
    greedy_min_degree_independent_set,
    independence_number,
    is_maximal_independent_set,
    maximum_independent_set,
    path_graph,
    star_graph,
    verify_independent_set,
)
from repro.maxis.exact import exact_via_networkx

from tests.conftest import graphs


class TestVerification:
    def test_accepts_valid_set(self, small_graph):
        verify_independent_set(small_graph, {0, 4})

    def test_rejects_adjacent_pair(self, small_graph):
        with pytest.raises(IndependenceError):
            verify_independent_set(small_graph, {0, 1})

    def test_rejects_foreign_vertex(self, small_graph):
        with pytest.raises(IndependenceError):
            verify_independent_set(small_graph, {0, 99})

    def test_rejects_duplicates(self, small_graph):
        with pytest.raises(IndependenceError):
            verify_independent_set(small_graph, [0, 0])

    def test_empty_set_is_independent(self, small_graph):
        verify_independent_set(small_graph, set())

    def test_maximality_detection(self):
        g = path_graph(4)
        assert is_maximal_independent_set(g, {0, 2})
        assert not is_maximal_independent_set(g, {1})
        assert is_maximal_independent_set(g, {1, 3})


class TestGreedy:
    def test_first_fit_is_maximal(self, random_graph):
        mis = greedy_maximal_independent_set(random_graph)
        assert is_maximal_independent_set(random_graph, mis)

    def test_first_fit_respects_order(self):
        g = path_graph(3)
        assert greedy_maximal_independent_set(g, order=[1, 0, 2]) == {1}
        assert greedy_maximal_independent_set(g, order=[0, 1, 2]) == {0, 2}

    def test_first_fit_rejects_bad_order(self):
        with pytest.raises(GraphError):
            greedy_maximal_independent_set(path_graph(3), order=[0, 1])

    def test_min_degree_greedy_is_independent(self, random_graph):
        result = greedy_min_degree_independent_set(random_graph)
        verify_independent_set(random_graph, result)

    def test_min_degree_greedy_on_star_takes_leaves(self):
        g = star_graph(6)
        assert greedy_min_degree_independent_set(g) == set(range(1, 7))

    def test_min_degree_turan_bound(self, random_graph):
        result = greedy_min_degree_independent_set(random_graph)
        n = random_graph.num_vertices()
        delta = random_graph.max_degree()
        assert len(result) * (delta + 1) >= n


class TestExact:
    def test_known_values(self):
        assert independence_number(complete_graph(6)) == 1
        assert independence_number(empty_graph(6)) == 6
        assert independence_number(path_graph(5)) == 3
        assert independence_number(cycle_graph(7)) == 3
        assert independence_number(complete_bipartite_graph(3, 5)) == 5

    def test_exact_result_is_independent(self, random_graph):
        result = maximum_independent_set(random_graph)
        verify_independent_set(random_graph, result)

    def test_exact_on_empty_graph(self):
        assert maximum_independent_set(Graph()) == set()

    @given(graphs(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_exact_matches_networkx_cross_check(self, g):
        ours = maximum_independent_set(g)
        theirs = exact_via_networkx(g)
        assert len(ours) == len(theirs)

    @given(graphs(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_exact_at_least_as_large_as_greedy(self, g):
        greedy = greedy_min_degree_independent_set(g) if g.num_vertices() else set()
        assert independence_number(g) >= len(greedy)


class TestApproximationRatio:
    def test_perfect_ratio(self):
        g = path_graph(5)
        assert approximation_ratio(g, {0, 2, 4}) == 1.0

    def test_ratio_of_suboptimal_set(self):
        g = star_graph(4)
        assert approximation_ratio(g, {0}) == 4.0

    def test_empty_candidate_on_nonempty_graph_raises(self):
        with pytest.raises(IndependenceError):
            approximation_ratio(path_graph(3), set())

    def test_empty_graph_ratio_is_one(self):
        assert approximation_ratio(Graph(), set()) == 1.0


class TestEnumeration:
    def test_all_maximal_independent_sets_of_path(self):
        g = path_graph(3)
        sets = all_maximal_independent_sets(g)
        assert {frozenset(s) for s in sets} == {frozenset({0, 2}), frozenset({1})}

    def test_limit_caps_enumeration(self):
        g = complete_bipartite_graph(4, 4)
        sets = all_maximal_independent_sets(g, limit=1)
        assert len(sets) == 1

    def test_every_enumerated_set_is_maximal(self, random_graph):
        for s in all_maximal_independent_sets(random_graph, limit=20):
            assert is_maximal_independent_set(random_graph, s)

    @given(graphs(max_n=9))
    @settings(max_examples=20, deadline=None)
    def test_maximum_is_among_maximal(self, g):
        if g.num_vertices() == 0:
            return
        alpha = independence_number(g)
        sets = all_maximal_independent_sets(g)
        assert max(len(s) for s in sets) == alpha
