"""Tests for the IndexedGraph core and its bitset independent-set kernels."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    IndexedGraph,
    erdos_renyi_graph,
    greedy_maximal_independent_set,
    greedy_min_degree_independent_set,
    verify_independent_set,
)
from repro.graphs.indexed import (
    first_fit_mis_ids,
    iter_bits,
    maximum_independent_set_mask,
    min_degree_greedy_ids,
    popcount,
)
from repro.maxis.exact import exact_via_networkx

from tests.conftest import graphs


class TestInterning:
    def test_freeze_defaults_to_insertion_order(self):
        g = Graph(edges=[("c", "a"), ("a", "b")])
        frozen = g.freeze()
        assert frozen.labels() == ("c", "a", "b")
        assert [frozen.index_of(v) for v in ("c", "a", "b")] == [0, 1, 2]

    def test_freeze_with_explicit_order(self):
        g = Graph(edges=[(2, 1), (1, 0)])
        frozen = g.freeze(order=[0, 1, 2])
        assert frozen.labels() == (0, 1, 2)
        assert list(frozen.neighbors(1)) == [0, 2]

    def test_freeze_rejects_non_permutation(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(GraphError):
            g.freeze(order=[1])
        with pytest.raises(GraphError):
            g.freeze(order=[1, 2, 3])

    def test_index_of_unknown_label_raises(self):
        frozen = Graph(vertices=[1]).freeze()
        with pytest.raises(GraphError):
            frozen.index_of("missing")

    def test_freeze_is_deterministic(self, random_graph):
        a = random_graph.freeze(order=sorted(random_graph.vertices, key=repr))
        b = random_graph.freeze(order=sorted(random_graph.vertices, key=repr))
        assert a.labels() == b.labels()
        assert a.bitsets() == b.bitsets()
        assert list(a._indices) == list(b._indices)


class TestStructure:
    def test_counts_match_source(self, random_graph):
        frozen = random_graph.freeze()
        assert frozen.num_vertices() == random_graph.num_vertices()
        assert frozen.num_edges() == random_graph.num_edges()
        assert frozen.max_degree() == random_graph.max_degree()

    def test_neighbors_sorted_and_consistent_with_bitsets(self, random_graph):
        frozen = random_graph.freeze()
        for i in range(len(frozen)):
            ids = list(frozen.neighbors(i))
            assert ids == sorted(ids)
            assert ids == list(iter_bits(frozen.neighbor_bitset(i)))
            assert frozen.degree(i) == len(ids)

    def test_has_edge_matches_source(self, random_graph):
        frozen = random_graph.freeze()
        for u in random_graph.vertices:
            for v in random_graph.vertices:
                if u == v:
                    continue
                assert frozen.has_edge(frozen.index_of(u), frozen.index_of(v)) == (
                    random_graph.has_edge(u, v)
                )

    def test_mask_round_trip(self, random_graph):
        frozen = random_graph.freeze()
        subset = set(list(random_graph.vertices)[::2])
        assert frozen.labels_for_mask(frozen.mask_of(subset)) == subset

    def test_rejects_self_loops_and_bad_ids(self):
        with pytest.raises(GraphError):
            IndexedGraph(["a"], [[0]])
        with pytest.raises(GraphError):
            IndexedGraph(["a", "b"], [[5], []])
        with pytest.raises(GraphError):
            IndexedGraph(["a", "a"], [[], []])

    @given(graphs(max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_to_graph(self, g):
        assert g.freeze().to_graph() == g


class TestKernels:
    @given(graphs(max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_min_degree_kernel_matches_reference(self, g):
        frozen = g.freeze(order=sorted(g.vertices, key=repr))
        fast = {frozen.label(i) for i in min_degree_greedy_ids(frozen)}
        assert fast == greedy_min_degree_independent_set(g)

    @given(graphs(max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_first_fit_kernel_matches_reference(self, g):
        frozen = g.freeze(order=sorted(g.vertices, key=repr))
        fast = {frozen.label(i) for i in first_fit_mis_ids(frozen, range(len(frozen)))}
        assert fast == greedy_maximal_independent_set(g)

    @given(graphs(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_exact_kernel_matches_networkx(self, g):
        frozen = g.freeze(order=sorted(g.vertices, key=repr))
        mask = maximum_independent_set_mask(frozen)
        chosen = frozen.labels_for_mask(mask)
        verify_independent_set(g, chosen)
        assert popcount(mask) == len(exact_via_networkx(g))

    def test_kernels_on_random_shuffled_orders(self):
        g = erdos_renyi_graph(25, 0.2, seed=3)
        frozen = g.freeze(order=sorted(g.vertices, key=repr))
        order = list(range(len(frozen)))
        random.Random(0).shuffle(order)
        chosen = {frozen.label(i) for i in first_fit_mis_ids(frozen, order)}
        verify_independent_set(g, chosen)
        assert chosen
