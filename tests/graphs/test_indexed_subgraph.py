"""Tests for the alive-mask subgraph views of :class:`IndexedGraph`.

The views keep the parent's interning table and raw adjacency and only
carry an alive bitmask; every query must answer for the induced subgraph,
and the independent-set kernels must select exactly what they would select
on a dense from-scratch freeze of that subgraph.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import GraphError
from repro.graphs import Graph, verify_independent_set
from repro.graphs.indexed import (
    IndexedSubgraph,
    first_fit_mis_ids,
    freeze_sorted,
    iter_bits,
    maximum_independent_set_mask,
    min_degree_greedy_ids,
)
from repro.exceptions import IndependenceError


def _random_graph(rng: random.Random, n: int) -> Graph:
    g = Graph(vertices=range(n))
    if n >= 2:
        for _ in range(rng.randint(0, 2 * n)):
            u, v = rng.sample(range(n), 2)
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    return g


@pytest.fixture
def diamond():
    """4-cycle with one chord, frozen in sorted order, plus a pendant."""
    g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)])
    return g, freeze_sorted(g)


class TestViewQueries:
    def test_full_mask_returns_self(self, diamond):
        _, frozen = diamond
        assert frozen.subgraph_view(frozen.alive_mask()) is frozen

    def test_out_of_range_mask_rejected(self, diamond):
        _, frozen = diamond
        with pytest.raises(GraphError):
            frozen.subgraph_view(1 << frozen.num_vertices())

    def test_masked_sizes_degrees_and_neighbors(self, diamond):
        g, frozen = diamond
        alive = frozen.mask_of([0, 1, 3, 4])  # drop vertex 2
        view = frozen.subgraph_view(alive)
        assert view.num_vertices() == len(view) == 4
        assert view.num_edges() == 3  # (0,1), (0,3), (3,4)
        assert sorted(view) == [0, 1, 3, 4]
        i0, i3 = frozen.index_of(0), frozen.index_of(3)
        assert view.degree(i0) == 2
        assert view.neighbors(i3) == sorted([frozen.index_of(0), frozen.index_of(4)])
        assert view.max_degree() == 2
        # Indexed by parent id, like the base class; dead ids read as 0.
        assert view.degrees() == [2, 1, 0, 2, 1]
        assert view.degrees()[view.parent.index_of(3)] == view.degree(i3)

    def test_dead_ids_are_rejected(self, diamond):
        _, frozen = diamond
        view = frozen.subgraph_view(frozen.mask_of([0, 1, 3, 4]))
        dead = frozen.index_of(2)
        assert 2 not in view
        with pytest.raises(GraphError):
            view.index_of(2)
        with pytest.raises(GraphError):
            view.degree(dead)
        assert not view.has_edge(dead, frozen.index_of(1))
        # The parent interning table stays fully addressable.
        assert view.label(dead) == 2

    def test_view_composition_intersects_masks(self, diamond):
        _, frozen = diamond
        a = frozen.subgraph_view(frozen.mask_of([0, 1, 2, 3]))
        b = a.subgraph_view(frozen.mask_of([1, 2, 3, 4]))
        assert isinstance(b, IndexedSubgraph)
        assert b.parent is frozen
        assert sorted(b) == [1, 2, 3]
        assert b.subgraph_view(b.alive_mask()) is b

    def test_to_graph_matches_mutable_subgraph(self, diamond):
        g, frozen = diamond
        keep = [0, 2, 3, 4]
        view = frozen.subgraph_view(frozen.mask_of(keep))
        assert view.to_graph() == g.subgraph(keep)

    def test_verify_independent_set_on_views(self, diamond):
        _, frozen = diamond
        view = frozen.subgraph_view(frozen.mask_of([0, 1, 3, 4]))
        verify_independent_set(view, {1, 4})
        with pytest.raises(IndependenceError):
            verify_independent_set(view, {0, 1})
        with pytest.raises(IndependenceError):
            verify_independent_set(view, {2})  # dead vertex = not a vertex


class TestKernelsOnViews:
    """Kernels on a view == kernels on a dense rebuild of the subgraph."""

    def _cases(self):
        rng = random.Random(7)
        for trial in range(40):
            n = rng.randint(2, 16)
            g = _random_graph(rng, n)
            keep = sorted(rng.sample(range(n), rng.randint(1, n)))
            yield trial, g, keep

    def test_first_fit_and_min_degree_match_dense_rebuild(self):
        for trial, g, keep in self._cases():
            frozen = freeze_sorted(g)
            view = frozen.subgraph_view(frozen.mask_of(keep))
            dense = freeze_sorted(g.subgraph(keep))
            ff_view = {view.label(i) for i in first_fit_mis_ids(view, view.vertex_ids())}
            ff_dense = {
                dense.label(i) for i in first_fit_mis_ids(dense, dense.vertex_ids())
            }
            assert ff_view == ff_dense, f"first-fit differs on trial {trial}"
            md_view = {view.label(i) for i in min_degree_greedy_ids(view)}
            md_dense = {dense.label(i) for i in min_degree_greedy_ids(dense)}
            assert md_view == md_dense, f"min-degree differs on trial {trial}"

    def test_exact_solver_matches_dense_rebuild(self):
        for trial, g, keep in self._cases():
            frozen = freeze_sorted(g)
            view = frozen.subgraph_view(frozen.mask_of(keep))
            dense = freeze_sorted(g.subgraph(keep))
            best_view = view.labels_for_mask(maximum_independent_set_mask(view))
            best_dense = dense.labels_for_mask(maximum_independent_set_mask(dense))
            assert best_view == best_dense, f"exact solver differs on trial {trial}"

    def test_oracle_wrappers_match_dense_rebuild(self):
        from repro.maxis import available_approximators

        solvers = available_approximators()
        for trial, g, keep in self._cases():
            frozen = freeze_sorted(g)
            view = frozen.subgraph_view(frozen.mask_of(keep))
            sub = g.subgraph(keep)
            for name, solver in solvers.items():
                assert solver(view) == solver(sub), (
                    f"{name} differs on trial {trial}"
                )


class TestLazyCsr:
    def test_bitset_construction_defers_csr(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        frozen = freeze_sorted(g)
        permuted = frozen._permuted([2, 0, 1])
        assert permuted._indptr is None  # CSR not built yet
        assert permuted.degrees() == [1, 1, 2]  # bitset fallback
        assert list(permuted.labels()) == [2, 0, 1]
        assert list(permuted.neighbors(2)) == [0, 1]  # materializes CSR
        assert permuted._indptr is not None
        assert permuted.to_graph() == g

    def test_permuted_preserves_adjacency(self):
        rng = random.Random(3)
        for _ in range(20):
            g = _random_graph(rng, rng.randint(1, 12))
            frozen = freeze_sorted(g)
            order = list(range(frozen.num_vertices()))
            rng.shuffle(order)
            permuted = frozen._permuted(order)
            assert permuted.num_edges() == frozen.num_edges()
            assert permuted.to_graph() == g
            for p in range(permuted.num_vertices()):
                expected = {
                    frozen.label(j)
                    for j in iter_bits(frozen.neighbor_bitset(order[p]))
                }
                actual = {
                    permuted.label(q) for q in iter_bits(permuted.neighbor_bitset(p))
                }
                assert actual == expected
