"""Tests for BFS distances, balls, components and shortest paths."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    ball,
    ball_subgraph,
    bfs_distances,
    complete_graph,
    connected_components,
    cycle_graph,
    diameter,
    eccentricity,
    grid_graph,
    is_connected,
    path_graph,
    shortest_path,
    star_graph,
    vertices_within_distance,
)

from tests.conftest import graphs


class TestBFS:
    def test_distances_on_path(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_respect_radius(self):
        g = path_graph(10)
        dist = bfs_distances(g, 0, radius=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 99)

    def test_distances_only_cover_component(self):
        g = Graph(edges=[(0, 1)], vertices=[2])
        assert set(bfs_distances(g, 0)) == {0, 1}


class TestBalls:
    def test_ball_radius_zero_is_center(self):
        g = cycle_graph(6)
        assert ball(g, 0, 0) == {0}

    def test_ball_radius_one_is_closed_neighborhood(self):
        g = star_graph(4)
        assert ball(g, 0, 1) == {0, 1, 2, 3, 4}
        assert ball(g, 1, 1) == {0, 1}

    def test_negative_radius_raises(self):
        with pytest.raises(GraphError):
            ball(path_graph(3), 0, -1)

    def test_ball_subgraph_contains_only_ball_edges(self):
        g = path_graph(6)
        sub = ball_subgraph(g, 2, 1)
        assert sub.vertices == {1, 2, 3}
        assert sub.num_edges() == 2

    def test_vertices_within_distance_union(self):
        g = path_graph(7)
        assert vertices_within_distance(g, [0, 6], 1) == {0, 1, 5, 6}


class TestGlobalMeasures:
    def test_eccentricity_and_diameter_of_path(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert diameter(g) == 4

    def test_diameter_of_complete_graph(self):
        assert diameter(complete_graph(4)) == 1

    def test_diameter_of_disconnected_graph_raises(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(GraphError):
            diameter(g)

    def test_diameter_of_empty_graph_raises(self):
        with pytest.raises(GraphError):
            diameter(Graph())

    def test_diameter_of_grid(self):
        assert diameter(grid_graph(3, 4)) == 2 + 3


class TestComponents:
    def test_connected_components_partition(self):
        g = Graph(edges=[(0, 1), (2, 3)], vertices=[4])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        assert is_connected(path_graph(4))
        assert is_connected(Graph())
        assert not is_connected(Graph(vertices=[0, 1]))


class TestShortestPath:
    def test_path_endpoints_and_length(self):
        g = cycle_graph(6)
        path = shortest_path(g, 0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4

    def test_same_source_and_target(self):
        assert shortest_path(path_graph(3), 1, 1) == [1]

    def test_unreachable_target_returns_none(self):
        g = Graph(vertices=[0, 1])
        assert shortest_path(g, 0, 1) is None

    def test_missing_endpoint_raises(self):
        with pytest.raises(GraphError):
            shortest_path(path_graph(2), 0, 9)


class TestProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_ball_monotone_in_radius(self, g):
        for v in list(g.vertices)[:3]:
            assert ball(g, v, 0) <= ball(g, v, 1) <= ball(g, v, 2)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_distance_triangle_step(self, g):
        # Distances along an edge differ by at most one.
        for v in list(g.vertices)[:2]:
            dist = bfs_distances(g, v)
            for a, b in g.edges():
                if a in dist and b in dist:
                    assert abs(dist[a] - dist[b]) <= 1

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_components_cover_all_vertices_exactly_once(self, g):
        comps = connected_components(g)
        union = set()
        total = 0
        for comp in comps:
            union |= comp
            total += len(comp)
        assert union == g.vertices
        assert total == g.num_vertices()

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_length_matches_bfs(self, g):
        verts = sorted(g.vertices, key=repr)
        if len(verts) < 2:
            return
        source, target = verts[0], verts[-1]
        dist = bfs_distances(g, source)
        path = shortest_path(g, source, target)
        if target in dist:
            assert path is not None
            assert len(path) - 1 == dist[target]
        else:
            assert path is None
