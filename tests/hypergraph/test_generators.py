"""Tests for hypergraph generators: almost-uniform, colorable, interval, sunflower."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import verify_conflict_free_coloring
from repro.exceptions import HypergraphError
from repro.graphs import cycle_graph
from repro.hypergraph import (
    almost_uniform_hypergraph,
    colorable_almost_uniform_hypergraph,
    graph_as_hypergraph,
    interval_hypergraph,
    is_almost_uniform,
    random_interval_hypergraph,
    sunflower_hypergraph,
    uniform_random_hypergraph,
    validate_hypergraph,
)


class TestUniformRandom:
    def test_sizes_and_edge_cardinality(self):
        h = uniform_random_hypergraph(20, 10, 4, seed=1)
        assert h.num_vertices() == 20
        assert h.num_edges() == 10
        assert all(h.edge_size(e) == 4 for e in h.edge_ids)

    def test_edge_size_larger_than_n_rejected(self):
        with pytest.raises(HypergraphError):
            uniform_random_hypergraph(3, 1, 5)

    def test_zero_edge_size_rejected(self):
        with pytest.raises(HypergraphError):
            uniform_random_hypergraph(3, 1, 0)

    def test_reproducible(self):
        a = uniform_random_hypergraph(15, 8, 3, seed=9)
        b = uniform_random_hypergraph(15, 8, 3, seed=9)
        assert a == b


class TestAlmostUniform:
    def test_edge_sizes_within_band(self):
        h = almost_uniform_hypergraph(30, 20, k=4, epsilon=0.5, seed=2)
        for e in h.edge_ids:
            assert 4 <= h.edge_size(e) <= 6
        assert is_almost_uniform(h, 0.5)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(HypergraphError):
            almost_uniform_hypergraph(10, 5, k=2, epsilon=0.0)
        with pytest.raises(HypergraphError):
            almost_uniform_hypergraph(10, 5, k=2, epsilon=1.5)

    def test_band_exceeding_n_rejected(self):
        with pytest.raises(HypergraphError):
            almost_uniform_hypergraph(5, 3, k=4, epsilon=1.0)


class TestColorableAlmostUniform:
    def test_planted_coloring_is_conflict_free(self):
        h, planted = colorable_almost_uniform_hypergraph(40, 25, k=4, epsilon=0.5, seed=3)
        verify_conflict_free_coloring(h, planted, k=4, require_total=True)

    def test_edge_sizes_respect_band(self):
        h, _ = colorable_almost_uniform_hypergraph(40, 25, k=4, epsilon=0.5, seed=3)
        assert is_almost_uniform(h, 0.5)

    def test_single_color_case(self):
        # With k = 1 every vertex has color 1, so only singleton edges can be happy.
        h, planted = colorable_almost_uniform_hypergraph(10, 5, k=1, epsilon=1.0, seed=4)
        verify_conflict_free_coloring(h, planted, k=1)
        assert all(h.edge_size(e) == 1 for e in h.edge_ids)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(HypergraphError):
            colorable_almost_uniform_hypergraph(3, 2, k=4, epsilon=0.5)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=30, deadline=None)
    def test_planted_coloring_property(self, k, m, seed):
        n = 4 * k + 2
        h, planted = colorable_almost_uniform_hypergraph(n, m, k=k, epsilon=1.0, seed=seed)
        validate_hypergraph(h)
        verify_conflict_free_coloring(h, planted, k=k, require_total=True)
        assert h.num_edges() == m


class TestIntervalHypergraphs:
    def test_membership_matches_geometry(self):
        points = [0.1, 0.4, 0.6, 0.9]
        h = interval_hypergraph(points, [(0.0, 0.5), (0.5, 1.0), (0.35, 0.65)])
        assert h.edge(0) == frozenset({0, 1})
        assert h.edge(1) == frozenset({2, 3})
        assert h.edge(2) == frozenset({1, 2})

    def test_empty_intervals_skipped(self):
        h = interval_hypergraph([0.1, 0.9], [(0.4, 0.5)])
        assert h.num_edges() == 0

    def test_reversed_interval_rejected(self):
        with pytest.raises(HypergraphError):
            interval_hypergraph([0.5], [(0.9, 0.1)])

    def test_random_interval_hypergraph_edges_are_contiguous(self):
        h = random_interval_hypergraph(20, 12, seed=5)
        for _, members in h.edges():
            indices = sorted(members)
            assert indices == list(range(indices[0], indices[-1] + 1))


class TestStructured:
    def test_graph_as_hypergraph(self):
        g = cycle_graph(5)
        h = graph_as_hypergraph(g)
        assert h.num_edges() == 5
        assert all(h.edge_size(e) == 2 for e in h.edge_ids)
        assert h.vertices == g.vertices

    def test_sunflower_core_intersection(self):
        h = sunflower_hypergraph(n_petals=4, petal_size=2, core_size=1)
        edges = [h.edge(e) for e in h.edge_ids]
        core = set.intersection(*(set(e) for e in edges))
        assert core == {("core", 0)}
        assert all(len(e) == 3 for e in edges)

    def test_sunflower_invalid_parameters(self):
        with pytest.raises(HypergraphError):
            sunflower_hypergraph(0, 1)
        with pytest.raises(HypergraphError):
            sunflower_hypergraph(2, 0, core_size=0)
