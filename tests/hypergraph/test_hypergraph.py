"""Unit and property tests for the Hypergraph data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exceptions import HypergraphError
from repro.hypergraph import Hypergraph, validate_hypergraph

from tests.conftest import hypergraphs


class TestConstruction:
    def test_add_edge_returns_id_and_registers_vertices(self):
        h = Hypergraph()
        eid = h.add_edge([1, 2, 3])
        assert h.has_edge(eid)
        assert h.vertices == {1, 2, 3}

    def test_explicit_edge_ids(self):
        h = Hypergraph(edges=[("a", [1, 2]), ("b", [2, 3])])
        assert set(h.edge_ids) == {"a", "b"}
        assert h.edge("a") == frozenset({1, 2})

    def test_bare_edge_iterables_get_auto_ids(self):
        h = Hypergraph(edges=[[1, 2], [3]])
        assert h.num_edges() == 2

    def test_from_edge_list_uses_sequential_ids(self):
        h = Hypergraph.from_edge_list([[0, 1], [1, 2], [2, 3]])
        assert h.edge_ids == [0, 1, 2]

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph().add_edge([])

    def test_duplicate_edge_id_rejected(self):
        h = Hypergraph()
        h.add_edge([1], edge_id="x")
        with pytest.raises(HypergraphError):
            h.add_edge([2], edge_id="x")

    def test_duplicate_vertex_sets_allowed_with_distinct_ids(self):
        h = Hypergraph(edges=[(0, [1, 2]), (1, [1, 2])])
        assert h.num_edges() == 2

    def test_auto_ids_do_not_collide_with_explicit_ints(self):
        h = Hypergraph()
        h.add_edge([1], edge_id=0)
        auto = h.add_edge([2])
        assert auto != 0
        assert h.num_edges() == 2


class TestRemoval:
    def test_remove_edge_keeps_vertices(self, small_hypergraph):
        small_hypergraph.remove_edge(0)
        assert not small_hypergraph.has_edge(0)
        assert 0 in small_hypergraph.vertices

    def test_remove_missing_edge_raises(self, small_hypergraph):
        with pytest.raises(HypergraphError):
            small_hypergraph.remove_edge("nope")

    def test_remove_edges_bulk(self, small_hypergraph):
        small_hypergraph.remove_edges([0, 1])
        assert small_hypergraph.num_edges() == 2

    def test_remove_vertex_shrinks_edges(self):
        h = Hypergraph.from_edge_list([[0, 1, 2], [0, 3]])
        h.remove_vertex(0)
        assert h.edge(0) == frozenset({1, 2})
        assert h.edge(1) == frozenset({3})

    def test_remove_vertex_drops_emptied_edges(self):
        h = Hypergraph.from_edge_list([[0], [0, 1]])
        h.remove_vertex(0)
        assert h.num_edges() == 1
        assert h.edge(1) == frozenset({1})

    def test_remove_missing_vertex_raises(self, small_hypergraph):
        with pytest.raises(HypergraphError):
            small_hypergraph.remove_vertex(99)


class TestQueries:
    def test_sizes(self, small_hypergraph):
        assert small_hypergraph.num_vertices() == 5
        assert small_hypergraph.num_edges() == 4
        assert small_hypergraph.rank() == 3
        assert small_hypergraph.min_edge_size() == 2
        assert small_hypergraph.total_edge_size() == 3 + 2 + 3 + 2

    def test_edges_containing_and_degree(self, small_hypergraph):
        assert small_hypergraph.edges_containing(2) == {0, 1}
        assert small_hypergraph.vertex_degree(0) == 2

    def test_edges_containing_missing_vertex_raises(self, small_hypergraph):
        with pytest.raises(HypergraphError):
            small_hypergraph.edges_containing(99)

    def test_neighbors(self, small_hypergraph):
        assert small_hypergraph.neighbors(0) == {1, 2, 4}

    def test_rank_of_edgeless_hypergraph(self):
        h = Hypergraph(vertices=[1, 2])
        assert h.rank() == 0
        assert h.min_edge_size() == 0

    def test_equality_and_copy(self, small_hypergraph):
        clone = small_hypergraph.copy()
        assert clone == small_hypergraph
        clone.remove_edge(0)
        assert clone != small_hypergraph

    def test_edge_lookup_missing_raises(self, small_hypergraph):
        with pytest.raises(HypergraphError):
            small_hypergraph.edge("missing")


class TestDerived:
    def test_restrict_to_edges_keeps_vertex_set(self, small_hypergraph):
        restricted = small_hypergraph.restrict_to_edges([1, 3])
        assert restricted.vertices == small_hypergraph.vertices
        assert set(restricted.edge_ids) == {1, 3}

    def test_restrict_to_unknown_edges_raises(self, small_hypergraph):
        with pytest.raises(HypergraphError):
            small_hypergraph.restrict_to_edges([0, "nope"])

    def test_primal_graph_adjacency(self, small_hypergraph):
        primal = small_hypergraph.primal_graph()
        assert primal.has_edge(0, 1)
        assert primal.has_edge(1, 4)
        assert not primal.has_edge(2, 4)

    def test_validate_hypergraph_passes_for_generated(self, small_hypergraph):
        validate_hypergraph(small_hypergraph)


class TestProperties:
    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_incidence_consistency(self, h):
        validate_hypergraph(h)
        assert h.total_edge_size() == sum(h.vertex_degree(v) for v in h.vertices)

    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_round_trip(self, h):
        assert h.copy() == h

    @given(hypergraphs())
    @settings(max_examples=30, deadline=None)
    def test_restrict_then_count(self, h):
        keep = h.edge_ids[::2]
        restricted = h.restrict_to_edges(keep)
        assert restricted.num_edges() == len(keep)
        for e in keep:
            assert restricted.edge(e) == h.edge(e)
