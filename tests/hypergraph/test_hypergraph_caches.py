"""Regression tests: cached ``edge_ids`` and incremental size counters.

``Hypergraph`` caches the ``repr``-sorted edge-id list (invalidated when
the edge family changes) and maintains ``Σ|e|`` plus an edge-size
histogram so that ``total_edge_size()``/``rank()``/``min_edge_size()``
never rescan the edge family.  These tests drive random mutation
sequences — including the in-place edge shrinking of ``remove_vertex`` —
and compare every cached value against a naive recount after every single
operation, so any bookkeeping drift is pinned to the exact mutation that
caused it (mirroring ``tests/graphs/test_graph_caches.py``).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import HypergraphError
from repro.hypergraph import Hypergraph

from tests.conftest import hypergraphs


def _naive_edge_ids(h: Hypergraph):
    return sorted((e for e, _ in h.edges()), key=repr)


def _assert_caches_consistent(h: Hypergraph) -> None:
    sizes = [len(members) for _, members in h.edges()]
    assert h.edge_ids == sorted(h.edge_ids, key=repr)
    assert h.edge_ids == _naive_edge_ids(h)
    assert h.total_edge_size() == sum(sizes)
    assert h.rank() == max(sizes, default=0)
    assert h.min_edge_size() == min(sizes, default=0)


class TestIncrementalCounters:
    def test_fresh_hypergraphs(self):
        _assert_caches_consistent(Hypergraph())
        _assert_caches_consistent(Hypergraph(vertices=[1, 2, 3]))
        _assert_caches_consistent(Hypergraph.from_edge_list([[0, 1], [1, 2, 3]]))

    def test_add_and_remove_edge(self):
        h = Hypergraph.from_edge_list([[0, 1, 2]])
        h.add_edge([2, 3], edge_id="x")
        _assert_caches_consistent(h)
        h.remove_edge(0)
        _assert_caches_consistent(h)
        assert h.rank() == 2 and h.min_edge_size() == 2

    def test_remove_edges_bulk(self):
        h = Hypergraph.from_edge_list([[0, 1], [1, 2], [2, 3, 4]])
        h.remove_edges([0, 2])
        _assert_caches_consistent(h)
        assert h.edge_ids == [1]

    def test_edge_ids_returns_a_fresh_list(self):
        h = Hypergraph.from_edge_list([[0, 1], [1, 2]])
        ids = h.edge_ids
        ids.append("garbage")
        assert h.edge_ids == [0, 1]

    def test_failed_remove_leaves_caches_intact(self):
        h = Hypergraph.from_edge_list([[0, 1]])
        h.edge_ids  # warm the cache
        with pytest.raises(HypergraphError):
            h.remove_edge("missing")
        _assert_caches_consistent(h)

    def test_remove_vertex_shrinks_edges_in_place(self):
        h = Hypergraph.from_edge_list([[0, 1, 2], [0, 3], [0]])
        h.remove_vertex(0)
        # Edge 2 became empty and disappeared; 0 and 1 kept their ids.
        assert h.edge_ids == [0, 1]
        assert h.edge(0) == {1, 2}
        assert h.edge(1) == {3}
        assert not h.has_vertex(0)
        assert h.edges_containing(3) == {1}
        _assert_caches_consistent(h)

    def test_remove_vertex_keeps_incidence_of_other_members(self):
        h = Hypergraph.from_edge_list([[0, 1, 2], [1, 2]])
        h.remove_vertex(0)
        assert h.edges_containing(1) == {0, 1}
        assert h.edges_containing(2) == {0, 1}
        _assert_caches_consistent(h)

    def test_random_mutation_sequence(self):
        rng = random.Random(20260727)
        h = Hypergraph()
        next_id = 0
        for _ in range(300):
            op = rng.random()
            if op < 0.4 or h.num_edges() == 0:
                size = rng.randint(1, 4)
                h.add_edge(rng.sample(range(12), size), edge_id=next_id)
                next_id += 1
            elif op < 0.6:
                ids = h.edge_ids
                h.remove_edge(ids[rng.randrange(len(ids))])
            elif op < 0.75:
                ids = h.edge_ids
                keep = rng.randrange(len(ids) + 1)
                h.remove_edges(rng.sample(ids, len(ids) - keep))
            elif op < 0.9:
                verts = sorted(h.vertices, key=repr)
                if verts:
                    h.remove_vertex(verts[rng.randrange(len(verts))])
            else:
                h.add_vertex(rng.randrange(16))
            _assert_caches_consistent(h)

    @given(hypergraphs(max_n=10, max_m=6, max_edge=4),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_hypergraphs_stay_consistent(self, h, seed):
        rng = random.Random(seed)
        _assert_caches_consistent(h)
        for _ in range(8):
            choice = rng.random()
            ids = h.edge_ids
            if ids and choice < 0.35:
                h.remove_edge(ids[rng.randrange(len(ids))])
            elif choice < 0.6:
                verts = sorted(h.vertices, key=repr)
                if verts:
                    h.remove_vertex(verts[rng.randrange(len(verts))])
            else:
                h.add_edge([rng.randrange(14) for _ in range(rng.randint(1, 3))])
            _assert_caches_consistent(h)
