"""Tests for hypergraph operations, validation and (de)serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exceptions import HypergraphError
from repro.hypergraph import (
    Hypergraph,
    almost_uniformity_parameters,
    disjoint_union,
    dual_hypergraph,
    edge_intersection_graph,
    has_polynomially_many_edges,
    hypergraph_from_dict,
    hypergraph_from_edge_lines,
    hypergraph_from_json,
    hypergraph_to_dict,
    hypergraph_to_edge_lines,
    hypergraph_to_json,
    induced_subhypergraph,
    is_almost_uniform,
    is_uniform,
    remove_happy_edges,
    validate_hypergraph,
)

from tests.conftest import hypergraphs


class TestOperations:
    def test_remove_happy_edges(self, small_hypergraph):
        result = remove_happy_edges(small_hypergraph, [0, 2])
        assert set(result.edge_ids) == {1, 3}
        assert result.vertices == small_hypergraph.vertices

    def test_remove_unknown_edges_raises(self, small_hypergraph):
        with pytest.raises(HypergraphError):
            remove_happy_edges(small_hypergraph, ["bogus"])

    def test_induced_subhypergraph_traces_edges(self, small_hypergraph):
        induced = induced_subhypergraph(small_hypergraph, {0, 1, 2})
        assert induced.edge(0) == frozenset({0, 1, 2})
        assert induced.edge(1) == frozenset({2})
        # Edge 3 = {0, 4} traces to {0}; edge 2 = {1, 3, 4} traces to {1}.
        assert induced.num_edges() == 4

    def test_induced_subhypergraph_drops_empty_traces(self):
        h = Hypergraph.from_edge_list([[0, 1], [2, 3]])
        induced = induced_subhypergraph(h, {0, 1})
        assert induced.num_edges() == 1

    def test_dual_hypergraph_swaps_roles(self, small_hypergraph):
        dual = dual_hypergraph(small_hypergraph)
        assert set(dual.vertices) == set(small_hypergraph.edge_ids)
        # Vertex 2 of the original lies in edges 0 and 1, so the dual has
        # an edge (with id 2) equal to {0, 1}.
        assert dual.edge(2) == frozenset({0, 1})

    def test_disjoint_union_sizes(self, small_hypergraph):
        other = Hypergraph.from_edge_list([[0, 1]])
        union = disjoint_union(small_hypergraph, other)
        assert union.num_edges() == small_hypergraph.num_edges() + 1
        assert union.num_vertices() == small_hypergraph.num_vertices() + 2

    def test_edge_intersection_graph(self, small_hypergraph):
        line = edge_intersection_graph(small_hypergraph)
        assert line.has_edge(0, 1)       # share vertex 2
        assert line.has_edge(0, 3)       # share vertex 0
        assert not line.has_edge(1, 3)   # {2,3} vs {0,4} are disjoint


class TestValidation:
    def test_uniformity_predicates(self):
        uniform = Hypergraph.from_edge_list([[0, 1], [2, 3]])
        assert is_uniform(uniform)
        assert is_almost_uniform(uniform, 0.5)
        ragged = Hypergraph.from_edge_list([[0], [1, 2, 3]])
        assert not is_uniform(ragged)
        assert not is_almost_uniform(ragged, 1.0)

    def test_almost_uniformity_parameters(self):
        h = Hypergraph.from_edge_list([[0, 1, 2], [3, 4, 5, 6]])
        k, eps = almost_uniformity_parameters(h)
        assert k == 3
        assert eps == pytest.approx(1 / 3)

    def test_almost_uniformity_parameters_edgeless(self):
        assert almost_uniformity_parameters(Hypergraph(vertices=[0])) is None

    def test_almost_uniformity_parameters_failure(self):
        h = Hypergraph.from_edge_list([[0], [1, 2, 3]])
        with pytest.raises(HypergraphError):
            almost_uniformity_parameters(h)

    def test_invalid_epsilon(self):
        with pytest.raises(HypergraphError):
            is_almost_uniform(Hypergraph(), 0.0)

    def test_polynomially_many_edges(self, small_hypergraph):
        assert has_polynomially_many_edges(small_hypergraph)

    @given(hypergraphs())
    @settings(max_examples=30, deadline=None)
    def test_generated_hypergraphs_are_internally_consistent(self, h):
        validate_hypergraph(h)


class TestIO:
    def test_dict_round_trip(self, small_hypergraph):
        data = hypergraph_to_dict(small_hypergraph)
        back = hypergraph_from_dict(data)
        assert back == small_hypergraph

    def test_json_round_trip(self, small_hypergraph):
        back = hypergraph_from_json(hypergraph_to_json(small_hypergraph))
        assert back == small_hypergraph

    def test_missing_edges_key_raises(self):
        with pytest.raises(HypergraphError):
            hypergraph_from_dict({"vertices": [1, 2]})

    def test_malformed_edge_entry_raises(self):
        with pytest.raises(HypergraphError):
            hypergraph_from_dict({"vertices": [], "edges": [[1, [0], "extra"]]})

    def test_edge_lines_round_trip_loses_ids_but_keeps_structure(self, small_hypergraph):
        lines = hypergraph_to_edge_lines(small_hypergraph)
        back = hypergraph_from_edge_lines(lines)
        assert back.num_edges() == small_hypergraph.num_edges()
        original_sets = sorted(sorted(m) for _, m in small_hypergraph.edges())
        parsed_sets = sorted(sorted(m) for _, m in back.edges())
        assert original_sets == parsed_sets

    def test_edge_lines_skips_blank_lines(self):
        back = hypergraph_from_edge_lines(["1 2", "", "3"])
        assert back.num_edges() == 2

    def test_edge_lines_mixed_tokens(self):
        back = hypergraph_from_edge_lines(["a 1"])
        assert back.edge(0) == frozenset({"a", 1})

    @given(hypergraphs())
    @settings(max_examples=25, deadline=None)
    def test_dict_round_trip_property(self, h):
        assert hypergraph_from_dict(hypergraph_to_dict(h)) == h
