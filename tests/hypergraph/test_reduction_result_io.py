"""Seeded round-trip tests for the ReductionResult (de)serializers.

The campaign artifact store persists one serialized result per task, so
the round trip must be lossless for everything :func:`assert_equivalent_run`
asserts on: the multicoloring, every phase record, and the bounds.  The
instances come from the differential-fuzzing corpus families, so a failing
seed is reproduced by ``make_instance(<seed>)``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.reduction import ConflictFreeMulticoloringViaMaxIS
from repro.exceptions import ReproError
from repro.hypergraph.io import reduction_result_from_dict, reduction_result_to_dict
from tests.fuzz.corpus import make_instance, make_oracle


def _run(instance):
    reduction = ConflictFreeMulticoloringViaMaxIS(
        k=instance.k, approximator=make_oracle(instance.oracle_name), lam=2.0
    )
    return reduction.run(instance.hypergraph)


class TestReductionResultRoundTrip:
    @pytest.mark.parametrize("seed", range(4000, 4040))
    def test_round_trip_over_corpus(self, seed):
        instance = make_instance(seed)
        result = _run(instance)
        data = json.loads(json.dumps(reduction_result_to_dict(result), sort_keys=True))
        restored = reduction_result_from_dict(data)
        ctx = f"[{instance.label}]"
        assert restored.multicoloring == result.multicoloring, (
            f"{ctx} multicoloring did not survive the round trip"
        )
        assert restored.phases == result.phases, (
            f"{ctx} phase records did not survive the round trip"
        )
        assert (restored.k, restored.lam) == (result.k, result.lam), f"{ctx} k/lam differ"
        assert (restored.phase_bound, restored.color_bound) == (
            result.phase_bound,
            result.color_bound,
        ), f"{ctx} bounds differ"
        assert restored.total_colors == result.total_colors, f"{ctx} total colors differ"

    def test_serialization_is_deterministic(self):
        instance = make_instance(4100)
        result = _run(instance)
        first = json.dumps(reduction_result_to_dict(result), sort_keys=True)
        second = json.dumps(reduction_result_to_dict(_run(instance)), sort_keys=True)
        assert first == second

    def test_missing_field_rejected(self):
        instance = make_instance(4101)
        data = reduction_result_to_dict(_run(instance))
        del data["phases"]
        with pytest.raises(ReproError):
            reduction_result_from_dict(data)

    def test_malformed_multicoloring_entry_rejected(self):
        instance = make_instance(4102)
        data = reduction_result_to_dict(_run(instance))
        data["multicoloring"] = [[1]]
        with pytest.raises(ReproError):
            reduction_result_from_dict(data)

    def test_malformed_color_rejected(self):
        instance = make_instance(4103)
        data = reduction_result_to_dict(_run(instance))
        data["multicoloring"] = [[1, [[1, 2, 3]]]]
        with pytest.raises(ReproError):
            reduction_result_from_dict(data)
