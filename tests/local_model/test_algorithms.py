"""Tests for Luby's MIS, randomized coloring, and virtual-graph embeddings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConflictGraph
from repro.exceptions import ModelError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    is_maximal_independent_set,
    is_proper_coloring,
    num_colors,
    path_graph,
)
from repro.hypergraph import colorable_almost_uniform_hypergraph
from repro.local_model import (
    VirtualGraphEmbedding,
    luby_mis,
    randomized_coloring,
    run_simulated,
)

from tests.conftest import graphs


class TestLubyMIS:
    def test_output_is_maximal_independent_set(self, random_graph):
        mis, result = luby_mis(random_graph, seed=1)
        assert result.terminated
        assert is_maximal_independent_set(random_graph, mis)

    def test_isolated_vertices_join(self):
        g = Graph(vertices=[1, 2, 3])
        mis, _ = luby_mis(g, seed=0)
        assert mis == {1, 2, 3}

    def test_complete_graph_selects_exactly_one(self):
        mis, _ = luby_mis(complete_graph(8), seed=2)
        assert len(mis) == 1

    def test_every_vertex_decides(self, random_graph):
        _, result = luby_mis(random_graph, seed=3)
        assert all(out in (True, False) for out in result.outputs.values())

    def test_round_count_reported(self, random_graph):
        _, result = luby_mis(random_graph, seed=4)
        assert result.rounds >= 1

    @given(graphs(max_n=12), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=30, deadline=None)
    def test_luby_valid_on_random_graphs_and_seeds(self, g, seed):
        mis, result = luby_mis(g, seed=seed)
        assert result.terminated
        assert is_maximal_independent_set(g, mis)

    def test_different_seeds_may_give_different_sets_but_both_valid(self):
        g = erdos_renyi_graph(30, 0.2, seed=11)
        a, _ = luby_mis(g, seed=1)
        b, _ = luby_mis(g, seed=2)
        assert is_maximal_independent_set(g, a)
        assert is_maximal_independent_set(g, b)


class TestRandomizedColoring:
    def test_output_is_proper_and_within_palette(self, random_graph):
        coloring, result = randomized_coloring(random_graph, seed=5)
        assert result.terminated
        assert is_proper_coloring(random_graph, coloring)
        for v, c in coloring.items():
            assert 0 <= c <= random_graph.degree(v)

    def test_total_colors_at_most_delta_plus_one(self, random_graph):
        coloring, _ = randomized_coloring(random_graph, seed=6)
        assert num_colors(coloring) <= random_graph.max_degree() + 1

    def test_path_graph_colors(self):
        coloring, _ = randomized_coloring(path_graph(10), seed=7)
        assert is_proper_coloring(path_graph(10), coloring)

    @given(graphs(max_n=12), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=25, deadline=None)
    def test_randomized_coloring_property(self, g, seed):
        coloring, result = randomized_coloring(g, seed=seed)
        assert result.terminated
        assert is_proper_coloring(g, coloring)


class TestVirtualGraphEmbedding:
    def _embedding(self):
        hypergraph, _ = colorable_almost_uniform_hypergraph(n=16, m=8, k=2, seed=9)
        conflict_graph = ConflictGraph(hypergraph, 2)
        host = hypergraph.primal_graph()
        return VirtualGraphEmbedding(host, conflict_graph.graph, conflict_graph.host_assignment())

    def test_conflict_graph_embedding_has_dilation_at_most_two(self):
        embedding = self._embedding()
        stats = embedding.stats()
        assert stats.dilation <= 2
        embedding.verify_dilation_bound(2)

    def test_congestion_counts_triples_per_host(self):
        embedding = self._embedding()
        congestion = embedding.congestion()
        assert sum(congestion.values()) == embedding.virtual_graph.num_vertices()

    def test_simulation_rounds_scale_with_dilation(self):
        embedding = self._embedding()
        assert embedding.simulation_rounds(0) == 0
        assert embedding.simulation_rounds(5) == 5 * max(embedding.dilation(), 1)

    def test_negative_virtual_rounds_rejected(self):
        embedding = self._embedding()
        with pytest.raises(ModelError):
            embedding.simulation_rounds(-1)

    def test_missing_host_rejected(self):
        host = path_graph(3)
        virtual = Graph(edges=[("a", "b")])
        with pytest.raises(ModelError):
            VirtualGraphEmbedding(host, virtual, {"a": 0})

    def test_host_not_in_host_graph_rejected(self):
        host = path_graph(3)
        virtual = Graph(vertices=["a"])
        with pytest.raises(ModelError):
            VirtualGraphEmbedding(host, virtual, {"a": 99})

    def test_dilation_bound_violation_detected(self):
        host = path_graph(5)
        virtual = Graph(edges=[("a", "b")])
        embedding = VirtualGraphEmbedding(host, virtual, {"a": 0, "b": 4})
        with pytest.raises(ModelError):
            embedding.verify_dilation_bound(2)

    def test_run_simulated_requires_full_output(self):
        embedding = self._embedding()

        def partial_algorithm(graph):
            return {}

        with pytest.raises(ModelError):
            run_simulated(embedding, partial_algorithm)

    def test_run_simulated_passes_through_outputs(self):
        embedding = self._embedding()

        def constant_algorithm(graph):
            return {v: 1 for v in graph.vertices}

        outputs = run_simulated(embedding, constant_algorithm)
        assert set(outputs) == embedding.virtual_graph.vertices

    def test_disconnected_hosts_raise(self):
        host = Graph(vertices=[0, 1])
        virtual = Graph(edges=[("a", "b")])
        embedding = VirtualGraphEmbedding(host, virtual, {"a": 0, "b": 1})
        with pytest.raises(ModelError):
            embedding.dilation()


class TestModelGapComparison:
    def test_slocal_and_local_both_solve_mis_on_same_graph(self):
        from repro.analysis import mis_model_comparison

        g = cycle_graph(12)
        row = mis_model_comparison(g, seed=3)
        assert row["slocal_valid"] == 1.0
        assert row["luby_valid"] == 1.0
        assert row["slocal_locality"] == 1.0
        assert row["luby_rounds"] >= 1.0
