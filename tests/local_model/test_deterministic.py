"""Tests for the deterministic LOCAL algorithms (Cole–Vishkin, colour reduction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.graphs import (
    Graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    is_proper_coloring,
    num_colors,
    path_graph,
    star_graph,
)
from repro.local_model import (
    ColorReductionColoring,
    LocalNetwork,
    cole_vishkin_ring,
    cole_vishkin_rounds_needed,
    color_reduction,
    luby_mis,
    randomized_coloring,
)


class TestColeVishkinRoundsNeeded:
    def test_small_values_need_no_reduction(self):
        assert cole_vishkin_rounds_needed(0) == 0
        assert cole_vishkin_rounds_needed(6) == 0

    def test_grows_extremely_slowly(self):
        assert cole_vishkin_rounds_needed(100) <= 4
        assert cole_vishkin_rounds_needed(10**6) <= 6
        assert cole_vishkin_rounds_needed(10**9) <= 7

    def test_monotone(self):
        values = [cole_vishkin_rounds_needed(n) for n in (10, 100, 1000, 10**6)]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            cole_vishkin_rounds_needed(-1)


class TestColeVishkinRing:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 16, 33, 64, 129])
    def test_produces_proper_three_coloring(self, n):
        g = cycle_graph(n)
        coloring, result = cole_vishkin_ring(g)
        assert result.terminated
        assert is_proper_coloring(g, coloring)
        assert set(coloring.values()) <= {0, 1, 2}

    def test_round_count_is_log_star_plus_constant(self):
        g = cycle_graph(128)
        _, result = cole_vishkin_ring(g)
        assert result.rounds <= cole_vishkin_rounds_needed(128) + 4

    def test_faster_than_the_generic_color_reduction(self):
        g = cycle_graph(96)
        _, cv_result = cole_vishkin_ring(g)
        _, generic_result = color_reduction(g)
        assert cv_result.rounds < generic_result.rounds

    def test_rejects_non_cycles(self):
        with pytest.raises(ModelError):
            cole_vishkin_ring(path_graph(5))

    def test_rejects_non_canonical_labels(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(ModelError):
            cole_vishkin_ring(g)


class TestColorReduction:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: path_graph(12),
            lambda: cycle_graph(15),
            lambda: star_graph(7),
            lambda: grid_graph(4, 4),
            lambda: erdos_renyi_graph(20, 0.2, seed=4),
        ],
    )
    def test_produces_proper_coloring_within_palette(self, graph_builder):
        g = graph_builder()
        coloring, result = color_reduction(g)
        assert result.terminated
        assert is_proper_coloring(g, coloring)
        for v, c in coloring.items():
            assert 0 <= c <= g.degree(v)
        assert num_colors(coloring) <= g.max_degree() + 1

    def test_single_vertex_graph(self):
        g = Graph(vertices=[0])
        coloring, result = color_reduction(g)
        assert coloring == {0: 0}
        assert result.terminated

    def test_arbitrary_vertex_names_supported(self):
        g = Graph(edges=[("x", "y"), ("y", "z")])
        coloring, result = color_reduction(g)
        assert result.terminated
        assert is_proper_coloring(g, coloring)

    def test_rounds_scale_linearly_with_n(self):
        small = color_reduction(cycle_graph(12))[1].rounds
        large = color_reduction(cycle_graph(48))[1].rounds
        assert large > small
        assert large >= 40  # ~ n - Δ rounds: the deliberately slow baseline

    def test_invalid_id_space_rejected(self):
        with pytest.raises(ModelError):
            ColorReductionColoring(id_space=0)

    def test_class_requires_integer_names_without_wrapper(self):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(ModelError):
            LocalNetwork(g).run(ColorReductionColoring(id_space=2), max_rounds=10)

    @given(st.integers(min_value=2, max_value=24), st.floats(min_value=0.0, max_value=0.5),
           st.integers(min_value=0, max_value=9999))
    @settings(max_examples=20, deadline=None)
    def test_color_reduction_property(self, n, p, seed):
        g = erdos_renyi_graph(n, p, seed=seed)
        coloring, result = color_reduction(g)
        assert result.terminated
        assert is_proper_coloring(g, coloring)


class TestDeterministicVersusRandomized:
    def test_round_count_contrast_on_cycles(self):
        """The model-gap story of the introduction, in numbers.

        On a cycle: Cole–Vishkin (deterministic, special structure) needs
        O(log* n) + O(1) rounds, the generic deterministic colour reduction
        needs Θ(n) rounds, and the randomized algorithms need only a few
        rounds as well — the open question behind the paper is closing the
        general deterministic gap.
        """
        g = cycle_graph(64)
        _, cv = cole_vishkin_ring(g)
        _, generic = color_reduction(g)
        _, rand = randomized_coloring(g, seed=9)
        _, luby = luby_mis(g, seed=9)

        assert cv.rounds < generic.rounds
        assert rand.rounds < generic.rounds
        assert luby.rounds < generic.rounds
