"""Tests for the synchronous LOCAL network simulator and its message plumbing."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.graphs import Graph, cycle_graph, path_graph
from repro.local_model import Inbox, LocalNetwork, LocalNodeAlgorithm, Message
from repro.local_model.node import LocalNode


class _FloodMax(LocalNodeAlgorithm):
    """Each node learns the maximum vertex id in its connected component.

    Classic flooding: every round a node broadcasts the largest id it has
    seen; it terminates once a full round brings no improvement.  Serves as
    an algorithm whose round complexity equals (diameter + O(1)).
    """

    name = "flood-max"

    def init(self, node: LocalNode):
        node.memory["best"] = node.vertex
        return {u: node.vertex for u in node.neighbors}

    def round(self, node: LocalNode, round_number: int, inbox: Inbox):
        best_seen = max([node.memory["best"]] + list(inbox.payloads()), default=node.memory["best"])
        if best_seen == node.memory["best"] and round_number > 1:
            node.terminate(node.memory["best"])
            return {}
        node.memory["best"] = best_seen
        return {u: best_seen for u in node.neighbors}


class _Misbehaving(LocalNodeAlgorithm):
    """Tries to send a message to a non-neighbor (must be rejected)."""

    def init(self, node: LocalNode):
        return {"definitely-not-a-neighbor": "hello"}

    def round(self, node, round_number, inbox):
        node.terminate(None)
        return {}


class _NeverTerminates(LocalNodeAlgorithm):
    """Keeps chattering forever (used to test the round limit)."""

    def init(self, node: LocalNode):
        return {}

    def round(self, node, round_number, inbox):
        return {u: round_number for u in node.neighbors}


class TestMessagePrimitives:
    def test_message_fields(self):
        msg = Message(sender=1, receiver=2, round_sent=0, payload="x")
        assert msg.sender == 1 and msg.receiver == 2 and msg.payload == "x"

    def test_inbox_lookup(self):
        msg = Message(sender=1, receiver=2, round_sent=3, payload=42)
        inbox = Inbox(messages={1: msg})
        assert inbox.from_neighbor(1) == 42
        assert inbox.from_neighbor(9, default="none") == "none"
        assert inbox.senders() == {1}
        assert inbox.payloads() == [42]
        assert len(inbox) == 1

    def test_node_terminate_twice_raises(self):
        node = LocalNode(vertex=1, neighbors=set(), n_known=1, random_seed=0)
        node.terminate("done")
        with pytest.raises(ModelError):
            node.terminate("again")


class TestNetwork:
    def test_flooding_finds_component_maximum(self):
        g = path_graph(6)
        result = LocalNetwork(g).run(_FloodMax())
        assert result.terminated
        assert all(out == 5 for out in result.outputs.values())

    def test_flooding_respects_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        result = LocalNetwork(g).run(_FloodMax())
        assert result.outputs[0] == 1 and result.outputs[1] == 1
        assert result.outputs[2] == 3 and result.outputs[3] == 3

    def test_rounds_scale_with_diameter(self):
        short = LocalNetwork(path_graph(4)).run(_FloodMax())
        long = LocalNetwork(path_graph(16)).run(_FloodMax())
        assert long.rounds > short.rounds

    def test_message_counter_positive(self):
        result = LocalNetwork(cycle_graph(5)).run(_FloodMax())
        assert result.messages_sent > 0

    def test_non_neighbor_messages_rejected(self):
        with pytest.raises(ModelError):
            LocalNetwork(path_graph(3)).run(_Misbehaving())

    def test_round_limit_stops_nonterminating_algorithms(self):
        result = LocalNetwork(cycle_graph(4)).run(_NeverTerminates(), max_rounds=7)
        assert not result.terminated
        assert result.rounds == 7

    def test_invalid_round_limit(self):
        with pytest.raises(ModelError):
            LocalNetwork(path_graph(2)).run(_FloodMax(), max_rounds=0)

    def test_empty_graph_runs_trivially(self):
        result = LocalNetwork(Graph()).run(_FloodMax())
        assert result.outputs == {}
        assert result.terminated

    def test_per_round_active_is_monotone_nonincreasing_for_floodmax(self):
        result = LocalNetwork(path_graph(8)).run(_FloodMax())
        active = result.per_round_active
        assert all(a >= b for a, b in zip(active, active[1:]))
